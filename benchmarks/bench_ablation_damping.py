"""Extension: route-flap damping exacerbates convergence — unless you
centralize.

Mao et al. (SIGCOMM 2002) showed that the path-exploration updates of a
single routing event look like flapping to RFC 2439 route-flap damping,
so routers suppress a perfectly valid route and reachability waits for
the reuse timer.  This bench reproduces that on the fail-over scenario
(aggressive RIPE-210-style parameters) and adds the hybrid angle the
paper's controller enables: a centralized cluster emits no exploration
churn, trips no damping, and is therefore immune to the exacerbation.
"""

from dataclasses import replace

from conftest import bench_n, bench_runs, publish

from repro.analysis.stats import boxplot_stats
from repro.bgp.damping import DampingConfig
from repro.experiments.common import (
    FailoverScenario,
    paper_config,
    run_scenario_once,
    sdn_set_for,
)

#: RIPE-210-flavoured aggressive damping, half-life scaled to the
#: experiment's time frame.
AGGRESSIVE = DampingConfig(
    half_life=60.0,
    reuse_threshold=750.0,
    suppress_threshold=1500.0,
    withdrawal_penalty=1000.0,
    attribute_change_penalty=1000.0,
    max_suppress_time=240.0,
)


def run():
    n = bench_n()
    runs = bench_runs(5)
    cells = {}
    for damped in (False, True):
        for k in (0, n - 1):
            times = []
            for run_index in range(runs):
                scenario = FailoverScenario()
                topology = scenario.topology(n)
                members = sdn_set_for(
                    topology, k, scenario.reserved_legacy
                )
                config = paper_config(seed=700 + run_index)
                if damped:
                    config = replace(config, damping=AGGRESSIVE)
                m = run_scenario_once(scenario, topology, members, config)
                times.append(m.convergence_time)
            cells[(damped, k)] = boxplot_stats(times)
    return n, cells


def report(n, cells):
    lines = [
        "Route-flap damping ablation — fail-over convergence (median)",
        "(Mao et al.'s exacerbation, and centralization's immunity to it)",
        "",
        f"{'':>16} {'no damping':>12} {'aggressive damping':>19}",
        f"{'pure BGP':>16} {cells[(False, 0)].median:>11.1f}s "
        f"{cells[(True, 0)].median:>18.1f}s",
        f"{f'{n - 1}/{n} SDN':>16} {cells[(False, n - 1)].median:>11.1f}s "
        f"{cells[(True, n - 1)].median:>18.1f}s",
        "",
        "shape: damping multiplies pure-BGP fail-over convergence (the",
        "exploration updates trip suppression of the valid backup route);",
        "the centralized cluster emits no exploration churn, so its",
        "convergence is identical with and without damping.",
    ]
    return "\n".join(lines)


def test_ablation_damping(benchmark):
    n, cells = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("ablation_damping", report(n, cells))
    # Mao et al.: damping makes pure-BGP fail-over substantially worse
    assert cells[(True, 0)].median > 1.5 * cells[(False, 0)].median, cells
    # the centralized cluster is immune: damping changes nothing
    assert cells[(True, n - 1)].median == (
        cells[(False, n - 1)].median
    ), cells
    # and the damped hybrid beats the damped pure BGP by a wide margin
    assert cells[(True, n - 1)].median < 0.5 * cells[(True, 0)].median
