"""Ablation: MRAI is the mechanism centralization bypasses (§3 insight).

BGP's MinRouteAdvertisementInterval serializes withdrawal path
exploration; the IDR controller replaces exploration with one Dijkstra
run.  Sweeping MRAI with and without a half-cluster reproduces two
classic results at once:

- **Griffin & Premore's U-shape** for pure BGP: at MRAI 0 nothing rate-
  limits exploration, the update count explodes, and convergence is
  CPU-bound; at large MRAI each exploration round waits.  The best pure
  BGP can do is a small nonzero MRAI.
- **The paper's point**: the hybrid sits near the controller floor for
  every MRAI, so centralization's advantage grows exactly where BGP's
  rate limiting hurts.
"""

from conftest import bench_n, bench_runs, publish

from repro.experiments import mrai_sweep


def run():
    return mrai_sweep(
        n=bench_n(),
        mrai_values=(0.0, 5.0, 15.0, 30.0),
        sdn_count=bench_n() // 2,
        runs=bench_runs(5),
    )


def report(points):
    lines = [
        "MRAI ablation — withdrawal convergence, pure BGP vs half-SDN",
        "",
        f"{'MRAI':>6}  {'pure med':>9} {'pure upd':>9}  "
        f"{'hybrid med':>11} {'hybrid upd':>11}  {'reduction':>10}",
    ]
    for p in points:
        lines.append(
            f"{p.mrai:>5.0f}s  {p.pure_bgp.median:>8.1f}s {p.pure_updates:>9.0f}  "
            f"{p.hybrid.median:>10.1f}s {p.hybrid_updates:>11.0f}  "
            f"{p.reduction:>9.1%}"
        )
    lines += [
        "",
        "shape: pure BGP shows the Griffin-Premore U (MRAI 0 floods updates",
        "and converges CPU-bound; large MRAI converges timer-bound); the",
        "hybrid stays near the controller floor, so centralization's win",
        "grows with MRAI — it removes exactly what rate limiting costs.",
    ]
    return "\n".join(lines)


def test_ablation_mrai(benchmark):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("ablation_mrai", report(points))
    by_mrai = {p.mrai: p for p in points}
    # pure-BGP convergence grows with MRAI on the timer-bound side
    assert by_mrai[30.0].pure_bgp.median > by_mrai[5.0].pure_bgp.median
    # the larger the MRAI, the bigger the absolute win
    gain_hi = by_mrai[30.0].pure_bgp.median - by_mrai[30.0].hybrid.median
    gain_lo = by_mrai[5.0].pure_bgp.median - by_mrai[5.0].hybrid.median
    assert gain_hi > gain_lo
    # Griffin-Premore U-shape: MRAI 0 floods updates (the factor grows
    # with clique size: ~3x at n=6, ~86x at the paper's n=16)
    assert by_mrai[0.0].pure_updates > 2 * by_mrai[5.0].pure_updates
    if bench_n() >= 12:
        # at paper scale the flood is large enough to become CPU-bound,
        # making MRAI 0 *slower* than the small-MRAI sweet spot — and
        # centralization rescues it
        assert by_mrai[0.0].pure_bgp.median > by_mrai[5.0].pure_bgp.median
        assert by_mrai[0.0].hybrid.median < by_mrai[0.0].pure_bgp.median
