"""Ablation: the controller's delayed recomputation (§3 insight).

"Another design insight we gained is the need for a delayed
recomputation of best paths on the controller's side, so as to improve
overall stability and rate-limit route flaps due to bursts in external
BGP input."

Sweeping the debounce delay quantifies the trade: longer delays coalesce
bursty input into fewer recomputations (stability), at the cost of a
higher convergence floor (reaction latency).
"""

from conftest import bench_n, bench_runs, publish

from repro.experiments import recompute_delay_sweep


def run():
    return recompute_delay_sweep(
        n=bench_n(),
        delays=(0.0, 0.5, 2.0, 5.0, 15.0),
        sdn_count=bench_n() // 2,
        runs=bench_runs(5),
    )


def report(points):
    lines = [
        "Delayed-recomputation ablation — withdrawal on a half-SDN clique",
        "",
        f"{'delay':>7}  {'convergence med':>16}  {'recomputations':>15}",
    ]
    for p in points:
        lines.append(
            f"{p.delay:>6.1f}s  {p.convergence.median:>15.1f}s  "
            f"{p.recomputations:>15.1f}"
        )
    lines += [
        "",
        "shape: recomputation count falls as the delay grows (bursts",
        "coalesce — the stability the paper wanted) while convergence",
        "time gains a floor proportional to the delay.",
    ]
    return "\n".join(lines)


def test_ablation_recompute_delay(benchmark):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("ablation_recompute", report(points))
    by_delay = {p.delay: p for p in points}
    # more delay -> fewer recomputations (coalescing works)
    assert by_delay[15.0].recomputations < by_delay[0.0].recomputations
    # monotone non-increasing recomputation counts along the sweep
    counts = [p.recomputations for p in points]
    assert all(a >= b - 1e-9 for a, b in zip(counts, counts[1:])), counts
    # a very long delay visibly costs convergence latency vs a short one
    assert (
        by_delay[15.0].convergence.median
        >= by_delay[0.5].convergence.median - 1.0
    )
