"""Figure 1: the components of an example hybrid BGP/SDN experiment.

Fig. 1 is the architecture picture, not a measurement — so this bench
verifies (and times) that a full hybrid experiment assembles and
converges with every pictured component working: legacy BGP routers, the
SDN cluster (switches + controller + cluster BGP speaker with per-
peering relays), the route collector hearing everyone, hosts with
end-to-end connectivity, and prefix origination from both worlds.
"""

from conftest import bench_n, publish

from repro.bgp.router import BGPRouter
from repro.experiments import paper_config
from repro.framework import Experiment
from repro.sdn.switch import SDNSwitch
from repro.topology import clique


def build_fig1():
    n = bench_n()
    sdn_members = set(range(n // 2 + 1, n + 1))
    exp = Experiment(
        clique(n),
        sdn_members=sdn_members,
        config=paper_config(seed=1, mrai=30.0),
        name="fig1",
    ).start()
    exp.add_host(1)
    exp.add_host(n)
    exp.wait_converged()
    # exercise origination from both worlds
    legacy_prefix = exp.announce(1)
    member_prefix = exp.announce(n)
    exp.wait_converged()
    return exp, legacy_prefix, member_prefix


def report(exp):
    legacy = [x for x in exp.as_nodes() if isinstance(x, BGPRouter)]
    switches = [x for x in exp.as_nodes() if isinstance(x, SDNSwitch)]
    relay_links = [l for l in exp.net.links if l.kind == "relay"]
    control_links = [l for l in exp.net.links if l.kind == "control"]
    lines = [
        "Figure 1 components — example hybrid experiment "
        f"({len(exp.topology)}-AS clique, half SDN)",
        "",
        f"legacy BGP routers        : {len(legacy)}",
        f"SDN switches (cluster)    : {len(switches)}",
        f"controller members        : {len(exp.controller.members())}",
        f"cluster BGP speaker peers : {len(exp.speaker.peerings())} "
        f"(one per member<->legacy peering)",
        f"speaker relay links       : {len(relay_links)}",
        f"controller control links  : {len(control_links)}",
        f"route collector feed      : {len(exp.collector.feed)} updates",
        f"monitoring hosts          : "
        f"{sum(len(h) for h in exp.hosts.values())}",
        f"flow rules on first switch: "
        f"{len(switches[0].flow_table)}",
        f"all AS pairs reachable    : {exp.all_reachable()}",
        f"settled at virtual time   : {exp.now:.1f}s",
    ]
    return "\n".join(lines)


def test_fig1_components(benchmark):
    exp, legacy_prefix, member_prefix = benchmark.pedantic(
        build_fig1, rounds=1, iterations=1
    )
    publish("fig1_components", report(exp))
    n = len(exp.topology)
    # every pictured component exists and functions
    assert exp.controller is not None and exp.speaker is not None
    assert exp.collector is not None and exp.collector.feed
    assert len(exp.speaker.peerings()) == (n // 2) * (n - n // 2)
    assert all(s.established for s in exp.speaker.sessions.values())
    assert exp.all_reachable()
    # prefixes from both worlds propagated across the boundary
    assert exp.node(2).loc_rib.get(member_prefix) is not None
    switch = exp.node(n)
    assert switch.lookup_route(legacy_prefix.host(0)) is not None
