"""Figure 2: IDR convergence time of route withdrawal on a 16-AS clique
versus fraction of ASes with centralized route control.

Paper: "the convergence time can be linearly reduced in a route
withdrawal experiment with different percentages of SDN deployment in a
16-node clique ... boxplots over 10 runs."

This bench regenerates the figure's data: one boxplot row per SDN
fraction over seeded runs, an ASCII rendering of the boxplots, and the
linear fit of medians (the paper's claim is the linearity, not the
absolute seconds — our substrate is a simulator, not their testbed).
"""

from conftest import bench_n, bench_runs, publish, runner_kwargs

from repro.analysis import ascii_boxplot_chart
from repro.experiments import withdrawal_sweep
from repro.experiments.withdrawal import DEFAULT_SDN_COUNTS


def run_fig2():
    n = bench_n()
    # always include the maximal deployment point (n - 1: only the
    # withdrawing origin stays legacy), whatever the clique size.
    counts = sorted({c for c in DEFAULT_SDN_COUNTS if c < n} | {n - 1})
    return withdrawal_sweep(
        n=n, sdn_counts=counts, runs=bench_runs(10), mrai=30.0,
        **runner_kwargs(),
    )


def report(result):
    lines = [
        f"Figure 2 reproduction — withdrawal on a {result.n_ases}-AS clique",
        f"(MRAI 30s jittered, Quagga-paced withdrawals, "
        f"{len(result.points[0].runs)} runs/point)",
        "",
        f"{'SDN':>7} {'fraction':>9}  "
        f"{'min':>8} {'q1':>8} {'median':>8} {'q3':>8} {'max':>8} {'updates':>8}",
    ]
    for point in result.points:
        s = point.stats
        lines.append(
            f"{point.sdn_count:>4}/{result.n_ases:<2} {point.fraction:>9.2f}  "
            f"{s.minimum:>8.1f} {s.q1:>8.1f} {s.median:>8.1f} "
            f"{s.q3:>8.1f} {s.maximum:>8.1f} {point.median_updates:>8.0f}"
        )
    fit = result.fit()
    lines += [
        "",
        ascii_boxplot_chart(
            [(f"{p.sdn_count:2d}/{result.n_ases}", p.stats)
             for p in result.points],
            title="convergence time (s)",
        ),
        "",
        f"linear fit of medians: t = {fit.slope:.1f} * fraction "
        f"+ {fit.intercept:.1f}   R^2 = {fit.r_squared:.3f}",
        f"reduction at max deployment: {result.reduction_at_full():.1%}",
        "paper shape: linear decrease -> expect R^2 >~ 0.95 and slope < 0",
    ]
    return "\n".join(lines)


def test_fig2_withdrawal(benchmark):
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    publish("fig2_withdrawal", report(result))
    medians = result.medians()
    # Shape assertions (the paper's claims):
    assert all(a > b for a, b in zip(medians, medians[1:])), (
        f"medians must fall monotonically with deployment: {medians}"
    )
    fit = result.fit()
    assert fit.is_decreasing
    assert fit.r_squared > 0.9, f"expected linear trend, got {fit}"
    assert result.reduction_at_full() > 0.9
