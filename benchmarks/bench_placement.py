"""Extension: deployment placement on a degree-skewed topology.

The paper's clique sweep asks *how many* ASes to centralize; on a
realistic (Barabási–Albert) graph an operator must also decide *which*.
Same budget (5 of 16 ASes), three strategies — and converting the hubs
buys ~3x the convergence improvement of converting stubs, because hubs
sit on the most exploration paths.
"""

from conftest import bench_n, bench_runs, publish, runner_kwargs

from repro.experiments.placement import placement_sweep


def run():
    n = bench_n()
    return placement_sweep(
        n=n, sdn_count=max(2, n // 3), runs=bench_runs(5),
        **runner_kwargs(),
    )


def report(results):
    lines = [
        "Placement ablation — withdrawal on a Barabási-Albert graph,",
        f"fixed budget of {results[0].sdn_count} members",
        "",
        f"{'strategy':>12}  {'median conv.':>13}  {'mean member degree':>19}",
    ]
    for r in results:
        lines.append(
            f"{r.strategy:>12}  {r.convergence.median:>12.1f}s  "
            f"{r.mean_member_degree:>19.1f}"
        )
    lines += [
        "",
        "shape: the same budget spent on high-degree ASes removes far",
        "more MRAI-paced exploration than spent on stubs — incremental",
        "deployment should start at the hubs.",
    ]
    return "\n".join(lines)


def test_placement_strategies(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("placement", report(results))
    by_strategy = {r.strategy: r for r in results}
    hubs = by_strategy["hubs-first"]
    stubs = by_strategy["stubs-first"]
    # hub placement clearly beats stub placement at equal budget
    assert hubs.convergence.median < 0.8 * stubs.convergence.median, (
        hubs.convergence.median, stubs.convergence.median
    )
    # and the degree statistics confirm the strategies differ as intended
    assert hubs.mean_member_degree > stubs.mean_member_degree
