"""Runner micro-benchmark: serial vs N-worker execution of one grid.

Not a paper artifact — this benchmarks the repro harness itself.  It
runs the same small withdrawal grid through the parallel runner with 1
and with N workers, checks the results are bit-identical (the runner's
core guarantee), and records wall-clock + per-job timing so scaling
regressions (pickling overhead, pool churn, lost parallelism) show up
in the archived baseline.

Knobs: ``REPRO_BENCH_SCALING_WORKERS`` (default: 2 and cpu_count),
``REPRO_BENCH_RUNS`` (runs per point, default 4).
"""

import os
import time

from conftest import bench_runs, publish

from repro.experiments.common import WithdrawalScenario, run_fraction_sweep
from repro.runner import default_workers

#: the grid: small enough to run in seconds, wide enough to fan out.
GRID = dict(n=6, sdn_counts=[0, 2, 4, 5], mrai=1.0)


def worker_counts():
    env = os.environ.get("REPRO_BENCH_SCALING_WORKERS")
    if env:
        return sorted({int(w) for w in env.split(",")})
    return sorted({1, 2, default_workers()})


def run_grid(workers):
    started = time.perf_counter()
    result = run_fraction_sweep(
        WithdrawalScenario, runs=bench_runs(4), workers=workers, **GRID,
    )
    return result, time.perf_counter() - started


def run_scaling():
    rows = []
    reference = None
    for workers in worker_counts():
        result, elapsed = run_grid(workers)
        times = [r.convergence_time for p in result.points for r in p.runs]
        if reference is None:
            reference = times
        rows.append(
            {
                "workers": workers,
                "elapsed": elapsed,
                "timing": result.timing,
                "identical": times == reference,
            }
        )
    return rows


def report(rows):
    jobs = rows[0]["timing"].jobs
    lines = [
        "Runner scaling — withdrawal grid "
        f"(clique n={GRID['n']}, {jobs} trials, mrai={GRID['mrai']})",
        "",
        f"{'workers':>8} {'elapsed':>9} {'job time':>9} "
        f"{'speedup':>8} {'vs serial':>10} {'identical':>10}",
    ]
    base = rows[0]["elapsed"]
    for row in rows:
        t = row["timing"]
        lines.append(
            f"{row['workers']:>8} {row['elapsed']:>8.2f}s {t.total_job_wall:>8.2f}s "
            f"{t.speedup:>7.2f}x {base / row['elapsed']:>9.2f}x "
            f"{'yes' if row['identical'] else 'NO':>10}"
        )
    lines += [
        "",
        f"host cpu_count={os.cpu_count()}; 'speedup' is summed job time /",
        "elapsed (overlap achieved); 'vs serial' compares end-to-end",
        "wall-clock against the 1-worker row.  On a single-core host the",
        "parallel rows pay pool overhead without overlap gains — the",
        "correctness claim (identical results) is the load-bearing one.",
    ]
    return "\n".join(lines)


def test_runner_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    publish("runner_scaling", report(rows))
    # The guarantee: any worker count produces identical results.
    assert all(row["identical"] for row in rows), rows
    # And the parallel path must actually execute every trial.
    assert all(
        row["timing"].jobs == rows[0]["timing"].jobs
        and row["timing"].failed == 0
        for row in rows
    )
