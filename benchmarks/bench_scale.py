"""Scaling curve: withdrawal storms on Internet-sized CAIDA hierarchies.

The paper evaluates on 16-AS cliques; the compact route machinery
(interned path attributes, prefix-indexed RIBs, the dirty-set decision
driver — see ``docs/scaling.md``) exists so the same emulator can run
orders of magnitude larger.  This benchmark draws the evidence using
the forked-trial machinery in :mod:`repro.experiments.scale`: one
withdrawal-storm trial per topology size, each in a child process so
that ``ru_maxrss`` — a process-lifetime high-water mark — measures
that trial alone.

Per size it reports peak RSS, kernel events per wall-second during the
measured storm, build/storm wall time, and the intern-pool sizes, and
appends one row per trial to the cross-run telemetry registry so
``repro runs regressions`` can gate scaling regressions in CI.

Environment knobs (on top of the shared ones in ``conftest.py``):

- ``REPRO_BENCH_SCALE_SIZES``    — comma-separated AS counts
  (default ``1000,2000,5000``).
- ``REPRO_BENCH_SCALE_REGISTRY`` — registry SQLite path (default
  ``benchmarks/results/scale-registry.sqlite``).
- ``REPRO_BENCH_SCALE_SCHEDULER`` — event-kernel scheduler for the
  trials (``heap`` or ``calendar``; default ``heap``).
"""

import os

from conftest import RESULTS_DIR, publish

from repro.experiments.scale import (
    check_rss_sublinear,
    record_trial,
    run_scale_trial,
    scale_spec,
)
from repro.framework.convergence import ConvergenceMeasurement
from repro.obs.registry import RunRegistry


def scale_sizes():
    raw = os.environ.get("REPRO_BENCH_SCALE_SIZES", "1000,2000,5000")
    sizes = [int(part) for part in raw.split(",") if part.strip()]
    if not sizes:
        raise ValueError("REPRO_BENCH_SCALE_SIZES named no sizes")
    return sizes


def registry_path():
    return os.environ.get(
        "REPRO_BENCH_SCALE_REGISTRY",
        str(RESULTS_DIR / "scale-registry.sqlite"),
    )


def scale_scheduler():
    return os.environ.get("REPRO_BENCH_SCALE_SCHEDULER", "heap")


def format_report(rows):
    header = (
        f"{'n':>6} {'links':>7} {'peak MiB':>9} {'events/s':>9} "
        f"{'storm s':>8} {'build s':>8} {'conv t':>8} {'paths':>7}"
    )
    lines = [
        "Withdrawal-storm scaling curve (CAIDA hierarchy, compact+lean)",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row['n']:>6} {row['links']:>7} {row['peak_rss_mib']:>9.1f} "
            f"{row['events_per_s']:>9} {row['storm_wall_s']:>8.2f} "
            f"{row['build_wall_s']:>8.2f} "
            f"{row['measurement'].convergence_time:>8.2f} "
            f"{row['intern_pools']['as_paths']:>7}"
        )
    return "\n".join(lines)


def test_withdrawal_storm_scaling_curve(benchmark):
    sizes = scale_sizes()
    scheduler = scale_scheduler()
    registry = RunRegistry(registry_path())
    rows = []

    def run():
        for n in sizes:
            spec = scale_spec(n, scheduler=scheduler)
            result = run_scale_trial(spec)
            record_trial(registry, spec, result)
            rows.append(result)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    publish("scale_curve", format_report(rows))

    assert [row["n"] for row in rows] == sizes
    for row in rows:
        measurement = row["measurement"]
        assert isinstance(measurement, ConvergenceMeasurement)
        # The storm really ran: the withdrawal must trigger activity.
        assert measurement.convergence_time > 0
        assert row["storm_events"] > 0
        assert row["peak_rss_mib"] > 0
        # Interning is live in the child (compact mode constructed
        # shared attribute objects).
        assert row["intern_pools"]["as_paths"] > 0
    check_rss_sublinear(rows)
    # Registry rows landed (one per size, queryable by digest).
    recorded = {
        row[0]
        for row in registry._conn.execute("SELECT spec_digest FROM runs")
    }
    for n in sizes:
        assert scale_spec(n, scheduler=scheduler).digest() in recorded


if __name__ == "__main__":  # pragma: no cover - manual curve runs
    all_rows = []
    for size in scale_sizes():
        one_spec = scale_spec(size, scheduler=scale_scheduler())
        trial = run_scale_trial(one_spec)
        record_trial(RunRegistry(registry_path()), one_spec, trial)
        all_rows.append(trial)
        print(format_report(all_rows))
