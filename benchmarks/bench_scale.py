"""Scaling curve: withdrawal storms on Internet-sized CAIDA hierarchies.

The paper evaluates on 16-AS cliques; the compact route machinery
(interned path attributes, prefix-indexed RIBs, the dirty-set decision
driver — see ``docs/scaling.md``) exists so the same emulator can run
orders of magnitude larger.  This benchmark draws the evidence: one
withdrawal-storm trial per topology size on the synthetic CAIDA
hierarchy, each in a **forked child process** so that
``getrusage(RUSAGE_SELF).ru_maxrss`` — a process-lifetime high-water
mark — measures that trial alone.

Per size it reports peak RSS, kernel events per wall-second during the
measured storm, build/storm wall time, and the intern-pool sizes, and
appends one row per trial to the cross-run telemetry registry so
``repro runs regressions`` can gate scaling regressions in CI.

Environment knobs (on top of the shared ones in ``conftest.py``):

- ``REPRO_BENCH_SCALE_SIZES``    — comma-separated AS counts
  (default ``1000,2000,5000``).
- ``REPRO_BENCH_SCALE_REGISTRY`` — registry SQLite path (default
  ``benchmarks/results/scale-registry.sqlite``).
"""

import multiprocessing
import os
import resource
import time
import traceback

from conftest import RESULTS_DIR, publish

from repro.bgp.attrs import intern_stats
from repro.experiments.common import (
    WithdrawalScenario,
    paper_config,
    sdn_set_for,
)
from repro.framework.convergence import ConvergenceMeasurement, measure_event
from repro.framework.experiment import Experiment
from repro.obs.registry import RunRegistry
from repro.runner.jobs import RunRecord, RunSpec
from repro.topology import caida_hierarchy

#: storm MRAI — small so a trial is one tight exploration burst, not
#: paper-scale 30 s pacing stretched over thousands of routers.
SCALE_MRAI = 2.0


def scale_sizes():
    raw = os.environ.get("REPRO_BENCH_SCALE_SIZES", "1000,2000,5000")
    sizes = [int(part) for part in raw.split(",") if part.strip()]
    if not sizes:
        raise ValueError("REPRO_BENCH_SCALE_SIZES named no sizes")
    return sizes


def registry_path():
    return os.environ.get(
        "REPRO_BENCH_SCALE_REGISTRY",
        str(RESULTS_DIR / "scale-registry.sqlite"),
    )


def scale_spec(n, seed=0):
    """The one-trial spec at size ``n`` — a real RunSpec, so the
    registry rows carry the same digests any sweep of it would."""
    return RunSpec(
        scenario_factory=WithdrawalScenario,
        topology_factory=caida_hierarchy,
        n=n,
        sdn_count=0,
        seed=seed,
        mrai=SCALE_MRAI,
        policy_mode="gao_rexford",
        trace_level="off",
        compact=True,
        lean=True,
        label=f"scale n={n}",
    )


def _measure_trial(spec):
    """Mirror of ``run_trial_full`` that keeps the live experiment in
    scope, so kernel counters and intern pools can be read directly."""
    scenario = spec.scenario_factory()
    topology = scenario.topology(spec.n, spec.topology_factory)
    members = sdn_set_for(topology, spec.sdn_count, scenario.reserved_legacy)
    config = paper_config(
        seed=spec.seed,
        mrai=spec.mrai,
        recompute_delay=spec.recompute_delay,
        policy_mode=spec.policy_mode,
        trace_level=spec.trace_level,
        compact=spec.compact,
        batch_delivery=spec.batch_delivery,
        lean=spec.lean,
    )
    t_start = time.perf_counter()
    exp = Experiment(
        topology, sdn_members=members, config=config, name=scenario.name
    ).build()
    scenario.configure(exp)
    exp.start()
    scenario.prepare(exp)
    t_ready = time.perf_counter()
    # Sample the pools at the converged pre-storm state: the storm is a
    # withdrawal, and withdrawn routes release their (weakly held)
    # interned attributes, so the end-of-trial pools would be empty.
    pools = intern_stats()
    events_before = exp.net.sim.events_processed
    measurement = measure_event(
        exp, lambda: scenario.event(exp), horizon=spec.horizon
    )
    scenario.finish(exp)
    t_done = time.perf_counter()
    storm_events = exp.net.sim.events_processed - events_before
    storm_wall = t_done - t_ready
    return {
        "n": spec.n,
        "links": len(topology.links),
        "measurement": measurement,
        "build_wall_s": round(t_ready - t_start, 3),
        "storm_wall_s": round(storm_wall, 3),
        "total_wall_s": round(t_done - t_start, 3),
        "events_total": exp.net.sim.events_processed,
        "storm_events": storm_events,
        "events_per_s": round(storm_events / storm_wall) if storm_wall > 0 else 0,
        # Linux reports ru_maxrss in KiB.
        "peak_rss_mib": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
        ),
        "intern_pools": pools,
    }


def _child_entry(spec, conn):
    try:
        conn.send(("ok", _measure_trial(spec)))
    except Exception:
        conn.send(("error", traceback.format_exc(limit=20)))
    finally:
        conn.close()


def run_scale_trial(spec):
    """Run one trial in a forked child and return its result dict.

    The fork is what makes peak-RSS honest: ``ru_maxrss`` never goes
    down, so trials sharing a process would all inherit the largest
    footprint seen so far.
    """
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_child_entry, args=(spec, child_conn))
    proc.start()
    child_conn.close()
    try:
        status, payload = parent_conn.recv()
    except EOFError:
        proc.join()
        raise RuntimeError(
            f"scale trial n={spec.n} died without reporting "
            f"(exitcode {proc.exitcode})"
        )
    proc.join()
    if status != "ok":
        raise RuntimeError(f"scale trial n={spec.n} failed:\n{payload}")
    return payload


def record_trial(registry, spec, result):
    """Append the trial to the telemetry registry.

    The measurement goes in the standard column; the scale numbers ride
    in the metrics payload under ``"scale"`` so dashboards and the
    regression gate can query them like any other per-run metric.
    """
    measurement = result["measurement"]
    record = RunRecord(
        digest=spec.digest(),
        ok=True,
        measurement=measurement,
        metrics={
            "scale": {
                key: result[key]
                for key in (
                    "n", "links", "build_wall_s", "storm_wall_s",
                    "total_wall_s", "events_total", "storm_events",
                    "events_per_s", "peak_rss_mib", "intern_pools",
                )
            }
        },
        wall_time=result["total_wall_s"],
        worker="bench-scale",
    )
    return registry.record(spec, record)


def format_report(rows):
    header = (
        f"{'n':>6} {'links':>7} {'peak MiB':>9} {'events/s':>9} "
        f"{'storm s':>8} {'build s':>8} {'conv t':>8} {'paths':>7}"
    )
    lines = [
        "Withdrawal-storm scaling curve (CAIDA hierarchy, compact+lean)",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row['n']:>6} {row['links']:>7} {row['peak_rss_mib']:>9.1f} "
            f"{row['events_per_s']:>9} {row['storm_wall_s']:>8.2f} "
            f"{row['build_wall_s']:>8.2f} "
            f"{row['measurement'].convergence_time:>8.2f} "
            f"{row['intern_pools']['as_paths']:>7}"
        )
    return "\n".join(lines)


def test_withdrawal_storm_scaling_curve(benchmark):
    sizes = scale_sizes()
    registry = RunRegistry(registry_path())
    rows = []

    def run():
        for n in sizes:
            spec = scale_spec(n)
            result = run_scale_trial(spec)
            record_trial(registry, spec, result)
            rows.append(result)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    publish("scale_curve", format_report(rows))

    assert [row["n"] for row in rows] == sizes
    for row in rows:
        measurement = row["measurement"]
        assert isinstance(measurement, ConvergenceMeasurement)
        # The storm really ran: the withdrawal must trigger activity.
        assert measurement.convergence_time > 0
        assert row["storm_events"] > 0
        assert row["peak_rss_mib"] > 0
        # Interning is live in the child (compact mode constructed
        # shared attribute objects).
        assert row["intern_pools"]["as_paths"] > 0
    # Memory grows with topology size but must stay sub-quadratic:
    # doubling n may not even double RSS once pools dominate, and a
    # 5x size step staying under ~8x RSS would flag an O(n^2) blowup.
    if len(rows) >= 2:
        first, last = rows[0], rows[-1]
        size_ratio = last["n"] / first["n"]
        rss_ratio = last["peak_rss_mib"] / first["peak_rss_mib"]
        assert rss_ratio < size_ratio * 1.6, (
            f"peak RSS grew {rss_ratio:.1f}x over a {size_ratio:.1f}x "
            "size step — super-linear route storage"
        )
    # Registry rows landed (one per size, queryable by digest).
    recorded = {
        row[0]
        for row in registry._conn.execute("SELECT spec_digest FROM runs")
    }
    for n in sizes:
        assert scale_spec(n).digest() in recorded


if __name__ == "__main__":  # pragma: no cover - manual curve runs
    all_rows = []
    for size in scale_sizes():
        one_spec = scale_spec(size)
        trial = run_scale_trial(one_spec)
        record_trial(RunRegistry(registry_path()), one_spec, trial)
        all_rows.append(trial)
        print(format_report(all_rows))
