"""§4 result: "route ... announcement experiments did not show this
linear improvement, but smaller reductions."

A new-prefix announcement floods outward with no path exploration: pure
BGP converges in link-latency time, well under one MRAI.  There is
almost nothing for centralization to remove — and the controller's
delayed recomputation adds a small floor — so the sweep is flat.
"""

from conftest import bench_n, bench_runs, publish, runner_kwargs

from repro.experiments import announcement_sweep
from repro.experiments.announcement import DEFAULT_SDN_COUNTS


def run_sweep():
    n = bench_n()
    counts = [c for c in DEFAULT_SDN_COUNTS if c < n]
    return announcement_sweep(
        n=n, sdn_counts=counts, runs=bench_runs(5), mrai=30.0,
        **runner_kwargs(),
    )


def report(result):
    lines = [
        f"§4 announcement reproduction — new prefix on a "
        f"{result.n_ases}-AS clique (MRAI 30s)",
        "",
        f"{'SDN':>7} {'fraction':>9}  {'median':>8} {'max':>8} {'updates':>8}",
    ]
    for point in result.points:
        s = point.stats
        lines.append(
            f"{point.sdn_count:>4}/{result.n_ases:<2} {point.fraction:>9.2f}  "
            f"{s.median:>8.2f} {s.maximum:>8.2f} {point.median_updates:>8.0f}"
        )
    base = result.points[0].stats.median
    lines += [
        "",
        f"pure-BGP announcement converges in {base:.2f}s — a tiny fraction "
        f"of one MRAI (30s):",
        "flooding needs no exploration, so centralization has nothing to "
        "remove.",
        "paper shape: no linear improvement for announcements.",
    ]
    return "\n".join(lines)


def test_sec4_announcement(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish("sec4_announcement", report(result))
    base = result.points[0].stats.median
    # Pure BGP announcements converge in well under one MRAI...
    assert base < 5.0, f"announcement should flood quickly: {base}"
    # ...and no sweep point shows the withdrawal-style collapse:
    medians = result.medians()
    assert max(medians) - min(medians) < 30.0, medians
    fit = result.fit()
    # The trend is flat-ish: nothing like Fig. 2's steep negative slope.
    assert abs(fit.slope) < 30.0, fit
