"""§4 result: "route fail-over ... did not show this linear improvement,
but smaller reductions."

Scenario: an origin AS dual-homes into the clique (primary gateway AS1,
backup gateway AS2 with AS-path prepending); the primary link fails and
everyone must move to the longer backup paths.  BGP explores the length
gap in a *bounded* number of MRAI rounds — so centralization helps far
less than for a withdrawal, and not linearly: convergence stays flat
until the exploring backup gateway itself joins the cluster.

We report both metrics: update-activity convergence (what a collector
sees — the paper's measurement) and routing-state convergence (last
FIB/decision change).
"""

from conftest import bench_n, bench_runs, publish, runner_kwargs

from repro.analysis.stats import boxplot_stats
from repro.experiments.failover import failover_sweep


def run_sweep():
    n = bench_n()
    counts = [c for c in (0, 4, 8, 12, n - 2, n - 1) if c <= n - 1]
    result = failover_sweep(
        n=n, sdn_counts=counts, runs=bench_runs(5), mrai=30.0,
        **runner_kwargs(),
    )
    points = [
        (
            point.sdn_count,
            point.stats,
            boxplot_stats(
                [r.measurement.state_convergence_time for r in point.runs]
            ),
        )
        for point in result.points
    ]
    return n, points


def report(n, points):
    lines = [
        f"§4 fail-over reproduction — dual-homed origin on a {n}-AS clique",
        "(backup path prepended x3; primary gateway link fails)",
        "",
        f"{'SDN':>7}  {'activity conv. median':>22}  {'state conv. median':>20}",
    ]
    for k, activity, state in points:
        lines.append(
            f"{k:>4}/{n:<2}  {activity.median:>20.1f}s  {state.median:>18.1f}s"
        )
    base = points[0][1].median
    best = min(p[1].median for p in points)
    lines += [
        "",
        f"activity-metric reduction at best point: {(base - best) / base:.1%}",
        "paper shape: no linear improvement; a bounded, smaller reduction",
        "(compare with Fig. 2's ~100% linear reduction).",
    ]
    return "\n".join(lines)


def test_sec4_failover(benchmark):
    n, points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish("sec4_failover", report(n, points))
    base_activity = points[0][1].median
    best_activity = min(p[1].median for p in points)
    reduction = (base_activity - best_activity) / base_activity
    # A reduction exists...
    assert reduction > 0.1, f"expected some fail-over reduction: {points}"
    # ...but it is NOT the near-total linear reduction of Fig. 2:
    assert reduction < 0.9, f"fail-over should not collapse to ~0: {points}"
    # and mid-sweep points barely improve (non-linearity):
    mid = [p[1].median for p in points[1:-2]]
    assert all(m > 0.7 * base_activity for m in mid), (
        "fail-over is bounded by the legacy gateways' MRAI rounds until "
        f"the backup gateway itself is centralized: {points}"
    )
