"""Design goal §2: disjoint sub-clusters under one controller.

"An intra-cluster link failure does not isolate the controlled ASes:
paths over the legacy Internet could still connect the sub-clusters."

The bench splits a bar-bell cluster by failing its bridge link and
verifies: the controller sees two sub-clusters, all-pairs connectivity
survives, and cross-cluster traffic detours over legacy ASes.
"""

from conftest import bench_runs, publish

from repro.experiments import run_subcluster_experiment


def run():
    return [
        run_subcluster_experiment(seed=seed)
        for seed in range(bench_runs(5))
    ]


def report(results):
    first = results[0]
    times = sorted(r.measurement.convergence_time for r in results)
    lines = [
        "Sub-cluster split — bar-bell cluster, bridge link fails",
        "",
        f"sub-clusters before : {first.sub_clusters_before}",
        f"sub-clusters after  : {first.sub_clusters_after}",
        f"reachable before    : {first.reachable_before}",
        f"reachable after     : {first.reachable_after}",
        f"cross-cluster path  : {' -> '.join(first.cross_path_after)}",
        f"convergence times   : {[round(t, 2) for t in times]}",
        "",
        "shape: the cluster splits in two, yet every AS can still reach",
        "every other AS — cross-side traffic rides the legacy detour, the",
        "paper's stated design goal for disjoint sub-clusters.",
    ]
    return "\n".join(lines)


def test_subcluster_resilience(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("subcluster", report(results))
    for result in results:
        assert len(result.sub_clusters_before) == 1
        assert len(result.sub_clusters_after) == 2
        assert result.reachable_before and result.reachable_after
        legacy = {"as5", "as6", "as7", "as8"}
        assert legacy.intersection(result.cross_path_after), (
            result.cross_path_after
        )
        assert result.measurement.convergence_time < 120
