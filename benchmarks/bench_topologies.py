"""§3 capability: experiments on data-driven and model topologies.

The framework builds topologies from CAIDA/iPlane data and theoretical
models.  This bench runs the withdrawal experiment across four families
— clique, Barabási–Albert, synthetic CAIDA (Gao-Rexford policies),
synthetic iPlane — at 0% and 50% SDN deployment, showing how topology
and policy shape both BGP exploration and the benefit of centralization.
"""

from conftest import bench_n, bench_runs, publish, runner_kwargs

from repro.experiments import topology_family_sweep


def run():
    return topology_family_sweep(
        n=bench_n(), sdn_fraction=0.5, runs=bench_runs(3),
        **runner_kwargs(),
    )


def report(results):
    lines = [
        "Topology-family sweep — withdrawal convergence, 0% vs 50% SDN",
        "",
        f"{'family':>16} {'ASes':>5} {'links':>6}  "
        f"{'pure BGP med':>13} {'hybrid med':>11} {'reduction':>10}",
    ]
    for r in results:
        lines.append(
            f"{r.family:>16} {r.n_ases:>5} {r.n_links:>6}  "
            f"{r.pure_bgp.median:>12.1f}s {r.hybrid.median:>10.1f}s "
            f"{r.reduction:>9.1%}"
        )
    lines += [
        "",
        "shape: the dense clique explores hardest and gains most from",
        "centralization; sparse/hierarchical graphs (BA, CAIDA with",
        "valley-free policies) explore less, so the absolute win shrinks.",
    ]
    return "\n".join(lines)


def test_topology_families(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("topologies", report(results))
    by_family = {r.family: r for r in results}
    clique_result = by_family["clique"]
    # the clique is the worst case for pure BGP withdrawal
    for family, r in by_family.items():
        assert clique_result.pure_bgp.median >= r.pure_bgp.median - 1e-9, (
            family, r.pure_bgp.median, clique_result.pure_bgp.median
        )
    # centralization helps on the clique substantially
    assert clique_result.reduction > 0.3
    # every family converges (sanity across policies/latencies)
    for r in results:
        assert r.pure_bgp.maximum < 1000
        assert r.hybrid.maximum < 1000
