"""Instrumentation-bus micro-benchmark: records/sec per capture policy.

Not a paper artifact — this benchmarks the repro harness itself.  The
bus is on the hot path of every simulated message, so its overhead per
record bounds how large an emulation the framework can drive.  We push
a fixed record stream through two families of configurations:

Eager publishing (``bus.record``, heap-scheduler simulator — the
historical path):

- ``no subscribers``   — counts only (the floor every run pays),
- ``metrics only``     — the registry's per-category counters,
- ``filtered trace``   — TraceLog retaining only route-affecting records,
- ``full trace``       — TraceLog retaining everything (the old default),
- ``spans``            — a SpanTracker building the causal provenance
  DAG (one span per route-affecting record).

Lazy publishing (``bus.record_lazy``, calendar-scheduler simulator —
the kernel + trace-record changes this benchmark was extended for):

- ``lazy off``         — emitters hand the bus a payload thunk that
  never runs (no takers): the trace_level="off" sweep shape,
- ``lazy route``       — thunks run only for retained route-affecting
  records,
- ``lazy sampled``     — stride-10 subscriber; thunks run for one in
  ten occurrences,
- ``lazy full``        — every thunk runs (a subscriber retains all).

Methodology: each configuration is timed with the cyclic garbage
collector frozen and its thresholds raised (the pyperf discipline —
see ``isolated_gc``).  Retained-record configurations otherwise spend
more time in GC scans triggered by *earlier* configurations' surviving
piles than in the bus itself, which would make the ordering of the
table change the numbers.

The archived baseline records throughput and the retained-record count
of each configuration, so both a dispatch-speed regression and a
bounded-memory regression (a "filtered" config that silently retains
everything) show up in the diff.

Sampling profiler (``repro.obs.sampler``, the ``--sample-hz`` knob):

- ``sampler off``      — the no-subscriber floor loop, re-timed,
- ``sampler on``       — the same loop with a signal-mode StackSampler
  interrupting it at the default rate.

Both are best-of-``SAMPLER_REPEATS`` so the pair measures the sampler,
not scheduler jitter; the report states their ratio (a timing-derived
reading, never a raw sample count — sample totals are machine-dependent
and would trip the exact-match integer gate in
``compare_baselines.py``).

Convergence anatomy (``repro.obs.anatomy``, the ``--anatomy`` knob):

- ``anatomy off``      — one real traced withdrawal trial (spans on),
- ``anatomy on``       — the same trial plus critical-path delay
  attribution derived from its spans.

The pair times :func:`repro.runner.jobs.execute_spec` end to end, so
the reported ratio is the whole-trial cost of turning attribution on —
the derivation is pure post-processing of the span pile and must never
touch the simulation itself (the test asserts the two records share
one spec digest and measurement).

Knobs: ``REPRO_BENCH_TRACE_RECORDS`` (stream length, default 200_000);
``REPRO_BENCH_TRACE_REGISTRY`` (when set, also run one real
calendar-scheduler withdrawal trial and append its deterministic
measurement to that telemetry registry, putting calendar-mode results
under the ``repro runs regressions`` gate);
``REPRO_BENCH_SAMPLER_GATE`` (when set, maximum sampler overhead as a
percent — CI sets 5 — and the bench fails if sampler-on throughput
falls further below sampler-off than that).
"""

import gc
import os
import time
from contextlib import contextmanager

from conftest import publish

from repro.eventsim import (
    ROUTE_AFFECTING,
    InstrumentationBus,
    MetricsRegistry,
    Simulator,
    TraceLog,
)
from repro.obs import SpanTracker
from repro.obs.sampler import DEFAULT_HZ, StackSampler

#: mix mirroring a real withdrawal run: mostly updates, some decisions.
STREAM_MIX = (
    "bgp.update.tx",
    "bgp.update.rx",
    "bgp.update.tx",
    "bgp.update.rx",
    "bgp.decision",
    "fib.change",
    "bgp.keepalive",          # not route-affecting
    "controller.route_event",  # not route-affecting
)

#: the committed full-trace rate on the reference machine *before* the
#: lazy-record/calendar-kernel work (eager records, frozen-dataclass
#: TraceRecord, per-record dispatch scan).  The report states the
#: lazy-full speedup against this so the headline claim — retained
#: full-trace capture at >= 2x the old throughput — is pinned to a
#: number with provenance rather than recomputed against a moving
#: baseline.
PRE_OPTIMIZATION_FULL_TRACE_RATE = 490_802

#: sampling stride of the ``lazy sampled`` configuration.
SAMPLE_STRIDE = 10

EAGER_CONFIGS = (
    "no subscribers", "metrics only", "filtered trace", "full trace",
    "spans",
)
LAZY_CONFIGS = ("lazy off", "lazy route", "lazy sampled", "lazy full")
SAMPLER_CONFIGS = ("sampler off", "sampler on")
ANATOMY_CONFIGS = ("anatomy off", "anatomy on")

#: best-of repeats for the sampler pair — their ratio is the report's
#: overhead claim, so both sides take the least-noisy of several runs.
SAMPLER_REPEATS = 3

#: best-of repeats for the anatomy pair, same reasoning.
ANATOMY_REPEATS = 3

SAMPLER_GATE_ENV = "REPRO_BENCH_SAMPLER_GATE"


def stream_length():
    return int(os.environ.get("REPRO_BENCH_TRACE_RECORDS", 200_000))


@contextmanager
def isolated_gc():
    """Time-critical section with the cyclic GC quiesced.

    Collect whatever is already garbage, freeze the survivors out of
    the young generations, and raise the thresholds so allocation
    bursts inside the measured loop do not trigger collections whose
    cost scales with how much *previous* configurations retained.
    """
    gc.collect()
    gc.freeze()
    thresholds = gc.get_threshold()
    gc.set_threshold(50_000, 10, 10)
    try:
        yield
    finally:
        gc.set_threshold(*thresholds)
        gc.unfreeze()
        gc.collect()


def build(config):
    """One (bus, retained-records-callable) pair per configuration."""
    scheduler = "calendar" if config.startswith("lazy") else "heap"
    sim = Simulator(seed=0, scheduler=scheduler)
    bus = InstrumentationBus(sim)
    if config in ("no subscribers", "lazy off") or config in SAMPLER_CONFIGS:
        return bus, lambda: 0
    if config == "metrics only":
        registry = MetricsRegistry()
        registry.observe_bus(bus)
        return bus, lambda: 0
    if config in ("filtered trace", "lazy route"):
        trace = TraceLog(bus, categories=tuple(sorted(ROUTE_AFFECTING)))
        return bus, lambda: len(trace.records)
    if config == "lazy sampled":
        trace = TraceLog(bus, sample=SAMPLE_STRIDE)
        return bus, lambda: len(trace.records)
    if config in ("full trace", "lazy full"):
        trace = TraceLog(bus)
        return bus, lambda: len(trace.records)
    if config == "spans":
        obs = SpanTracker(sim)
        bus.obs = obs
        return bus, lambda: len(obs.spans)
    raise ValueError(config)


def run_once(config, n):
    bus, retained = build(config)
    categories = [STREAM_MIX[i % len(STREAM_MIX)] for i in range(n)]
    lazy = config.startswith("lazy")
    sampler = StackSampler(hz=DEFAULT_HZ) if config == "sampler on" else None
    with isolated_gc():
        if sampler is not None:
            sampler.start()
        try:
            started = time.perf_counter()
            if lazy:
                record_lazy = bus.record_lazy
                for category in categories:
                    record_lazy(category, "as1", lambda: {"peer": "as2"})
            else:
                record = bus.record
                for category in categories:
                    record(category, "as1", peer="as2")
            elapsed = time.perf_counter() - started
        finally:
            if sampler is not None:
                sampler.stop()
    return {
        "config": config,
        "elapsed": elapsed,
        "rate": n / elapsed if elapsed > 0 else float("inf"),
        "retained": retained(),
        "counted": bus.records_published,
    }


def run_config(config, n):
    repeats = SAMPLER_REPEATS if config in SAMPLER_CONFIGS else 1
    rows = [run_once(config, n) for _ in range(repeats)]
    return min(rows, key=lambda row: row["elapsed"])


def run_all():
    n = stream_length()
    return [
        run_config(config, n)
        for config in EAGER_CONFIGS + LAZY_CONFIGS + SAMPLER_CONFIGS
    ]


def anatomy_spec(config):
    from repro.experiments import WithdrawalScenario
    from repro.runner.jobs import RunSpec
    from repro.topology import clique

    return RunSpec(
        scenario_factory=WithdrawalScenario,
        topology_factory=clique,
        n=8,
        sdn_count=0,
        seed=0,
        spans=True,
        anatomy=(config == "anatomy on"),
        label=f"bench-trace-overhead {config}",
    )


def run_anatomy_pair():
    """Whole-trial cost of deriving the convergence anatomy."""
    from repro.runner.jobs import execute_spec

    rows = []
    for config in ANATOMY_CONFIGS:
        best = None
        for _ in range(ANATOMY_REPEATS):
            spec = anatomy_spec(config)
            with isolated_gc():
                started = time.perf_counter()
                record = execute_spec(spec)
                elapsed = time.perf_counter() - started
            if best is None or elapsed < best["elapsed"]:
                best = {
                    "config": config,
                    "elapsed": elapsed,
                    "record": record,
                }
        rows.append(best)
    return rows


def record_registry_row():
    """Optional: pin calendar-mode results under the regression gate.

    When ``REPRO_BENCH_TRACE_REGISTRY`` names a registry database, run
    one real withdrawal trial with ``scheduler="calendar"`` and append
    its (fully deterministic) measurement.  Successive CI passes then
    record the same spec digest, and ``repro runs regressions`` flags
    any drift in the calendar kernel's virtual-time results.
    """
    path = os.environ.get("REPRO_BENCH_TRACE_REGISTRY")
    if not path:
        return None
    from repro.experiments import WithdrawalScenario
    from repro.obs.registry import RunRegistry
    from repro.runner.jobs import RunRecord, RunSpec, run_trial
    from repro.topology import clique

    spec = RunSpec(
        scenario_factory=WithdrawalScenario,
        topology_factory=clique,
        n=8,
        sdn_count=0,
        seed=0,
        trace_level="off",
        scheduler="calendar",
        label="bench-trace-overhead calendar",
    )
    started = time.perf_counter()
    measurement = run_trial(spec)
    wall = time.perf_counter() - started
    registry = RunRegistry(path)
    registry.record(
        spec,
        RunRecord(
            digest=spec.digest(),
            ok=True,
            measurement=measurement,
            wall_time=wall,
            worker="bench-trace",
        ),
    )
    return spec


def report(rows, anatomy_rows=None):
    n = rows[0]["counted"]
    lines = [
        f"Instrumentation bus overhead — {n} records "
        f"({len(STREAM_MIX)}-category mix, 6/8 route-affecting)",
        "",
        f"{'config':>16} {'records/sec':>14} {'retained':>10} {'counted':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['config']:>16} {row['rate']:>13,.0f} "
            f"{row['retained']:>10} {row['counted']:>10}"
        )
    by_config = {row["config"]: row for row in rows}
    full = by_config["full trace"]
    floor = by_config["no subscribers"]
    lazy_off = by_config["lazy off"]
    lazy_full = by_config["lazy full"]
    lines += [
        "",
        f"capture cost: full trace runs at "
        f"{full['rate'] / floor['rate']:.0%} of the no-subscriber floor;",
        f"lazy publishing with nothing attached reaches "
        f"{lazy_off['rate'] / floor['rate']:.0%} of that floor.",
        f"lazy full capture: {lazy_full['rate']:,.0f} records/sec = "
        f"{lazy_full['rate'] / PRE_OPTIMIZATION_FULL_TRACE_RATE:.2f}x the "
        f"pre-optimization full-trace rate",
        f"({PRE_OPTIMIZATION_FULL_TRACE_RATE:,} records/sec on the "
        "reference machine).",
        f"sampling profiler: with a {DEFAULT_HZ:.0f} Hz signal-mode "
        "sampler attached, the floor loop",
        f"sustains {sampler_ratio(rows):.2f}x its unsampled rate "
        f"(best of {SAMPLER_REPEATS} per side).",
        "counts stay complete in every configuration (the 'counted'",
        "column), so measurement never depends on what was retained.",
    ]
    if anatomy_rows:
        on = next(r for r in anatomy_rows if r["config"] == "anatomy on")
        off = next(r for r in anatomy_rows if r["config"] == "anatomy off")
        record = on["record"]
        lines += [
            f"convergence anatomy: a traced trial with "
            f"{len(record.spans)} spans and "
            f"{len(record.anatomy['nodes'])} per-AS waterfalls takes "
            f"{on['elapsed'] / off['elapsed']:.2f}x its attribution-off "
            f"wall time (best of {ANATOMY_REPEATS} per side);",
            "attribution is pure span post-processing and leaves the "
            "spec digest unchanged.",
        ]
    return "\n".join(lines)


def sampler_ratio(rows):
    """Sampler-on throughput as a fraction of sampler-off."""
    by_config = {row["config"]: row for row in rows}
    return (
        by_config["sampler on"]["rate"] / by_config["sampler off"]["rate"]
    )


def test_trace_overhead(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    anatomy_rows = run_anatomy_pair()
    publish("trace_overhead", report(rows, anatomy_rows))
    record_registry_row()
    # anatomy is invisible to results: same digest, same measurement,
    # and only the "on" record carries the attribution payload
    by_anatomy = {row["config"]: row["record"] for row in anatomy_rows}
    record_on = by_anatomy["anatomy on"]
    record_off = by_anatomy["anatomy off"]
    assert record_on.digest == record_off.digest
    assert record_on.measurement_dict() == record_off.measurement_dict()
    assert record_on.anatomy is not None and record_off.anatomy is None
    from repro.obs.anatomy import check_anatomy

    assert check_anatomy(
        record_on.anatomy,
        t_converged=record_on.measurement.t_converged,
    ) == []
    by_config = {row["config"]: row for row in rows}
    n = stream_length()
    # every configuration counts every record — record_lazy included
    assert all(row["counted"] == n for row in rows), rows
    # bounded memory: only the trace configs retain records, and the
    # filter retains exactly the route-affecting share of the mix
    assert by_config["no subscribers"]["retained"] == 0
    assert by_config["metrics only"]["retained"] == 0
    assert by_config["lazy off"]["retained"] == 0
    route_share = sum(
        1 for c in STREAM_MIX if c in ROUTE_AFFECTING
    ) / len(STREAM_MIX)
    assert by_config["filtered trace"]["retained"] == int(n * route_share)
    assert by_config["lazy route"]["retained"] == int(n * route_share)
    assert by_config["full trace"]["retained"] == n
    assert by_config["lazy full"]["retained"] == n
    # stride-S sampling retains exactly every Sth occurrence
    assert by_config["lazy sampled"]["retained"] == -(-n // SAMPLE_STRIDE)
    # the span tracker materializes exactly one span per route-affecting
    # record — the invariant the provenance DAG's accounting rests on
    assert by_config["spans"]["retained"] == int(n * route_share)
    # the point of laziness: with nothing attached the thunks never run,
    # so the lazy-off path must beat retained full-trace capture.
    assert by_config["lazy off"]["rate"] > by_config["full trace"]["rate"]
    # the sampler rows retain nothing and count everything: the
    # profiler observes the loop, it never participates in it
    for config in SAMPLER_CONFIGS:
        assert by_config[config]["retained"] == 0
        assert by_config[config]["counted"] == n
    # opt-in overhead gate (CI sets 5): sampler-on throughput may not
    # fall further below sampler-off than the given percentage
    gate = os.environ.get(SAMPLER_GATE_ENV)
    if gate:
        limit = float(gate) / 100.0
        overhead = max(0.0, 1.0 - sampler_ratio(rows))
        assert overhead <= limit, (
            f"sampling profiler overhead {overhead:.1%} exceeds the "
            f"{limit:.0%} gate ({SAMPLER_GATE_ENV}={gate})"
        )
