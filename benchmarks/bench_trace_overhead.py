"""Instrumentation-bus micro-benchmark: records/sec per capture policy.

Not a paper artifact — this benchmarks the repro harness itself.  The
bus is on the hot path of every simulated message, so its overhead per
record bounds how large an emulation the framework can drive.  We push
a fixed record stream through five configurations:

- ``no subscribers``   — counts only (the floor every run pays),
- ``metrics only``     — the registry's per-category counters,
- ``filtered trace``   — TraceLog retaining only route-affecting records,
- ``full trace``       — TraceLog retaining everything (the old default),
- ``spans``            — a SpanTracker building the causal provenance
  DAG (one span per route-affecting record).

The archived baseline records throughput and the retained-record count
of each configuration, so both a dispatch-speed regression and a
bounded-memory regression (a "filtered" config that silently retains
everything) show up in the diff.

Knobs: ``REPRO_BENCH_TRACE_RECORDS`` (stream length, default 200_000).
"""

import os
import time

from conftest import publish

from repro.eventsim import (
    ROUTE_AFFECTING,
    InstrumentationBus,
    MetricsRegistry,
    Simulator,
    TraceLog,
)
from repro.obs import SpanTracker

#: mix mirroring a real withdrawal run: mostly updates, some decisions.
STREAM_MIX = (
    "bgp.update.tx",
    "bgp.update.rx",
    "bgp.update.tx",
    "bgp.update.rx",
    "bgp.decision",
    "fib.change",
    "bgp.keepalive",          # not route-affecting
    "controller.route_event",  # not route-affecting
)


def stream_length():
    return int(os.environ.get("REPRO_BENCH_TRACE_RECORDS", 200_000))


def build(config):
    """One (bus, retained-records-callable) pair per configuration."""
    sim = Simulator(seed=0)
    bus = InstrumentationBus(sim)
    if config == "no subscribers":
        return bus, lambda: 0
    if config == "metrics only":
        registry = MetricsRegistry()
        registry.observe_bus(bus)
        return bus, lambda: 0
    if config == "filtered trace":
        trace = TraceLog(bus, categories=tuple(sorted(ROUTE_AFFECTING)))
        return bus, lambda: len(trace.records)
    if config == "full trace":
        trace = TraceLog(bus)
        return bus, lambda: len(trace.records)
    if config == "spans":
        obs = SpanTracker(sim)
        bus.obs = obs
        return bus, lambda: len(obs.spans)
    raise ValueError(config)


def run_config(config, n):
    bus, retained = build(config)
    categories = [STREAM_MIX[i % len(STREAM_MIX)] for i in range(n)]
    started = time.perf_counter()
    record = bus.record
    for category in categories:
        record(category, "as1", peer="as2")
    elapsed = time.perf_counter() - started
    return {
        "config": config,
        "elapsed": elapsed,
        "rate": n / elapsed if elapsed > 0 else float("inf"),
        "retained": retained(),
        "counted": bus.records_published,
    }


def run_all():
    n = stream_length()
    return [
        run_config(config, n)
        for config in (
            "no subscribers", "metrics only", "filtered trace",
            "full trace", "spans",
        )
    ]


def report(rows):
    n = rows[0]["counted"]
    lines = [
        f"Instrumentation bus overhead — {n} records "
        f"({len(STREAM_MIX)}-category mix, 6/8 route-affecting)",
        "",
        f"{'config':>16} {'records/sec':>14} {'retained':>10} {'counted':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['config']:>16} {row['rate']:>13,.0f} "
            f"{row['retained']:>10} {row['counted']:>10}"
        )
    full = next(r for r in rows if r["config"] == "full trace")
    floor = next(r for r in rows if r["config"] == "no subscribers")
    lines += [
        "",
        f"capture cost: full trace runs at "
        f"{full['rate'] / floor['rate']:.0%} of the no-subscriber floor;",
        "counts stay complete in every configuration (the 'counted'",
        "column), so measurement never depends on what was retained.",
    ]
    return "\n".join(lines)


def test_trace_overhead(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    publish("trace_overhead", report(rows))
    by_config = {row["config"]: row for row in rows}
    n = stream_length()
    # every configuration counts every record
    assert all(row["counted"] == n for row in rows), rows
    # bounded memory: only the trace configs retain records, and the
    # filter retains exactly the route-affecting share of the mix
    assert by_config["no subscribers"]["retained"] == 0
    assert by_config["metrics only"]["retained"] == 0
    route_share = sum(
        1 for c in STREAM_MIX if c in ROUTE_AFFECTING
    ) / len(STREAM_MIX)
    assert by_config["filtered trace"]["retained"] == int(n * route_share)
    assert by_config["full trace"]["retained"] == n
    # the span tracker materializes exactly one span per route-affecting
    # record — the invariant the provenance DAG's accounting rests on
    assert by_config["spans"]["retained"] == int(n * route_share)
