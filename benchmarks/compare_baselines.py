"""Tolerance gate between two benchmark result directories.

Usage::

    python benchmarks/compare_baselines.py BASELINE_DIR CANDIDATE_DIR \
        [--tolerance 0.5] [--require name1.txt name2.txt ...]

Compares every ``*.txt`` report in ``BASELINE_DIR`` against the file of
the same name in ``CANDIDATE_DIR``, token by token:

- non-numeric tokens must match exactly (a changed label or a missing
  table row is a structural regression, not noise);
- plain integers (counts, retained records, span totals) must match
  exactly — the simulator is virtual-time deterministic, so these can
  never legitimately drift;
- every other number (throughput rates, wall-clock-derived percentages,
  decimal readings) must agree within ``--tolerance`` relative error,
  absorbing shared-runner timing noise while still catching large
  regressions.

Exit status 0 when every file passes, 1 otherwise — wire it into CI as
a gate after re-running the quick-mode benches.  Stdlib only.
"""

import argparse
import pathlib
import re
import sys

#: number with optional comma grouping, decimal part, and % suffix.
_NUMBER = re.compile(r"^[+-]?\d{1,3}(?:,\d{3})*(?:\.\d+)?%?$|^[+-]?\d+(?:\.\d+)?%?$")
#: punctuation that clings to numeric tokens in prose ("10%;", "(2.5s)").
_STRIP = "()[]{};:,"


def _tokens(text):
    return text.split()


def _parse_number(token):
    """Return (value, is_plain_int) or None when not numeric."""
    core = token.strip(_STRIP)
    for suffix in ("s", "x"):  # units glued to readings: "2.5s", "1.3x"
        trimmed = core[: -len(suffix)]
        if core.endswith(suffix) and trimmed and _NUMBER.match(trimmed):
            core = trimmed
            break
    if not _NUMBER.match(core):
        return None
    percent = core.endswith("%")
    if percent:
        core = core[:-1]
    grouped = "," in core
    value = float(core.replace(",", ""))
    plain_int = "." not in core and not grouped and not percent
    return value, plain_int


def compare_texts(baseline, candidate, tolerance):
    """Return a list of human-readable mismatch descriptions."""
    problems = []
    base_tokens, cand_tokens = _tokens(baseline), _tokens(candidate)
    if len(base_tokens) != len(cand_tokens):
        problems.append(
            f"structure changed: {len(base_tokens)} tokens in baseline "
            f"vs {len(cand_tokens)} in candidate"
        )
        return problems
    for base, cand in zip(base_tokens, cand_tokens):
        base_num, cand_num = _parse_number(base), _parse_number(cand)
        if base_num is None or cand_num is None:
            if base != cand:
                problems.append(f"token mismatch: {base!r} vs {cand!r}")
            continue
        (b_val, b_int), (c_val, _) = base_num, cand_num
        if b_int:
            if b_val != c_val:
                problems.append(
                    f"deterministic count drifted: {base!r} vs {cand!r}"
                )
            continue
        scale = max(abs(b_val), abs(c_val))
        if scale and abs(b_val - c_val) / scale > tolerance:
            problems.append(
                f"outside {tolerance:.0%} tolerance: {base!r} vs {cand!r}"
            )
    return problems


def compare_dirs(baseline_dir, candidate_dir, tolerance, require=()):
    baseline_dir = pathlib.Path(baseline_dir)
    candidate_dir = pathlib.Path(candidate_dir)
    names = sorted(p.name for p in baseline_dir.glob("*.txt"))
    missing_required = [n for n in require if n not in names]
    failures = {}
    for name in missing_required:
        failures[name] = [f"required report missing from baseline: {name}"]
    for name in names:
        candidate = candidate_dir / name
        if not candidate.exists():
            failures[name] = ["missing from candidate directory"]
            continue
        problems = compare_texts(
            (baseline_dir / name).read_text(),
            candidate.read_text(),
            tolerance,
        )
        if problems:
            failures[name] = problems
    return names, failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="tolerance gate between benchmark result directories"
    )
    parser.add_argument("baseline", help="directory of baseline *.txt reports")
    parser.add_argument("candidate", help="directory of candidate reports")
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="max relative error for timing-derived numbers (default 0.5)",
    )
    parser.add_argument(
        "--require", nargs="*", default=[],
        help="report names that must exist in the baseline directory",
    )
    args = parser.parse_args(argv)

    names, failures = compare_dirs(
        args.baseline, args.candidate, args.tolerance, args.require
    )
    if not names:
        print(f"no *.txt reports under {args.baseline}", file=sys.stderr)
        return 1
    for name in names:
        status = "FAIL" if name in failures else "ok"
        print(f"{status:>4}  {name}")
        for problem in failures.get(name, []):
            print(f"        {problem}")
    for name in failures:
        if name not in names:
            print(f"FAIL  {name}")
            for problem in failures[name]:
                print(f"        {problem}")
    if failures:
        print(f"\n{len(failures)} report(s) failed the gate", file=sys.stderr)
        return 1
    print(f"\nall {len(names)} report(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
