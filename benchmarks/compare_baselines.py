"""Tolerance gate between two benchmark result directories.

Usage::

    python benchmarks/compare_baselines.py BASELINE_DIR CANDIDATE_DIR \
        [--tolerance 0.5] [--require name1.txt name2.txt ...]

Compares every ``*.txt`` report in ``BASELINE_DIR`` against the file of
the same name in ``CANDIDATE_DIR``, token by token:

- non-numeric tokens must match exactly (a changed label or a missing
  table row is a structural regression, not noise);
- plain integers (counts, retained records, span totals) must match
  exactly — the simulator is virtual-time deterministic, so these can
  never legitimately drift;
- every other number (throughput rates, wall-clock-derived percentages,
  decimal readings) must agree within ``--tolerance`` relative error,
  absorbing shared-runner timing noise while still catching large
  regressions.

Exit status 0 when every file passes, 1 otherwise — wire it into CI as
a gate after re-running the quick-mode benches.

The comparison logic lives in :mod:`repro.obs.trends` (shared with the
``repro runs regressions --against-baseline`` subcommand and the
registry-backed trend gate); this script is a thin CLI-compatible
wrapper around it.  Stdlib only.
"""

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.obs.trends import compare_report_dirs  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="tolerance gate between benchmark result directories"
    )
    parser.add_argument("baseline", help="directory of baseline *.txt reports")
    parser.add_argument("candidate", help="directory of candidate reports")
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="max relative error for timing-derived numbers (default 0.5)",
    )
    parser.add_argument(
        "--require", nargs="*", default=[],
        help="report names that must exist in the baseline directory",
    )
    args = parser.parse_args(argv)

    names, failures = compare_report_dirs(
        args.baseline, args.candidate, args.tolerance, args.require
    )
    if not names:
        print(f"no *.txt reports under {args.baseline}", file=sys.stderr)
        return 1
    for name in names:
        status = "FAIL" if name in failures else "ok"
        print(f"{status:>4}  {name}")
        for problem in failures.get(name, []):
            print(f"        {problem}")
    for name in failures:
        if name not in names:
            print(f"FAIL  {name}")
            for problem in failures[name]:
                print(f"        {problem}")
    if failures:
        print(f"\n{len(failures)} report(s) failed the gate", file=sys.stderr)
        return 1
    print(f"\nall {len(names)} report(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
