"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (a figure, a reported
result, or an ablation of a design choice), prints the same rows/series
the paper reports, asserts the qualitative *shape*, and archives the
text report under ``benchmarks/results/``.

Environment knobs:

- ``REPRO_BENCH_RUNS``    — seeded runs per sweep point (default: 10 for
  Fig. 2, 5 elsewhere; lower it for a quick smoke pass).
- ``REPRO_BENCH_N``       — clique size (default 16, the paper's).
- ``REPRO_BENCH_WORKERS`` — worker processes for sweep benches (default
  1 = serial; results are bit-identical at any count, see
  docs/runner.md).
- ``REPRO_BENCH_CACHE``   — result-cache directory; re-runs of a bench
  only execute trials missing from the cache.
"""

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_runs(default):
    return int(os.environ.get("REPRO_BENCH_RUNS", default))


def bench_n():
    return int(os.environ.get("REPRO_BENCH_N", 16))


def bench_workers():
    return int(os.environ.get("REPRO_BENCH_WORKERS", 1))


def bench_cache():
    return os.environ.get("REPRO_BENCH_CACHE") or None


def runner_kwargs():
    """Keyword arguments routing a sweep through the parallel runner."""
    return {"workers": bench_workers(), "cache": bench_cache()}


def publish(name, text):
    """Print a report and archive it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
