#!/usr/bin/env python3
"""Fig. 1 walk-through: every component of a hybrid BGP/SDN experiment.

Recreates the paper's example setup — a legacy BGP part, an SDN cluster
with OpenFlow switches, the cluster BGP speaker, the IDR controller, a
route collector, and monitoring hosts — then shows the framework's
tooling: device inventory, rendered Quagga/ExaBGP configs, the DOT
topology export, and a live route-change timeline.

Run:  python examples/components_demo.py
"""

from repro.analysis import route_change_timeline, route_history, topology_dot
from repro.bgp import BGPRouter, RouteCollector
from repro.config import render_bgpd_conf, render_exabgp_conf
from repro.experiments import paper_config
from repro.framework import Experiment
from repro.sdn import SDNSwitch
from repro.topology import clique


def main():
    sdn_members = {4, 5, 6}
    topology = clique(6)
    exp = Experiment(
        topology,
        sdn_members=sdn_members,
        config=paper_config(seed=7, mrai=5.0),
        name="fig1-demo",
    ).start()

    print("== Components (paper Fig. 1) ==")
    legacy = [n for n in exp.as_nodes() if isinstance(n, BGPRouter)]
    switches = [n for n in exp.as_nodes() if isinstance(n, SDNSwitch)]
    print(f"legacy BGP routers : {[n.name for n in legacy]}")
    print(f"SDN cluster members: {[n.name for n in switches]}")
    print(f"IDR controller     : {exp.controller.name} "
          f"({len(exp.controller.members())} members, "
          f"{exp.controller.recomputations} recomputations so far)")
    print(f"cluster BGP speaker: {exp.speaker.name} "
          f"({len(exp.speaker.peerings())} external peerings)")
    collectors = exp.net.nodes_of_type(RouteCollector)
    print(f"route collector    : {collectors[0].name} "
          f"({len(collectors[0].feed)} updates collected)")

    host_a = exp.add_host(1)
    host_b = exp.add_host(5)
    exp.wait_converged()
    print(f"monitoring hosts   : {host_a.name} ({host_a.address}), "
          f"{host_b.name} ({host_b.address})")

    print("\n== Connectivity check (ping across the hybrid boundary) ==")
    rtt = exp.ping(1, 5)
    print(f"as1 -> as5 (SDN member): rtt = {rtt * 1000:.1f} ms")
    print(f"all AS pairs reachable : {exp.all_reachable()}")

    print("\n== Rendered Quagga config for as1 (excerpt) ==")
    conf = render_bgpd_conf(exp.node(1))
    print("\n".join(conf.splitlines()[:14]))

    print("\n== Rendered ExaBGP config for the cluster speaker (excerpt) ==")
    print("\n".join(render_exabgp_conf(exp.speaker).splitlines()[:9]))

    print("\n== Route-change visualization: withdrawal of a prefix ==")
    prefix = exp.announce(1)
    exp.wait_converged()
    t0 = exp.now
    exp.withdraw(1, prefix)
    exp.wait_converged()
    changes = [c for c in route_history(exp.net.trace, prefix) if c.time >= t0]
    print(route_change_timeline(changes, t0=t0, max_rows=12))

    print("\n== Graphviz export (render with `dot -Tpng`) ==")
    print("\n".join(topology_dot(topology, sdn_members=sdn_members).splitlines()[:8]))
    print("...")


if __name__ == "__main__":
    main()
