#!/usr/bin/env python3
"""Data-driven topologies: CAIDA as-rel and iPlane inter-PoP pipelines.

The paper builds experiment topologies "from the iPlane Inter-PoP links
and the CAIDA AS Relationship datasets".  This example exercises both
pipelines end to end with the bundled synthetic generators (the real
datasets drop in without code changes — same file formats), runs a
Gao-Rexford-policied emulation on the CAIDA-style graph, and reports
structure + convergence.

Run:  python examples/dataset_topologies.py
"""

from repro.analysis import summarize_topology
from repro.experiments import paper_config
from repro.framework import Experiment, measure_event
from repro.topology import (
    generate_as_rel,
    generate_interpop,
    parse_as_rel,
    parse_interpop,
)


def caida_pipeline():
    print("== CAIDA as-rel pipeline ==")
    text = generate_as_rel(tier1=3, transit=5, stubs=10, seed=11)
    print("generated as-rel file (first 6 lines):")
    print("\n".join(text.splitlines()[:6]))
    topo = parse_as_rel(text, name="caida-demo")
    topo.validate()
    print(f"\nparsed: {summarize_topology(topo).describe()}")

    config = paper_config(seed=11, mrai=5.0, policy_mode="gao_rexford")
    exp = Experiment(topo, config=config).start()
    print(f"converged with Gao-Rexford policies; "
          f"all pairs reachable: {exp.all_reachable()}")

    stub = topo.asns[-1]
    prefix = exp.announce(stub)
    exp.wait_converged()
    m = measure_event(exp, lambda: exp.withdraw(stub, prefix))
    print(f"stub AS{stub} withdrawal: {m.convergence_time:.1f}s, "
          f"{m.updates_tx} updates\n")


def iplane_pipeline():
    print("== iPlane inter-PoP pipeline ==")
    text = generate_interpop(n_as=10, seed=11)
    print("generated inter-PoP file (first 5 lines):")
    print("\n".join(text.splitlines()[:5]))
    topo = parse_interpop(text, name="iplane-demo")
    print(f"\nparsed: {summarize_topology(topo).describe()}")
    latencies = sorted(link.latency * 1000 for link in topo.links)
    print(f"link latencies: {latencies[0]:.1f}ms .. {latencies[-1]:.1f}ms "
          f"(median {latencies[len(latencies) // 2]:.1f}ms)")

    exp = Experiment(topo, config=paper_config(seed=11, mrai=5.0)).start()
    a, b = topo.asns[0], topo.asns[-1]
    rtt = exp.ping(a, b)
    print(f"measured rtt AS{a} -> AS{b}: {rtt * 1000:.1f} ms "
          f"(shaped by the dataset's latencies)")


def main():
    caida_pipeline()
    iplane_pipeline()


if __name__ == "__main__":
    main()
