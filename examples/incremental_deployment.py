#!/usr/bin/env python3
"""Incremental deployment: growing the network at runtime, two ways.

The paper's premise is that "when deploying a new IDR approach one
cannot change the whole infrastructure at once."  This example uses the
framework's dynamic-topology support to grow a clique from 8 to 12 ASes
while the emulation runs, under two growth policies:

  A) every new AS joins as a *legacy* BGP router;
  B) every new AS joins the *SDN cluster*.

After each join we withdraw a prefix and measure convergence.  Legacy
growth makes withdrawal convergence *worse* (more ASes explore, each
adding MRAI-paced rounds); cluster growth keeps it flat — incremental
deployment contains the damage of Internet growth.

Run:  python examples/incremental_deployment.py
"""

from repro.experiments import paper_config
from repro.framework import Experiment, measure_event
from repro.topology import clique


def grow(sdn_growth: bool, *, n_initial=8, joins=(9, 10, 11, 12), mrai=10.0):
    """Grow the clique one AS at a time; return per-step convergence."""
    exp = Experiment(
        clique(n_initial),
        sdn_members={n_initial},  # seed cluster: one member
        config=paper_config(seed=5, mrai=mrai),
        name="incremental",
    ).start()

    def withdrawal_time():
        prefix = exp.announce(1)
        exp.wait_converged()
        return measure_event(
            exp, lambda: exp.withdraw(1, prefix)
        ).convergence_time

    steps = [(len(exp.topology), withdrawal_time())]
    for new_asn in joins:
        exp.add_as(new_asn, sdn=sdn_growth, links=list(exp.topology.asns))
        exp.wait_converged()
        steps.append((len(exp.topology), withdrawal_time()))
    return steps


def main():
    print("Incremental deployment: growing an 8-AS clique to 12 ASes")
    print("=" * 62)

    legacy_growth = grow(sdn_growth=False)
    cluster_growth = grow(sdn_growth=True)

    print(f"\n{'total ASes':>10} {'legacy growth':>15} {'cluster growth':>15}")
    for (n, t_legacy), (_, t_cluster) in zip(legacy_growth, cluster_growth):
        print(f"{n:>10} {t_legacy:>14.1f}s {t_cluster:>14.1f}s")

    t0_legacy, t1_legacy = legacy_growth[0][1], legacy_growth[-1][1]
    t0_sdn, t1_sdn = cluster_growth[0][1], cluster_growth[-1][1]
    print(f"\nlegacy growth : withdrawal convergence "
          f"{t0_legacy:.0f}s -> {t1_legacy:.0f}s "
          f"(+{(t1_legacy / t0_legacy - 1) * 100:.0f}%)")
    print(f"cluster growth: withdrawal convergence "
          f"{t0_sdn:.0f}s -> {t1_sdn:.0f}s "
          f"({(t1_sdn / t0_sdn - 1) * 100:+.0f}%)")
    print("\nevery AS that joins the legacy world lengthens BGP's")
    print("exploration; every AS that joins the cluster doesn't.")


if __name__ == "__main__":
    main()
