#!/usr/bin/env python3
"""Quickstart: measure how SDN centralization speeds up BGP convergence.

Builds two 8-AS clique emulations — one pure BGP, one with half the ASes
under the IDR controller — withdraws a prefix in each, and compares
convergence times.  This is the paper's headline effect in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro.experiments import paper_config
from repro.framework import Experiment, measure_event
from repro.topology import clique


def run_withdrawal(sdn_members, seed=42):
    """Announce a prefix from AS1, withdraw it, return the measurement."""
    exp = Experiment(
        clique(8),
        sdn_members=sdn_members,
        config=paper_config(seed=seed, mrai=30.0),
    ).start()
    prefix = exp.announce(1)          # AS1 originates 192.168.0.0/24
    exp.wait_converged()
    return measure_event(exp, lambda: exp.withdraw(1, prefix))


def main():
    print("Hybrid BGP-SDN emulation quickstart (8-AS clique, MRAI 30s)")
    print("=" * 62)

    pure = run_withdrawal(sdn_members=set())
    print(
        f"pure BGP      : converged in {pure.convergence_time:7.1f}s "
        f"({pure.updates_tx} updates, {pure.decision_changes} decision changes)"
    )

    hybrid = run_withdrawal(sdn_members={5, 6, 7, 8})
    print(
        f"4/8 ASes SDN  : converged in {hybrid.convergence_time:7.1f}s "
        f"({hybrid.updates_tx} updates, {hybrid.recomputations} controller "
        f"recomputations)"
    )

    speedup = pure.convergence_time / max(hybrid.convergence_time, 1e-9)
    print(f"\ncentralizing half the clique cut convergence {speedup:.1f}x")
    print("(withdrawals trigger MRAI-paced path exploration in legacy BGP;")
    print(" the IDR controller replaces it with one Dijkstra run)")


if __name__ == "__main__":
    main()
