#!/usr/bin/env python3
"""The demo's "end-to-end video application" during a routing event.

The paper's demo shows a video stream visibly degrading while BGP
reconverges.  Here the stream is a constant-rate probe flow between two
hosts; we fail the link carrying it and compare the outage window under
pure BGP vs with the receiving side's neighbours in an SDN cluster.

Run:  python examples/video_stream_failover.py
"""

from repro.experiments import paper_config
from repro.framework import Experiment, ProbeStream
from repro.topology import clique


def stream_outage(sdn_members, seed=3):
    """Fail as1-as2 mid-stream; return (loss report, convergence info)."""
    exp = Experiment(
        clique(8),
        sdn_members=sdn_members,
        config=paper_config(seed=seed, mrai=30.0),
    ).start()
    sender = exp.add_host(2)    # "video server" in AS2
    receiver = exp.add_host(1)  # "viewer" in AS1
    exp.wait_converged()

    stream = ProbeStream(sender, receiver, interval=0.04)  # 25 pkt/s
    stream.start()
    exp.net.sim.run(until=exp.now + 3.0)   # 3s of clean playback
    exp.fail_link(1, 2)                    # the direct path dies
    exp.wait_converged()
    exp.net.sim.run(until=exp.now + 3.0)   # 3s of recovered playback
    stream.stop()
    return stream.report()


def describe(label, report):
    print(f"{label}:")
    print(f"  probes sent/lost : {report.sent}/{report.lost} "
          f"(loss rate {report.loss_rate * 100:.1f}%)")
    print(f"  longest outage   : {report.longest_outage * 1000:.0f} ms")
    print(f"  loss windows     : {len(report.loss_windows)}")


def main():
    print("Video-stream fail-over demo (8-AS clique, stream as2 -> as1)")
    print("=" * 62)
    describe("pure BGP", stream_outage(set()))
    print()
    describe("ASes 5-8 under IDR controller", stream_outage({5, 6, 7, 8}))
    print("\nOn a clique both recover fast (the victim has direct")
    print("alternatives); the interesting comparison is the withdrawal")
    print("experiment - see examples/withdrawal_study.py.")


if __name__ == "__main__":
    main()
