#!/usr/bin/env python3
"""Mini Fig. 2: withdrawal convergence vs SDN deployment fraction.

Runs the paper's route-withdrawal sweep on a smaller clique (so it
finishes in ~30s) and renders the boxplots as ASCII art plus a linear
fit.  For the full 16-AS / 10-run reproduction, run
``pytest benchmarks/bench_fig2_withdrawal.py --benchmark-only -s``.

Run:  python examples/withdrawal_study.py
"""

from repro.analysis import ascii_boxplot_chart
from repro.experiments import withdrawal_sweep


def main():
    n = 10
    print(f"Withdrawal convergence vs SDN fraction ({n}-AS clique, "
          f"MRAI 30s, 5 runs/point)")
    print("=" * 70)

    result = withdrawal_sweep(
        n=n, sdn_counts=[0, 2, 4, 6, 8, 9], runs=5, mrai=30.0,
    )

    rows = [
        (f"{p.sdn_count:2d}/{n} SDN", p.stats) for p in result.points
    ]
    print(ascii_boxplot_chart(rows, title="convergence time boxplots", unit="s"))

    fit = result.fit()
    print(f"\nlinear fit over medians: "
          f"t = {fit.slope:.1f} * fraction + {fit.intercept:.1f}  "
          f"(R^2 = {fit.r_squared:.3f})")
    print(f"total reduction at max deployment: "
          f"{result.reduction_at_full() * 100:.0f}%")
    print("\npaper's claim: convergence falls linearly with the SDN "
          "fraction — check the R^2 above.")


if __name__ == "__main__":
    main()
