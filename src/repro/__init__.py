"""Hybrid BGP-SDN emulation framework.

Reproduction of "Evaluating the Effect of Centralization on Routing
Convergence on a Hybrid BGP-SDN Emulation Framework" (Gämperli,
Kotronis, Dimitropoulos — SIGCOMM 2014 demo).

Quick tour (see ``examples/quickstart.py`` for a runnable version)::

    from repro.topology import clique
    from repro.framework import Experiment, measure_event
    from repro.experiments import paper_config

    exp = Experiment(
        clique(16),
        sdn_members={9, 10, 11, 12, 13, 14, 15, 16},
        config=paper_config(seed=1),
    ).start()
    prefix = exp.announce(1)
    exp.wait_converged()
    m = measure_event(exp, lambda: exp.withdraw(1, prefix))
    print(f"converged in {m.convergence_time:.1f}s")

Package map:

- ``repro.eventsim``   — deterministic discrete-event kernel
- ``repro.net``        — addresses, links, nodes, FIBs, data plane
- ``repro.bgp``        — BGP-4 speakers (the Quagga substitute)
- ``repro.sdn``        — OpenFlow-style switches and flow tables
- ``repro.controller`` — the IDR controller + cluster BGP speaker
- ``repro.topology``   — clique/model builders, CAIDA/iPlane datasets
- ``repro.config``     — address allocation, config rendering
- ``repro.framework``  — experiment lifecycle orchestration
- ``repro.analysis``   — log analysis, statistics, visualization
- ``repro.experiments``— the paper's evaluation scenarios
"""

__version__ = "1.0.0"

__all__ = [
    "eventsim",
    "net",
    "bgp",
    "sdn",
    "controller",
    "topology",
    "config",
    "framework",
    "analysis",
    "experiments",
]
