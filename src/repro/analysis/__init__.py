"""Log analysis, statistics, and visualization tools."""

from .graphs import GraphSummary, as_graph, cut_links, summarize_topology
from .report import experiment_report, provenance_markdown, provenance_report
from .logs import (
    ChurnTracker,
    NodeUpdateCounter,
    RouteChange,
    churn_timeline,
    convergence_instant,
    interarrival_times,
    route_history,
    update_counts_by_node,
)
from .stats import BoxplotStats, LinearFit, OnlineStats, boxplot_stats, linear_fit
from .viz import (
    ascii_boxplot_chart,
    churn_sparkline,
    route_change_timeline,
    topology_dot,
)

__all__ = [
    "experiment_report",
    "provenance_report",
    "provenance_markdown",
    "GraphSummary",
    "as_graph",
    "cut_links",
    "summarize_topology",
    "ChurnTracker",
    "NodeUpdateCounter",
    "RouteChange",
    "churn_timeline",
    "convergence_instant",
    "interarrival_times",
    "route_history",
    "update_counts_by_node",
    "BoxplotStats",
    "LinearFit",
    "OnlineStats",
    "boxplot_stats",
    "linear_fit",
    "ascii_boxplot_chart",
    "churn_sparkline",
    "route_change_timeline",
    "topology_dot",
]
