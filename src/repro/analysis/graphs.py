"""Network graph creation and structural metrics (paper §3).

"The framework supports tools for ... network graph creation."  These
helpers bridge :class:`~repro.topology.model.Topology` and live
:class:`~repro.net.network.Network` objects to networkx, and compute the
structural summaries an experimenter wants next to convergence numbers
(degree distribution, diameter, clustering, cut edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import networkx as nx

from ..topology.model import Topology

__all__ = ["GraphSummary", "summarize_topology", "cut_links", "as_graph"]


@dataclass(frozen=True)
class GraphSummary:
    """Structural summary of an AS-level graph."""

    nodes: int
    edges: int
    min_degree: int
    mean_degree: float
    max_degree: int
    diameter: int
    avg_clustering: float
    connected: bool

    def describe(self) -> str:
        """Short human-readable summary."""
        return (
            f"{self.nodes} ASes, {self.edges} links, degree "
            f"{self.min_degree}/{self.mean_degree:.1f}/{self.max_degree} "
            f"(min/mean/max), diameter {self.diameter}, "
            f"clustering {self.avg_clustering:.2f}"
        )


def as_graph(topology: Topology) -> nx.Graph:
    """The topology as a networkx graph (thin alias of ``to_networkx``)."""
    return topology.to_networkx()


def summarize_topology(topology: Topology) -> GraphSummary:
    """Compute the structural summary (diameter is -1 if disconnected)."""
    graph = topology.to_networkx()
    degrees = [d for _, d in graph.degree()]
    connected = nx.is_connected(graph) if len(graph) else False
    return GraphSummary(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        min_degree=min(degrees) if degrees else 0,
        mean_degree=sum(degrees) / len(degrees) if degrees else 0.0,
        max_degree=max(degrees) if degrees else 0,
        diameter=nx.diameter(graph) if connected else -1,
        avg_clustering=nx.average_clustering(graph) if len(graph) > 1 else 0.0,
        connected=connected,
    )


def cut_links(topology: Topology) -> List[Tuple[int, int]]:
    """Links whose failure partitions the AS graph (bridges).

    Useful for choosing interesting fail-over experiments: failing a
    bridge tests the sub-cluster machinery; failing a non-bridge tests
    plain re-routing.
    """
    graph = topology.to_networkx()
    return sorted((min(a, b), max(a, b)) for a, b in nx.bridges(graph))
