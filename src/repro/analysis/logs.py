"""Automatic log analysis (paper §3).

"The framework supports tools for automatic log file analysis ...
convergence time and loss measurement."  These functions post-process a
:class:`~repro.eventsim.TraceLog` (the emulator's structured log) into
the quantities an experimenter reads off: update churn over time,
per-node message counts, per-prefix route-change histories, and
convergence instants.

The scan-based functions require retained trace records; their
streaming twins (:class:`ChurnTracker`, :class:`NodeUpdateCounter`)
subscribe to the instrumentation bus and maintain the same answers
online in O(1) per record, so they keep working — bit-identically —
when trace capture is bounded, sampled, or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..eventsim import ROUTE_AFFECTING, TraceLog, TraceRecord

__all__ = [
    "RouteChange",
    "update_counts_by_node",
    "churn_timeline",
    "route_history",
    "convergence_instant",
    "interarrival_times",
    "ChurnTracker",
    "NodeUpdateCounter",
]


@dataclass(frozen=True)
class RouteChange:
    """One best-route change at one node (from ``bgp.decision`` records)."""

    time: float
    node: str
    prefix: str
    old_path: Optional[str]
    new_path: Optional[str]

    @property
    def is_loss(self) -> bool:
        """True when the best route disappeared."""
        return self.new_path is None

    @property
    def is_gain(self) -> bool:
        """True when a route appeared where none was."""
        return self.old_path is None and self.new_path is not None


def update_counts_by_node(
    trace: TraceLog, *, direction: str = "tx", since: float = 0.0
) -> Dict[str, int]:
    """BGP updates sent (``tx``) or received (``rx``) per node."""
    if direction not in ("tx", "rx"):
        raise ValueError(f"direction must be tx or rx: {direction!r}")
    counts: Dict[str, int] = {}
    for rec in trace.filter(category=f"bgp.update.{direction}", since=since):
        counts[rec.node] = counts.get(rec.node, 0) + 1
    return counts


def churn_timeline(
    trace: TraceLog,
    *,
    bin_size: float = 1.0,
    category: str = "bgp.update.tx",
    since: float = 0.0,
    until: Optional[float] = None,
) -> List[Tuple[float, int]]:
    """Updates per time bin — the classic convergence-churn plot series.

    Returns ``[(bin_start_time, count), ...]`` for non-empty bins.
    """
    if bin_size <= 0:
        raise ValueError(f"bin_size must be positive: {bin_size!r}")
    bins: Dict[int, int] = {}
    for rec in trace.filter(category=category, since=since, until=until):
        index = int((rec.time - since) // bin_size)
        bins[index] = bins.get(index, 0) + 1
    return [
        (since + index * bin_size, bins[index]) for index in sorted(bins)
    ]


def route_history(
    trace: TraceLog, prefix, *, node: Optional[str] = None
) -> List[RouteChange]:
    """Best-path changes for ``prefix`` (route-change visualization input)."""
    target = str(prefix)
    changes: List[RouteChange] = []
    for rec in trace.filter(category="bgp.decision", node=node):
        if rec.data.get("prefix") != target:
            continue
        changes.append(
            RouteChange(
                time=rec.time,
                node=rec.node,
                prefix=target,
                old_path=rec.data.get("old"),
                new_path=rec.data.get("new"),
            )
        )
    return changes


def convergence_instant(
    trace: TraceLog, since: float, categories=ROUTE_AFFECTING
) -> Optional[float]:
    """Timestamp of the last route-affecting record at/after ``since``."""
    return trace.last_time(categories, since=since)


def interarrival_times(records: Sequence[TraceRecord]) -> List[float]:
    """Gaps between consecutive records (burstiness diagnostics)."""
    times = sorted(rec.time for rec in records)
    return [b - a for a, b in zip(times, times[1:])]


# ----------------------------------------------------------------------
# streaming subscribers — the scan functions' online twins
# ----------------------------------------------------------------------
class ChurnTracker:
    """Streaming churn timeline: updates per time bin, built online.

    Subscribes to the bus for one category and bins record timestamps
    as they arrive; :meth:`timeline` returns exactly what
    :func:`churn_timeline` computes from a full trace scan.
    """

    def __init__(
        self,
        bus,
        *,
        bin_size: float = 1.0,
        category: str = "bgp.update.tx",
        since: float = 0.0,
    ) -> None:
        if bin_size <= 0:
            raise ValueError(f"bin_size must be positive: {bin_size!r}")
        self.bin_size = bin_size
        self.category = category
        self.since = since
        self._bins: Dict[int, int] = {}
        self._bus = bus
        self._subscription = bus.subscribe(
            self._on_record, categories=(category,), name="churn-tracker",
        )

    def _on_record(self, record: TraceRecord) -> None:
        if record.time < self.since:
            return
        index = int((record.time - self.since) // self.bin_size)
        self._bins[index] = self._bins.get(index, 0) + 1

    def timeline(self, until: Optional[float] = None) -> List[Tuple[float, int]]:
        """``[(bin_start_time, count), ...]`` for non-empty bins.

        ``until`` truncates at bin granularity (only bins ending at or
        before it) — the streaming tracker cannot split a bin it has
        already accumulated.
        """
        out = []
        for index in sorted(self._bins):
            start = self.since + index * self.bin_size
            if until is not None and start + self.bin_size > until:
                break
            out.append((start, self._bins[index]))
        return out

    def detach(self) -> None:
        """Stop observing the bus."""
        if self._subscription is not None:
            self._bus.unsubscribe(self._subscription)
            self._subscription = None


class NodeUpdateCounter:
    """Streaming per-node BGP update counts (tx or rx).

    The online twin of :func:`update_counts_by_node`: one dict
    increment per matching record, no trace retention.
    """

    def __init__(self, bus, *, direction: str = "tx", since: float = 0.0) -> None:
        if direction not in ("tx", "rx"):
            raise ValueError(f"direction must be tx or rx: {direction!r}")
        self.direction = direction
        self.since = since
        self.counts: Dict[str, int] = {}
        self._bus = bus
        self._subscription = bus.subscribe(
            self._on_record,
            categories=(f"bgp.update.{direction}",),
            name="node-update-counter",
        )

    def _on_record(self, record: TraceRecord) -> None:
        if record.time < self.since:
            return
        self.counts[record.node] = self.counts.get(record.node, 0) + 1

    def detach(self) -> None:
        """Stop observing the bus."""
        if self._subscription is not None:
            self._bus.unsubscribe(self._subscription)
            self._subscription = None
