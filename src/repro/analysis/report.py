"""One-shot experiment reports.

``experiment_report`` condenses a finished (or running) experiment into
the text summary an experimenter wants at a glance: device inventory,
session health, per-node update counts, churn over time, connectivity,
and — when a cluster is present — controller statistics.  This is the
"concentrate on the experiment rather than the bookkeeping" tooling the
paper's objectives call for.

``provenance_report`` / ``provenance_markdown`` render the causal story
of one root event from a run's provenance spans: what it was, when each
AS converged because of it, how deep path exploration went, how long
updates sat in MRAI gates, and the chronological causal timeline.
"""

from __future__ import annotations

from typing import List, Optional

from ..bgp.router import BGPRouter
from ..framework.experiment import Experiment
from ..obs.dag import ProvenanceDAG
from ..obs.spans import Span
from ..sdn.switch import SDNSwitch
from .logs import churn_timeline, update_counts_by_node
from .viz import churn_sparkline

__all__ = [
    "experiment_report",
    "provenance_report",
    "provenance_markdown",
    "anatomy_of_spans",
    "anatomy_report_for_spans",
    "anatomy_markdown_for_spans",
]


def experiment_report(
    exp: Experiment,
    *,
    since: float = 0.0,
    churn_bin: float = 1.0,
    top_talkers: int = 5,
) -> str:
    """Render a human-readable status report for ``exp``."""
    lines: List[str] = []
    lines.append(f"experiment {exp.name!r} @ t={exp.now:.1f}s")
    lines.append("=" * max(20, len(lines[0])))
    lines.extend(_inventory(exp))
    lines.extend(_sessions(exp))
    lines.extend(_updates(exp, since, top_talkers))
    lines.extend(_churn(exp, since, churn_bin))
    lines.extend(_connectivity(exp))
    if exp.controller is not None:
        lines.extend(_cluster(exp))
    return "\n".join(lines)


def _inventory(exp: Experiment) -> List[str]:
    legacy = [n for n in exp.as_nodes() if isinstance(n, BGPRouter)]
    switches = [n for n in exp.as_nodes() if isinstance(n, SDNSwitch)]
    host_count = sum(len(hosts) for hosts in exp.hosts.values())
    out = [
        "",
        "inventory:",
        f"  legacy routers : {len(legacy)}",
        f"  SDN switches   : {len(switches)}",
        f"  hosts          : {host_count}",
        f"  links          : {len(exp.net.links)} "
        f"({sum(1 for l in exp.net.links if not l.up)} down)",
    ]
    if exp.collector is not None:
        out.append(f"  collector feed : {len(exp.collector.feed)} updates")
    return out


def _sessions(exp: Experiment) -> List[str]:
    total = established = 0
    for node in exp.as_nodes():
        if isinstance(node, BGPRouter):
            for session in node.sessions.values():
                if session.link.kind == "collector":
                    continue
                total += 1
                established += bool(session.established)
    speaker_total = speaker_up = 0
    if exp.speaker is not None:
        for session in exp.speaker.sessions.values():
            speaker_total += 1
            speaker_up += bool(session.established)
    out = [
        "",
        "BGP sessions:",
        f"  legacy         : {established}/{total} established",
    ]
    if speaker_total:
        out.append(f"  cluster speaker: {speaker_up}/{speaker_total} established")
    return out


def _updates(exp: Experiment, since: float, top_talkers: int) -> List[str]:
    counts = update_counts_by_node(exp.net.trace, since=since)
    total = sum(counts.values())
    out = ["", f"update activity since t={since:.1f}s: {total} updates sent"]
    dropped = getattr(exp.net.trace, "dropped_records", 0)
    if dropped:
        out.append(
            f"  (trace ring buffer evicted {dropped} records; "
            "counts above reflect retained records only)"
        )
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])[:top_talkers]
    for node, count in ranked:
        out.append(f"  {node:<12} {count}")
    return out


def _churn(exp: Experiment, since: float, churn_bin: float) -> List[str]:
    timeline = churn_timeline(exp.net.trace, bin_size=churn_bin, since=since)
    return ["", "churn: " + churn_sparkline(timeline)]


def _connectivity(exp: Experiment) -> List[str]:
    matrix = exp.connectivity_matrix()
    broken = [(pair, t) for pair, t in matrix.items() if not t.reached]
    out = [
        "",
        f"connectivity: {len(matrix) - len(broken)}/{len(matrix)} "
        f"ordered AS pairs reachable",
    ]
    for (src, dst), walk in broken[:10]:
        out.append(f"  as{src} -/-> as{dst}: {walk.reason}")
    if len(broken) > 10:
        out.append(f"  ... {len(broken) - 10} more broken pairs")
    return out


# ----------------------------------------------------------------------
# provenance reports
# ----------------------------------------------------------------------
def _as_dag(spans) -> ProvenanceDAG:
    spans = list(spans)
    if spans and isinstance(spans[0], dict):
        return ProvenanceDAG.from_dicts(spans)
    return ProvenanceDAG(spans)


def _resolve_root(dag: ProvenanceDAG, root_id: Optional[int]) -> int:
    """Pick the root to report on: explicit id, else the root with the
    largest causal subtree (ties -> the later root)."""
    if root_id is not None:
        if root_id not in dag.by_id:
            raise KeyError(f"unknown span id {root_id}")
        # Reports accept any span: walk up to its root cause.
        return dag.parent_chain(root_id)[-1].span_id
    roots = dag.roots()
    if not roots:
        raise ValueError("no spans to report on")
    sizes = {r.span_id: sum(1 for _ in dag.subtree(r.span_id)) for r in roots}
    return max(roots, key=lambda r: (sizes[r.span_id], r.span_id)).span_id


def _span_line(span: Span, t_event: float) -> str:
    detail = ""
    if "prefix" in span.data:
        detail = f" {span.data['prefix']}"
    if "mrai_wait" in span.data and span.data["mrai_wait"] > 0:
        detail += f" (mrai_wait={span.data['mrai_wait']:.2f}s)"
    if "debounce_wait" in span.data and span.data["debounce_wait"] > 0:
        detail += f" (debounce={span.data['debounce_wait']:.2f}s)"
    return (
        f"  +{span.t_end - t_event:10.3f}s  #{span.span_id:<6} "
        f"{span.category:<22} {span.node}{detail}"
    )


def provenance_report(
    spans,
    *,
    root_id: Optional[int] = None,
    max_timeline: int = 20,
) -> str:
    """Terminal-friendly causal report for one root event.

    ``spans`` is what ``SpanTracker.snapshot()`` / ``RunRecord.spans``
    holds (Span objects or their dict form).  Without ``root_id`` the
    root with the largest causal subtree is reported.
    """
    dag = _as_dag(spans)
    rid = _resolve_root(dag, root_id)
    s = dag.summary(rid)
    t_event = s["t_event"]
    lines = [
        f"root cause #{rid}: {s['category']} at {s['node']} "
        f"(t={t_event:.3f}s)",
        f"  spans in causal tree : {s['spans']}",
        f"  converged (activity) : t={s['t_converged']:.3f}s "
        f"(+{s['t_converged'] - t_event:.3f}s)",
        f"  converged (state)    : t={s['t_state_converged']:.3f}s "
        f"(+{s['t_state_converged'] - t_event:.3f}s)",
        f"  MRAI wait total      : {s['mrai_wait_total']:.1f}s",
        f"  update fan-out       : max={s['fanout_max']} "
        f"mean={s['fanout_mean']:.2f}",
    ]
    depth = s["path_exploration_depth"]
    if depth:
        worst = max(depth.values())
        lines.append(
            f"  path exploration     : depth {worst} "
            f"over {len(depth)} prefix(es)"
        )
    lines.append("")
    lines.append("per-AS convergence instants (relative to the event):")
    instants = s["per_node_instants"]
    for node in sorted(instants, key=lambda n: (instants[n], n)):
        lines.append(f"  {node:<12} +{instants[node] - t_event:.3f}s")
    lines.append("")
    timeline = dag.timeline(rid)
    shown = timeline[:max_timeline]
    lines.append(
        f"causal timeline ({len(shown)} of {len(timeline)} spans):"
    )
    for span in shown:
        lines.append(_span_line(span, t_event))
    if len(timeline) > len(shown):
        lines.append(f"  ... {len(timeline) - len(shown)} more spans")
    return "\n".join(lines)


def provenance_markdown(
    spans,
    *,
    root_id: Optional[int] = None,
    max_timeline: int = 20,
    title: str = "Run provenance report",
) -> str:
    """Markdown version of :func:`provenance_report` (exportable)."""
    dag = _as_dag(spans)
    rid = _resolve_root(dag, root_id)
    s = dag.summary(rid)
    t_event = s["t_event"]
    lines = [
        f"# {title}",
        "",
        f"**Root cause:** span #{rid} — `{s['category']}` at "
        f"`{s['node']}`, t={t_event:.3f}s",
        "",
        "| metric | value |",
        "| --- | --- |",
        f"| spans in causal tree | {s['spans']} |",
        f"| convergence (last activity) | +{s['t_converged'] - t_event:.3f}s |",
        f"| convergence (last state change) | "
        f"+{s['t_state_converged'] - t_event:.3f}s |",
        f"| MRAI wait total | {s['mrai_wait_total']:.1f}s |",
        f"| update fan-out (max / mean) | {s['fanout_max']} / "
        f"{s['fanout_mean']:.2f} |",
    ]
    depth = s["path_exploration_depth"]
    if depth:
        lines.append(
            f"| path exploration depth | {max(depth.values())} |"
        )
    lines += [
        "",
        "## Per-AS convergence instants",
        "",
        "| AS | converged after |",
        "| --- | --- |",
    ]
    instants = s["per_node_instants"]
    for node in sorted(instants, key=lambda n: (instants[n], n)):
        lines.append(f"| {node} | +{instants[node] - t_event:.3f}s |")
    timeline = dag.timeline(rid)
    shown = timeline[:max_timeline]
    lines += [
        "",
        f"## Causal timeline ({len(shown)} of {len(timeline)} spans)",
        "",
        "| t (rel) | span | category | node | detail |",
        "| --- | --- | --- | --- | --- |",
    ]
    for span in shown:
        detail = str(span.data.get("prefix", ""))
        wait = span.data.get("mrai_wait") or span.data.get("debounce_wait")
        if wait:
            detail += f" wait={wait:.2f}s"
        lines.append(
            f"| +{span.t_end - t_event:.3f}s | #{span.span_id} | "
            f"{span.category} | {span.node} | {detail.strip()} |"
        )
    if len(timeline) > len(shown):
        lines.append("")
        lines.append(f"*… {len(timeline) - len(shown)} more spans.*")
    lines.append("")
    return "\n".join(lines)


def anatomy_of_spans(spans, *, root_id: Optional[int] = None):
    """Convergence anatomy of one root, straight from a span payload.

    Same span/root conventions as :func:`provenance_report` (Span
    objects or dicts; any span id resolves up to its root; default is
    the largest causal tree).  Returns a
    :class:`~repro.obs.anatomy.ConvergenceAnatomy`.
    """
    from ..obs.anatomy import anatomize

    dag = _as_dag(spans)
    return anatomize(dag, _resolve_root(dag, root_id))


def anatomy_report_for_spans(
    spans, *, root_id: Optional[int] = None, node: Optional[str] = None
) -> str:
    """Terminal waterfall report (``repro trace anatomy``)."""
    from ..obs.anatomy import anatomy_report

    return anatomy_report(anatomy_of_spans(spans, root_id=root_id), node=node)


def anatomy_markdown_for_spans(
    spans, *, root_id: Optional[int] = None
) -> str:
    """Markdown waterfall report (exporters, CI artifacts)."""
    from ..obs.anatomy import anatomy_markdown

    return anatomy_markdown(anatomy_of_spans(spans, root_id=root_id))


def _cluster(exp: Experiment) -> List[str]:
    controller = exp.controller
    sub_clusters = controller.switch_graph.sub_clusters()
    return [
        "",
        "cluster:",
        f"  members        : {len(controller.members())}",
        f"  sub-clusters   : {[sorted(c) for c in sub_clusters]}",
        f"  recomputations : {controller.recomputations}",
        f"  flow mods sent : {controller.flow_mods_sent}",
        f"  known prefixes : {len(controller.known_prefixes())}",
    ]
