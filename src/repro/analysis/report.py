"""One-shot experiment reports.

``experiment_report`` condenses a finished (or running) experiment into
the text summary an experimenter wants at a glance: device inventory,
session health, per-node update counts, churn over time, connectivity,
and — when a cluster is present — controller statistics.  This is the
"concentrate on the experiment rather than the bookkeeping" tooling the
paper's objectives call for.
"""

from __future__ import annotations

from typing import List

from ..bgp.router import BGPRouter
from ..framework.experiment import Experiment
from ..sdn.switch import SDNSwitch
from .logs import churn_timeline, update_counts_by_node
from .viz import churn_sparkline

__all__ = ["experiment_report"]


def experiment_report(
    exp: Experiment,
    *,
    since: float = 0.0,
    churn_bin: float = 1.0,
    top_talkers: int = 5,
) -> str:
    """Render a human-readable status report for ``exp``."""
    lines: List[str] = []
    lines.append(f"experiment {exp.name!r} @ t={exp.now:.1f}s")
    lines.append("=" * max(20, len(lines[0])))
    lines.extend(_inventory(exp))
    lines.extend(_sessions(exp))
    lines.extend(_updates(exp, since, top_talkers))
    lines.extend(_churn(exp, since, churn_bin))
    lines.extend(_connectivity(exp))
    if exp.controller is not None:
        lines.extend(_cluster(exp))
    return "\n".join(lines)


def _inventory(exp: Experiment) -> List[str]:
    legacy = [n for n in exp.as_nodes() if isinstance(n, BGPRouter)]
    switches = [n for n in exp.as_nodes() if isinstance(n, SDNSwitch)]
    host_count = sum(len(hosts) for hosts in exp.hosts.values())
    out = [
        "",
        "inventory:",
        f"  legacy routers : {len(legacy)}",
        f"  SDN switches   : {len(switches)}",
        f"  hosts          : {host_count}",
        f"  links          : {len(exp.net.links)} "
        f"({sum(1 for l in exp.net.links if not l.up)} down)",
    ]
    if exp.collector is not None:
        out.append(f"  collector feed : {len(exp.collector.feed)} updates")
    return out


def _sessions(exp: Experiment) -> List[str]:
    total = established = 0
    for node in exp.as_nodes():
        if isinstance(node, BGPRouter):
            for session in node.sessions.values():
                if session.link.kind == "collector":
                    continue
                total += 1
                established += bool(session.established)
    speaker_total = speaker_up = 0
    if exp.speaker is not None:
        for session in exp.speaker.sessions.values():
            speaker_total += 1
            speaker_up += bool(session.established)
    out = [
        "",
        "BGP sessions:",
        f"  legacy         : {established}/{total} established",
    ]
    if speaker_total:
        out.append(f"  cluster speaker: {speaker_up}/{speaker_total} established")
    return out


def _updates(exp: Experiment, since: float, top_talkers: int) -> List[str]:
    counts = update_counts_by_node(exp.net.trace, since=since)
    total = sum(counts.values())
    out = ["", f"update activity since t={since:.1f}s: {total} updates sent"]
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])[:top_talkers]
    for node, count in ranked:
        out.append(f"  {node:<12} {count}")
    return out


def _churn(exp: Experiment, since: float, churn_bin: float) -> List[str]:
    timeline = churn_timeline(exp.net.trace, bin_size=churn_bin, since=since)
    return ["", "churn: " + churn_sparkline(timeline)]


def _connectivity(exp: Experiment) -> List[str]:
    matrix = exp.connectivity_matrix()
    broken = [(pair, t) for pair, t in matrix.items() if not t.reached]
    out = [
        "",
        f"connectivity: {len(matrix) - len(broken)}/{len(matrix)} "
        f"ordered AS pairs reachable",
    ]
    for (src, dst), walk in broken[:10]:
        out.append(f"  as{src} -/-> as{dst}: {walk.reason}")
    if len(broken) > 10:
        out.append(f"  ... {len(broken) - 10} more broken pairs")
    return out


def _cluster(exp: Experiment) -> List[str]:
    controller = exp.controller
    sub_clusters = controller.switch_graph.sub_clusters()
    return [
        "",
        "cluster:",
        f"  members        : {len(controller.members())}",
        f"  sub-clusters   : {[sorted(c) for c in sub_clusters]}",
        f"  recomputations : {controller.recomputations}",
        f"  flow mods sent : {controller.flow_mods_sent}",
        f"  known prefixes : {len(controller.known_prefixes())}",
    ]
