"""Statistics helpers for experiment results.

The paper reports boxplots over 10 runs (Fig. 2) and a linear trend; we
provide exactly those: five-number boxplot summaries (matplotlib
convention: whiskers at 1.5 IQR, the rest outliers) and least-squares
linear fits with R².
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "BoxplotStats",
    "LinearFit",
    "OnlineStats",
    "boxplot_stats",
    "linear_fit",
]


class OnlineStats:
    """Single-pass running statistics (Welford's algorithm).

    Accepts one value at a time — suited to streaming bus subscribers
    that cannot retain samples — and reports count/mean/variance without
    the catastrophic cancellation of the naive sum-of-squares method.
    """

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, value: float) -> None:
        """Fold one sample into the running moments."""
        value = float(value)
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Sequence[float]) -> None:
        """Fold many samples."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1), 0.0 with fewer than two samples."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        """Sample standard deviation (ddof=1)."""
        return self.variance ** 0.5

    def to_dict(self) -> dict:
        """JSON-ready summary."""
        return {
            "n": self.n,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum if self.n else None,
            "max": self.maximum if self.n else None,
        }


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary plus mean/stdev and outliers."""

    n: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    mean: float
    stdev: float
    outliers: Tuple[float, ...] = ()

    @property
    def iqr(self) -> float:
        """Interquartile range (q3 - q1)."""
        return self.q3 - self.q1

    def row(self) -> str:
        """One formatted table row (used by the benchmark harness)."""
        return (
            f"min={self.minimum:8.2f} q1={self.q1:8.2f} "
            f"med={self.median:8.2f} q3={self.q3:8.2f} max={self.maximum:8.2f}"
        )


def boxplot_stats(values: Sequence[float]) -> BoxplotStats:
    """Five-number summary with 1.5-IQR whiskers (matplotlib convention)."""
    if not values:
        raise ValueError("no values")
    arr = np.asarray(sorted(values), dtype=float)
    q1, median, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    lo_fence, hi_fence = q1 - 1.5 * iqr, q3 + 1.5 * iqr
    inside = arr[(arr >= lo_fence) & (arr <= hi_fence)]
    whisker_low = float(inside.min()) if inside.size else float(arr.min())
    whisker_high = float(inside.max()) if inside.size else float(arr.max())
    # Interpolated percentiles can fall outside the observed data (e.g.
    # q3 of [0,0,0,1] is 0.25); clamp whiskers to the box edges so that
    # min <= whisker_low <= q1 <= q3 <= whisker_high <= max always holds.
    whisker_low = min(whisker_low, float(q1))
    whisker_high = max(whisker_high, float(q3))
    outliers = tuple(
        float(v) for v in arr if v < whisker_low or v > whisker_high
    )
    return BoxplotStats(
        n=len(arr),
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(arr.max()),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        mean=float(arr.mean()),
        stdev=float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
        outliers=outliers,
    )


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line y = slope * x + intercept with fit quality."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at x."""
        return self.slope * x + self.intercept

    @property
    def is_decreasing(self) -> bool:
        """True when the fitted slope is negative."""
        return self.slope < 0


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Fit a line through (xs, ys); R² measures how linear the trend is."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    # Closed-form least squares (more robust than polyfit's SVD for
    # near-degenerate inputs).
    x_mean, y_mean = x.mean(), y.mean()
    ss_xx = float(np.sum((x - x_mean) ** 2))
    if ss_xx == 0.0:
        raise ValueError("all x values identical; no line to fit")
    slope = float(np.sum((x - x_mean) * (y - y_mean))) / ss_xx
    intercept = y_mean - slope * x_mean
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(float(slope), float(intercept), r_squared)
