"""Route-change visualization and graph export (paper §3).

The framework's visual tools, rendered for a terminal/file world:

- :func:`ascii_boxplot_chart` — the Fig. 2 rendering: one boxplot row
  per sweep point, drawn with box/whisker glyphs over a shared scale;
- :func:`route_change_timeline` — per-AS best-path changes for one
  prefix over time (the route-change visualization);
- :func:`topology_dot` — Graphviz export of a topology with the SDN
  cluster highlighted (Fig. 1-style component pictures);
- :func:`churn_sparkline` — update churn over time in one line.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..topology.model import Topology
from .logs import RouteChange
from .stats import BoxplotStats

__all__ = [
    "ascii_boxplot_chart",
    "route_change_timeline",
    "topology_dot",
    "churn_sparkline",
]


def ascii_boxplot_chart(
    rows: Sequence[Tuple[str, BoxplotStats]],
    *,
    width: int = 60,
    title: str = "",
    unit: str = "s",
) -> str:
    """Render labelled boxplots over a shared horizontal scale.

    ``-`` whiskers, ``#`` the IQR box, ``|`` the median — good enough to
    eyeball the Fig. 2 trend in a terminal or a text report.
    """
    if not rows:
        raise ValueError("no rows")
    lo = min(s.whisker_low for _, s in rows)
    hi = max(s.whisker_high for _, s in rows)
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    label_w = max(len(label) for label, _ in rows)

    def col(value: float) -> int:
        return int(round((value - lo) / span * (width - 1)))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{'':<{label_w}}  {lo:.1f}{unit}{'':<{width - 12}}{hi:.1f}{unit}")
    for label, stats in rows:
        cells = [" "] * width
        for i in range(col(stats.whisker_low), col(stats.whisker_high) + 1):
            cells[i] = "-"
        for i in range(col(stats.q1), col(stats.q3) + 1):
            cells[i] = "#"
        cells[col(stats.median)] = "|"
        lines.append(f"{label:<{label_w}}  {''.join(cells)}  med={stats.median:.1f}{unit}")
    return "\n".join(lines)


def route_change_timeline(
    changes: Sequence[RouteChange],
    *,
    t0: float = 0.0,
    max_rows: int = 200,
) -> str:
    """Chronological per-AS best-path changes for one prefix."""
    lines = ["time(s)    node        best path change"]
    for change in sorted(changes, key=lambda c: (c.time, c.node))[:max_rows]:
        old = change.old_path if change.old_path is not None else "(none)"
        new = change.new_path if change.new_path is not None else "(none)"
        lines.append(
            f"{change.time - t0:9.3f}  {change.node:<10}  [{old}] -> [{new}]"
        )
    if len(changes) > max_rows:
        lines.append(f"... {len(changes) - max_rows} more changes")
    return "\n".join(lines)


def topology_dot(
    topology: Topology,
    *,
    sdn_members: Sequence[int] = (),
    name: Optional[str] = None,
) -> str:
    """Graphviz DOT text; SDN members drawn as boxes, legacy as ellipses."""
    sdn = set(sdn_members)
    lines = [f'graph "{name or topology.name}" {{']
    lines.append("  overlap=false;")
    for spec in topology.ases:
        shape = "box" if spec.asn in sdn else "ellipse"
        style = ', style=filled, fillcolor="lightblue"' if spec.asn in sdn else ""
        lines.append(
            f'  {spec.asn} [label="{spec.label()}", shape={shape}{style}];'
        )
    for link in topology.links:
        attrs = []
        if link.relationship.value == "customer":
            attrs.append('dir=forward, arrowhead="empty"')
        label = f'  {link.a} -- {link.b}'
        if attrs:
            label += f' [{", ".join(attrs)}]'
        lines.append(label + ";")
    lines.append("}")
    return "\n".join(lines)


_SPARK = " .:-=+*#%@"


def churn_sparkline(
    timeline: Sequence[Tuple[float, int]], *, width: int = 72
) -> str:
    """Compress an update-churn timeline into one line of glyphs."""
    if not timeline:
        return "(no updates)"
    start = timeline[0][0]
    end = timeline[-1][0]
    span = max(end - start, 1e-9)
    buckets = [0] * width
    for t, count in timeline:
        index = min(int((t - start) / span * (width - 1)), width - 1)
        buckets[index] += count
    peak = max(buckets) or 1
    glyphs = [
        _SPARK[min(int(b / peak * (len(_SPARK) - 1)), len(_SPARK) - 1)]
        for b in buckets
    ]
    return f"t={start:.1f}s [{''.join(glyphs)}] t={end:.1f}s peak={peak}/bin"
