"""Route-change visualization and graph export (paper §3).

The framework's visual tools, rendered for a terminal/file world:

- :func:`ascii_boxplot_chart` — the Fig. 2 rendering: one boxplot row
  per sweep point, drawn with box/whisker glyphs over a shared scale;
- :func:`route_change_timeline` — per-AS best-path changes for one
  prefix over time (the route-change visualization);
- :func:`topology_dot` — Graphviz export of a topology with the SDN
  cluster highlighted (Fig. 1-style component pictures);
- :func:`churn_sparkline` — update churn over time in one line;
- :func:`svg_line_chart` / :func:`svg_bar_chart` — self-contained
  inline-SVG charts (no dependencies, deterministic output) used by
  the telemetry dashboard (``repro runs dashboard``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape as _xml_escape

from ..topology.model import Topology
from .logs import RouteChange
from .stats import BoxplotStats

__all__ = [
    "ascii_boxplot_chart",
    "route_change_timeline",
    "topology_dot",
    "churn_sparkline",
    "svg_line_chart",
    "svg_bar_chart",
]


def ascii_boxplot_chart(
    rows: Sequence[Tuple[str, BoxplotStats]],
    *,
    width: int = 60,
    title: str = "",
    unit: str = "s",
) -> str:
    """Render labelled boxplots over a shared horizontal scale.

    ``-`` whiskers, ``#`` the IQR box, ``|`` the median — good enough to
    eyeball the Fig. 2 trend in a terminal or a text report.
    """
    if not rows:
        raise ValueError("no rows")
    lo = min(s.whisker_low for _, s in rows)
    hi = max(s.whisker_high for _, s in rows)
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    label_w = max(len(label) for label, _ in rows)

    def col(value: float) -> int:
        return int(round((value - lo) / span * (width - 1)))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{'':<{label_w}}  {lo:.1f}{unit}{'':<{width - 12}}{hi:.1f}{unit}")
    for label, stats in rows:
        cells = [" "] * width
        for i in range(col(stats.whisker_low), col(stats.whisker_high) + 1):
            cells[i] = "-"
        for i in range(col(stats.q1), col(stats.q3) + 1):
            cells[i] = "#"
        cells[col(stats.median)] = "|"
        lines.append(f"{label:<{label_w}}  {''.join(cells)}  med={stats.median:.1f}{unit}")
    return "\n".join(lines)


def route_change_timeline(
    changes: Sequence[RouteChange],
    *,
    t0: float = 0.0,
    max_rows: int = 200,
) -> str:
    """Chronological per-AS best-path changes for one prefix."""
    lines = ["time(s)    node        best path change"]
    for change in sorted(changes, key=lambda c: (c.time, c.node))[:max_rows]:
        old = change.old_path if change.old_path is not None else "(none)"
        new = change.new_path if change.new_path is not None else "(none)"
        lines.append(
            f"{change.time - t0:9.3f}  {change.node:<10}  [{old}] -> [{new}]"
        )
    if len(changes) > max_rows:
        lines.append(f"... {len(changes) - max_rows} more changes")
    return "\n".join(lines)


def topology_dot(
    topology: Topology,
    *,
    sdn_members: Sequence[int] = (),
    name: Optional[str] = None,
) -> str:
    """Graphviz DOT text; SDN members drawn as boxes, legacy as ellipses."""
    sdn = set(sdn_members)
    lines = [f'graph "{name or topology.name}" {{']
    lines.append("  overlap=false;")
    for spec in topology.ases:
        shape = "box" if spec.asn in sdn else "ellipse"
        style = ', style=filled, fillcolor="lightblue"' if spec.asn in sdn else ""
        lines.append(
            f'  {spec.asn} [label="{spec.label()}", shape={shape}{style}];'
        )
    for link in topology.links:
        attrs = []
        if link.relationship.value == "customer":
            attrs.append('dir=forward, arrowhead="empty"')
        label = f'  {link.a} -- {link.b}'
        if attrs:
            label += f' [{", ".join(attrs)}]'
        lines.append(label + ";")
    lines.append("}")
    return "\n".join(lines)


_SPARK = " .:-=+*#%@"


def churn_sparkline(
    timeline: Sequence[Tuple[float, int]], *, width: int = 72
) -> str:
    """Compress an update-churn timeline into one line of glyphs."""
    if not timeline:
        return "(no updates)"
    start = timeline[0][0]
    end = timeline[-1][0]
    span = max(end - start, 1e-9)
    buckets = [0] * width
    for t, count in timeline:
        index = min(int((t - start) / span * (width - 1)), width - 1)
        buckets[index] += count
    peak = max(buckets) or 1
    glyphs = [
        _SPARK[min(int(b / peak * (len(_SPARK) - 1)), len(_SPARK) - 1)]
        for b in buckets
    ]
    return f"t={start:.1f}s [{''.join(glyphs)}] t={end:.1f}s peak={peak}/bin"


# ----------------------------------------------------------------------
# inline SVG (telemetry dashboard)
# ----------------------------------------------------------------------
#: series colors, cycled; chosen to stay distinguishable on white.
SVG_PALETTE = (
    "#1f6fb2", "#d95f02", "#1b9e77", "#7570b3",
    "#e7298a", "#66a61e", "#a6761d", "#666666",
)
_MARGIN = (46, 14, 30, 26)  # left, right, bottom, top


def _fmt(value: float) -> str:
    """Deterministic short number formatting for SVG coordinates/labels."""
    text = f"{value:.6g}"
    return "0" if text == "-0" else text


def _ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


def svg_line_chart(
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    *,
    width: int = 640,
    height: int = 300,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    y_zero: bool = True,
) -> str:
    """Multi-series line chart as a self-contained ``<svg>`` string.

    ``series`` is ``[(label, [(x, y), ...]), ...]``; points are drawn
    in the given order with circle markers and a shared legend.  Output
    is deterministic (fixed palette, ``%.6g`` coordinates) so dashboard
    HTML can be golden-tested.  Stdlib only.
    """
    points = [p for _, pts in series for p in pts]
    if not points:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}"><text x="10" y="20">(no data)</text></svg>'
        )
    left, right, bottom, top = _MARGIN
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = 0.0 if y_zero else min(ys)
    y_hi = max(ys)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    plot_w = width - left - right
    plot_h = height - top - bottom

    def px(x: float) -> float:
        return left + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return top + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">'
    ]
    if title:
        out.append(
            f'<text x="{left}" y="14" font-weight="bold">'
            f"{_xml_escape(title)}</text>"
        )
    # axes + grid
    out.append(
        f'<rect x="{left}" y="{top}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#333"/>'
    )
    for tick in _ticks(y_lo, y_hi):
        y = py(tick)
        out.append(
            f'<line x1="{left}" y1="{_fmt(y)}" x2="{left + plot_w}" '
            f'y2="{_fmt(y)}" stroke="#ddd"/>'
            f'<text x="{left - 4}" y="{_fmt(y + 3)}" text-anchor="end">'
            f"{_fmt(tick)}</text>"
        )
    for tick in _ticks(x_lo, x_hi):
        x = px(tick)
        out.append(
            f'<text x="{_fmt(x)}" y="{height - bottom + 14}" '
            f'text-anchor="middle">{_fmt(tick)}</text>'
        )
    if x_label:
        out.append(
            f'<text x="{left + plot_w // 2}" y="{height - 4}" '
            f'text-anchor="middle">{_xml_escape(x_label)}</text>'
        )
    if y_label:
        out.append(
            f'<text x="12" y="{top + plot_h // 2}" text-anchor="middle" '
            f'transform="rotate(-90 12 {top + plot_h // 2})">'
            f"{_xml_escape(y_label)}</text>"
        )
    # series + legend
    for i, (label, pts) in enumerate(series):
        color = SVG_PALETTE[i % len(SVG_PALETTE)]
        coords = " ".join(f"{_fmt(px(x))},{_fmt(py(y))}" for x, y in pts)
        if len(pts) > 1:
            out.append(
                f'<polyline points="{coords}" fill="none" '
                f'stroke="{color}" stroke-width="1.5"/>'
            )
        for x, y in pts:
            out.append(
                f'<circle cx="{_fmt(px(x))}" cy="{_fmt(py(y))}" r="2.5" '
                f'fill="{color}"/>'
            )
        ly = top + 4 + i * 14
        out.append(
            f'<rect x="{left + plot_w - 130}" y="{ly}" width="10" '
            f'height="10" fill="{color}"/>'
            f'<text x="{left + plot_w - 116}" y="{ly + 9}">'
            f"{_xml_escape(str(label))}</text>"
        )
    out.append("</svg>")
    return "".join(out)


def svg_bar_chart(
    bars: Sequence[Tuple[str, float]],
    *,
    width: int = 640,
    height: int = 240,
    title: str = "",
    y_label: str = "",
    color: str = SVG_PALETTE[0],
) -> str:
    """Labelled vertical bar chart as a self-contained ``<svg>`` string.

    ``bars`` is ``[(label, value), ...]``; values are annotated above
    each bar.  Deterministic output, stdlib only.
    """
    left, right, bottom, top = _MARGIN
    if not bars:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}"><text x="10" y="20">(no data)</text></svg>'
        )
    y_hi = max(max(v for _, v in bars), 0.0) or 1.0
    plot_w = width - left - right
    plot_h = height - top - bottom
    slot = plot_w / len(bars)
    bar_w = max(slot * 0.6, 2.0)
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">'
    ]
    if title:
        out.append(
            f'<text x="{left}" y="14" font-weight="bold">'
            f"{_xml_escape(title)}</text>"
        )
    out.append(
        f'<rect x="{left}" y="{top}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#333"/>'
    )
    for tick in _ticks(0.0, y_hi):
        y = top + plot_h - tick / y_hi * plot_h
        out.append(
            f'<line x1="{left}" y1="{_fmt(y)}" x2="{left + plot_w}" '
            f'y2="{_fmt(y)}" stroke="#ddd"/>'
            f'<text x="{left - 4}" y="{_fmt(y + 3)}" text-anchor="end">'
            f"{_fmt(tick)}</text>"
        )
    for i, (label, value) in enumerate(bars):
        x = left + i * slot + (slot - bar_w) / 2
        bar_h = max(value, 0.0) / y_hi * plot_h
        y = top + plot_h - bar_h
        cx = x + bar_w / 2
        out.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(bar_w)}" '
            f'height="{_fmt(bar_h)}" fill="{color}"/>'
            f'<text x="{_fmt(cx)}" y="{_fmt(y - 3)}" text-anchor="middle">'
            f"{_fmt(value)}</text>"
            f'<text x="{_fmt(cx)}" y="{height - bottom + 14}" '
            f'text-anchor="middle">{_xml_escape(str(label))}</text>'
        )
    if y_label:
        out.append(
            f'<text x="12" y="{top + plot_h // 2}" text-anchor="middle" '
            f'transform="rotate(-90 12 {top + plot_h // 2})">'
            f"{_xml_escape(y_label)}</text>"
        )
    out.append("</svg>")
    return "".join(out)
