"""BGP-4 implementation (the framework's Quagga substitute).

Public surface: :class:`BGPRouter` (one per AS), :class:`RouteCollector`
(monitoring), :class:`BGPTimers` (MRAI & friends), the policy templates
(:func:`gao_rexford_policy`, :func:`transit_all_policy`), and the data
model (:class:`AsPath`, :class:`PathAttributes`, :class:`Route`).
"""

from .attrs import DEFAULT_LOCAL_PREF, AsPath, Origin, PathAttributes
from .collector import COLLECTOR_ASN, CollectedUpdate, RouteCollector, collector_policy
from .decision import DecisionConfig, best_route, rank_routes
from .messages import BGPKeepalive, BGPMessage, BGPNotification, BGPOpen, BGPUpdate
from .policy import (
    LOCAL_COMMUNITY,
    LOCAL_PREF_BY_RELATIONSHIP,
    PeerPolicy,
    Relationship,
    RouteMap,
    RouteMapEntry,
    gao_rexford_policy,
    relationship_community,
    transit_all_policy,
)
from .rib import AdjRibIn, AdjRibOut, LocRib, Route
from .router import BGPRouter
from .session import BGPSession, BGPTimers, SessionState

__all__ = [
    "DEFAULT_LOCAL_PREF",
    "AsPath",
    "Origin",
    "PathAttributes",
    "COLLECTOR_ASN",
    "CollectedUpdate",
    "RouteCollector",
    "collector_policy",
    "DecisionConfig",
    "best_route",
    "rank_routes",
    "BGPKeepalive",
    "BGPMessage",
    "BGPNotification",
    "BGPOpen",
    "BGPUpdate",
    "LOCAL_COMMUNITY",
    "LOCAL_PREF_BY_RELATIONSHIP",
    "PeerPolicy",
    "Relationship",
    "RouteMap",
    "RouteMapEntry",
    "gao_rexford_policy",
    "relationship_community",
    "transit_all_policy",
    "AdjRibIn",
    "AdjRibOut",
    "LocRib",
    "Route",
    "BGPRouter",
    "BGPSession",
    "BGPTimers",
    "SessionState",
]
