"""BGP path attributes, backed by a canonicalizing intern pool.

The framework emulates one Quagga-style BGP speaker per AS, so paths are
sequences of AS numbers (AS_PATH), plus the standard attributes the
decision process consumes: ORIGIN, LOCAL_PREF, MED.  NEXT_HOP is implicit
in the point-to-point session a route was learned over.

At Internet scale (thousands of ASes) the same attribute values appear in
millions of Adj-RIB entries at once: every router on a propagation tree
holds a route whose AS_PATH differs only by its own prepend, and whole
subtrees share identical suffixes.  Both :class:`AsPath` and
:class:`PathAttributes` are therefore *interned*: construction is
canonicalized through a weak-value pool, so content-equal instances are
the same object.  That gives

- one tuple of ASNs per distinct path, shared across all holders,
- a hash computed once per distinct value (``__hash__`` is a field read),
- identity-fast equality on the hot RIB-diff paths, and
- a cached ASN membership set so RFC 4271 §9.1.2 loop detection is O(1)
  per route instead of O(len(path)).

The pool holds only weak references, so values die with their last RIB
entry; nothing leaks across experiments.  Both classes keep the frozen
dataclass surface they replaced — keyword constructors, value equality
against non-interned lookalikes (e.g. unpickled from another process),
``AttributeError`` on assignment — so they are drop-in.
"""

from __future__ import annotations

import enum
import weakref
from typing import Dict, Iterable, Iterator, Optional, Tuple

__all__ = [
    "Origin",
    "AsPath",
    "PathAttributes",
    "DEFAULT_LOCAL_PREF",
    "intern_stats",
]

#: RFC 4271 recommends 100 as the default LOCAL_PREF.
DEFAULT_LOCAL_PREF = 100


class Origin(enum.IntEnum):
    """ORIGIN attribute; lower is preferred in the decision process."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class AsPath:
    """An AS_PATH as an AS_SEQUENCE of AS numbers (leftmost = most recent).

    Immutable and interned: ``AsPath((1, 2)) is AsPath((1, 2))``.
    Prepending returns a new (pooled) path.  Loop detection is a
    membership test against a lazily cached ASN set, as in RFC 4271
    §9.1.2 but O(1) per test.
    """

    __slots__ = ("asns", "_hash", "_members", "__weakref__")

    _pool: "weakref.WeakValueDictionary[Tuple[int, ...], AsPath]" = (
        weakref.WeakValueDictionary()
    )
    _hits: int = 0

    def __new__(cls, asns: Iterable[int] = ()) -> "AsPath":
        key = tuple(asns)
        cached = cls._pool.get(key)
        if cached is not None:
            cls._hits += 1
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "asns", key)
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(self, "_members", None)
        cls._pool[key] = self
        return self

    @classmethod
    def of(cls, *asns: int) -> "AsPath":
        """Construct from positional AS numbers."""
        return cls(asns)

    @classmethod
    def from_iterable(cls, asns: Iterable[int]) -> "AsPath":
        """Construct from any iterable of AS numbers."""
        return cls(tuple(asns))

    def prepend(self, asn: int, count: int = 1) -> "AsPath":
        """Prepend ``asn`` ``count`` times (count > 1 = path prepending)."""
        if count < 1:
            raise ValueError(f"count must be >= 1: {count!r}")
        return AsPath((asn,) * count + self.asns)

    def prepend_sequence(self, asns: Iterable[int]) -> "AsPath":
        """Prepend a whole AS sequence (used by the IDR controller when it
        re-advertises a route that crosses several cluster member ASes)."""
        return AsPath(tuple(asns) + self.asns)

    @property
    def members(self) -> frozenset:
        """The ASNs on the path as a set, computed once per pooled path."""
        cached = self._members
        if cached is None:
            cached = frozenset(self.asns)
            object.__setattr__(self, "_members", cached)
        return cached

    def contains(self, asn: int) -> bool:
        """Membership test (loop detection) — O(1) via the cached set."""
        return asn in self.members

    @property
    def length(self) -> int:
        """Number of ASes in the path."""
        return len(self.asns)

    @property
    def origin_as(self) -> Optional[int]:
        """The AS that originated the route (rightmost), or None if empty."""
        return self.asns[-1] if self.asns else None

    @property
    def first_as(self) -> Optional[int]:
        """The neighbor AS the route was heard from (leftmost)."""
        return self.asns[0] if self.asns else None

    def __len__(self) -> int:
        return len(self.asns)

    def __iter__(self) -> Iterator[int]:
        return iter(self.asns)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, AsPath):
            return self.asns == other.asns
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"cannot assign to field {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"cannot delete field {name!r}")

    def __reduce__(self):
        # Re-intern on unpickle so cross-process copies rejoin the pool.
        return (AsPath, (self.asns,))

    def __str__(self) -> str:
        return " ".join(str(a) for a in self.asns) if self.asns else "(empty)"

    def __repr__(self) -> str:
        return f"AsPath({self.asns!r})"


class PathAttributes:
    """The attribute set attached to an announced prefix.

    Immutable and interned like :class:`AsPath`: content-equal attribute
    sets are one object no matter how many RIB entries hold them, and
    the ``with_*`` copy helpers return pooled instances too.
    """

    __slots__ = (
        "as_path",
        "origin",
        "local_pref",
        "med",
        "communities",
        "_hash",
        "__weakref__",
    )

    _pool: "weakref.WeakValueDictionary[tuple, PathAttributes]" = (
        weakref.WeakValueDictionary()
    )
    _hits: int = 0

    def __new__(
        cls,
        as_path: Optional[AsPath] = None,
        origin: Origin = Origin.IGP,
        local_pref: int = DEFAULT_LOCAL_PREF,
        med: int = 0,
        communities: Iterable[str] = (),
    ) -> "PathAttributes":
        if as_path is None:
            as_path = AsPath()
        origin = Origin(origin)
        communities = tuple(communities)
        key = (as_path, origin, local_pref, med, communities)
        cached = cls._pool.get(key)
        if cached is not None:
            cls._hits += 1
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "as_path", as_path)
        object.__setattr__(self, "origin", origin)
        object.__setattr__(self, "local_pref", local_pref)
        object.__setattr__(self, "med", med)
        object.__setattr__(self, "communities", communities)
        object.__setattr__(self, "_hash", hash(key))
        cls._pool[key] = self
        return self

    def with_path(self, as_path: AsPath) -> "PathAttributes":
        """Copy with a different AS path."""
        return PathAttributes(
            as_path=as_path, origin=self.origin,
            local_pref=self.local_pref, med=self.med,
            communities=self.communities,
        )

    def with_local_pref(self, local_pref: int) -> "PathAttributes":
        """Copy with a different LOCAL_PREF."""
        return PathAttributes(
            as_path=self.as_path, origin=self.origin,
            local_pref=local_pref, med=self.med,
            communities=self.communities,
        )

    def with_communities(self, communities: Iterable[str]) -> "PathAttributes":
        """Copy with a different community set."""
        return PathAttributes(
            as_path=self.as_path, origin=self.origin,
            local_pref=self.local_pref, med=self.med,
            communities=tuple(communities),
        )

    def has_community(self, community: str) -> bool:
        """True if the community is attached."""
        return community in self.communities

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, PathAttributes):
            return (
                self.as_path == other.as_path
                and self.origin == other.origin
                and self.local_pref == other.local_pref
                and self.med == other.med
                and self.communities == other.communities
            )
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"cannot assign to field {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"cannot delete field {name!r}")

    def __reduce__(self):
        return (
            PathAttributes,
            (self.as_path, self.origin, self.local_pref, self.med,
             self.communities),
        )

    def __repr__(self) -> str:
        return (
            f"PathAttributes(as_path={self.as_path!r}, "
            f"origin={self.origin!r}, local_pref={self.local_pref!r}, "
            f"med={self.med!r}, communities={self.communities!r})"
        )


def intern_stats() -> Dict[str, int]:
    """Live sizes and hit counts of the intern pools.

    Diagnostic only — the pools are weak, so the size numbers shrink as
    RIBs release routes, while the ``*_hits`` counters are cumulative
    per process (every construction that returned an already-pooled
    object).  ``bench_scale`` reports sizes alongside peak RSS to show
    how much sharing the pools achieve on large topologies; the service
    ``/metrics`` page exports all four as gauges.
    """
    return {
        "as_paths": len(AsPath._pool),
        "as_path_hits": AsPath._hits,
        "path_attributes": len(PathAttributes._pool),
        "path_attribute_hits": PathAttributes._hits,
    }
