"""BGP path attributes.

The framework emulates one Quagga-style BGP speaker per AS, so paths are
sequences of AS numbers (AS_PATH), plus the standard attributes the
decision process consumes: ORIGIN, LOCAL_PREF, MED.  NEXT_HOP is implicit
in the point-to-point session a route was learned over.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Tuple

__all__ = ["Origin", "AsPath", "PathAttributes", "DEFAULT_LOCAL_PREF"]

#: RFC 4271 recommends 100 as the default LOCAL_PREF.
DEFAULT_LOCAL_PREF = 100


class Origin(enum.IntEnum):
    """ORIGIN attribute; lower is preferred in the decision process."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


@dataclass(frozen=True)
class AsPath:
    """An AS_PATH as an AS_SEQUENCE of AS numbers (leftmost = most recent).

    Immutable; prepending returns a new path.  Loop detection is a simple
    membership test, as in RFC 4271 §9.1.2.
    """

    asns: Tuple[int, ...] = ()

    @classmethod
    def of(cls, *asns: int) -> "AsPath":
        """Construct from positional AS numbers."""
        return cls(tuple(asns))

    @classmethod
    def from_iterable(cls, asns: Iterable[int]) -> "AsPath":
        """Construct from any iterable of AS numbers."""
        return cls(tuple(asns))

    def prepend(self, asn: int, count: int = 1) -> "AsPath":
        """Prepend ``asn`` ``count`` times (count > 1 = path prepending)."""
        if count < 1:
            raise ValueError(f"count must be >= 1: {count!r}")
        return AsPath((asn,) * count + self.asns)

    def prepend_sequence(self, asns: Iterable[int]) -> "AsPath":
        """Prepend a whole AS sequence (used by the IDR controller when it
        re-advertises a route that crosses several cluster member ASes)."""
        return AsPath(tuple(asns) + self.asns)

    def contains(self, asn: int) -> bool:
        """Membership test."""
        return asn in self.asns

    @property
    def length(self) -> int:
        """Number of ASes in the path."""
        return len(self.asns)

    @property
    def origin_as(self) -> Optional[int]:
        """The AS that originated the route (rightmost), or None if empty."""
        return self.asns[-1] if self.asns else None

    @property
    def first_as(self) -> Optional[int]:
        """The neighbor AS the route was heard from (leftmost)."""
        return self.asns[0] if self.asns else None

    def __len__(self) -> int:
        return len(self.asns)

    def __iter__(self) -> Iterator[int]:
        return iter(self.asns)

    def __str__(self) -> str:
        return " ".join(str(a) for a in self.asns) if self.asns else "(empty)"

    def __repr__(self) -> str:
        return f"AsPath({self.asns!r})"


@dataclass(frozen=True)
class PathAttributes:
    """The attribute set attached to an announced prefix."""

    as_path: AsPath = field(default_factory=AsPath)
    origin: Origin = Origin.IGP
    local_pref: int = DEFAULT_LOCAL_PREF
    med: int = 0
    #: free-form community-style tags; used by policies (e.g. relationship
    #: tagging on import, the Gao-Rexford export filter reads them).
    communities: Tuple[str, ...] = ()

    def with_path(self, as_path: AsPath) -> "PathAttributes":
        """Copy with a different AS path."""
        return PathAttributes(
            as_path=as_path, origin=self.origin,
            local_pref=self.local_pref, med=self.med,
            communities=self.communities,
        )

    def with_local_pref(self, local_pref: int) -> "PathAttributes":
        """Copy with a different LOCAL_PREF."""
        return PathAttributes(
            as_path=self.as_path, origin=self.origin,
            local_pref=local_pref, med=self.med,
            communities=self.communities,
        )

    def with_communities(self, communities: Iterable[str]) -> "PathAttributes":
        """Copy with a different community set."""
        return PathAttributes(
            as_path=self.as_path, origin=self.origin,
            local_pref=self.local_pref, med=self.med,
            communities=tuple(communities),
        )

    def has_community(self, community: str) -> bool:
        """True if the community is attached."""
        return community in self.communities
