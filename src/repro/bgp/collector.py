"""BGP route collector — the framework's monitoring tap.

"All BGP routers peer with a BGP route collector, which collects routing
updates for monitoring purposes" (paper §3).  The collector is a passive
speaker: it imports everything, exports nothing, and appends every UPDATE
it hears to a timestamped feed that the analysis tools (convergence-time
extraction, route-change visualization) consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..eventsim import Simulator
from ..net.addr import Prefix
from .messages import BGPUpdate
from .policy import PeerPolicy, RouteMap, RouteMapEntry
from .router import BGPRouter
from .session import BGPSession, BGPTimers

__all__ = ["RouteCollector", "CollectedUpdate", "collector_policy"]

#: ASN conventionally used for the collector (private range).
COLLECTOR_ASN = 64999


@dataclass(frozen=True)
class CollectedUpdate:
    """One UPDATE as seen by the collector."""

    time: float
    peer_name: str
    peer_asn: int
    announced: tuple  # ((prefix, as_path_str), ...)
    withdrawn: tuple  # (prefix, ...)

    @property
    def is_withdrawal(self) -> bool:
        """True for a pure-withdrawal update."""
        return bool(self.withdrawn) and not self.announced


def collector_policy() -> PeerPolicy:
    """Import everything, export nothing."""
    from .policy import Relationship

    import_map = RouteMap(
        [RouteMapEntry(permit=True, description="collector accepts all")],
        name="collector-import",
    )
    export_map = RouteMap(
        [RouteMapEntry(permit=False, description="collector is silent")],
        name="collector-export",
    )
    return PeerPolicy(Relationship.FLAT, import_map, export_map)


class RouteCollector(BGPRouter):
    """A passive BGP speaker recording every update it receives."""

    def __init__(
        self,
        sim: Simulator,
        instrument,
        name: str = "collector",
        *,
        asn: int = COLLECTOR_ASN,
        timers: Optional[BGPTimers] = None,
    ) -> None:
        timers = timers if timers is not None else BGPTimers(mrai=0.0)
        super().__init__(sim, instrument, name, asn=asn, timers=timers)
        self.feed: List[CollectedUpdate] = []

    def add_peer(self, link, **kwargs) -> BGPSession:
        """Configure an eBGP session over a link."""
        kwargs.setdefault("policy", collector_policy())
        return super().add_peer(link, **kwargs)

    def enqueue_update(self, session: BGPSession, update: BGPUpdate) -> None:
        """Queue a received UPDATE for serialized processing."""
        self.feed.append(
            CollectedUpdate(
                time=self.sim.now,
                peer_name=session.peer_name,
                peer_asn=session.peer_asn,
                announced=tuple(
                    (p, str(a.as_path)) for p, a in update.announced
                ),
                withdrawn=tuple(update.withdrawn),
            )
        )
        self.bus.record_lazy(
            "collector.update", self.name,
            lambda: {
                "peer": session.peer_name,
                "announced": len(update.announced),
                "withdrawn": len(update.withdrawn),
            },
        )
        super().enqueue_update(session, update)

    # ------------------------------------------------------------------
    # feed queries
    # ------------------------------------------------------------------
    def updates_since(self, since: float) -> List[CollectedUpdate]:
        """Feed entries at/after a time."""
        return [u for u in self.feed if u.time >= since]

    def updates_for(
        self, prefix: Prefix, since: float = 0.0
    ) -> List[CollectedUpdate]:
        out = []
        for upd in self.feed:
            if upd.time < since:
                continue
            touched = prefix in upd.withdrawn or any(
                p == prefix for p, _ in upd.announced
            )
            if touched:
                out.append(upd)
        return out

    def last_update_time(self, since: float = 0.0) -> Optional[float]:
        """Timestamp of the newest feed entry, or None."""
        times = [u.time for u in self.feed if u.time >= since]
        return max(times) if times else None
