"""Route-flap damping (RFC 2439).

Damping penalizes unstable routes: every flap (withdrawal, or
re-announcement with changed attributes) adds to a per-(peer, prefix)
penalty that decays exponentially with a configured half-life.  While
the penalty exceeds the *suppress* threshold the route is withheld from
the decision process; once it decays below the *reuse* threshold the
route is released again.

Damping is directly relevant to the paper's topic: Mao et al. ("Route
Flap Damping Exacerbates Internet Routing Convergence", SIGCOMM 2002)
showed that the path-exploration updates of a *single* withdrawal can
trip damping and delay convergence by the reuse time — one more
instability of distributed BGP that a centralized controller sidesteps
(the ``abl-damping`` benchmark measures exactly this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..eventsim import Simulator
from ..net.addr import Prefix

__all__ = ["DampingConfig", "DampingState", "RouteDamper"]


@dataclass(frozen=True)
class DampingConfig:
    """RFC 2439 parameters (defaults follow common router defaults).

    Penalties are dimensionless; ``half_life`` controls decay.  A route
    is suppressed when its penalty exceeds ``suppress_threshold`` and
    released when decay brings it below ``reuse_threshold``.  The
    penalty is capped so suppression never exceeds ``max_suppress_time``.
    """

    half_life: float = 900.0           # 15 min
    reuse_threshold: float = 750.0
    suppress_threshold: float = 2000.0
    withdrawal_penalty: float = 1000.0
    attribute_change_penalty: float = 500.0
    max_suppress_time: float = 3600.0  # 60 min

    def __post_init__(self) -> None:
        if self.half_life <= 0:
            raise ValueError(f"half_life must be positive: {self.half_life}")
        if self.reuse_threshold >= self.suppress_threshold:
            raise ValueError("reuse threshold must be below suppress threshold")

    @property
    def max_penalty(self) -> float:
        """Penalty ceiling implied by max_suppress_time (RFC 2439 §4.2)."""
        return self.reuse_threshold * math.exp(
            math.log(2.0) * self.max_suppress_time / self.half_life
        )


@dataclass
class DampingState:
    """Penalty bookkeeping for one (peer, prefix)."""

    penalty: float = 0.0
    last_update: float = 0.0
    suppressed: bool = False
    flaps: int = 0

    def decayed_penalty(self, now: float, half_life: float) -> float:
        """Penalty after exponential decay to 'now'."""
        elapsed = now - self.last_update
        if elapsed <= 0:
            return self.penalty
        return self.penalty * math.pow(2.0, -elapsed / half_life)


class RouteDamper:
    """Per-router damping engine.

    The router reports flap events; the damper answers "is this route
    usable?" and schedules a reuse callback (via the router) when a
    suppressed route's penalty will cross the reuse threshold.
    """

    def __init__(
        self,
        sim: Simulator,
        config: DampingConfig,
        on_reuse,
    ) -> None:
        """``on_reuse(key)`` is invoked when a suppressed route becomes
        usable again; the router re-runs its decision process for the
        prefix."""
        self._sim = sim
        self.config = config
        self._on_reuse = on_reuse
        self._states: Dict[Tuple[int, Prefix], DampingState] = {}
        self.suppressions = 0
        self.reuses = 0

    # ------------------------------------------------------------------
    def record_flap(
        self, key: Tuple[int, Prefix], *, kind: str = "withdrawal"
    ) -> bool:
        """Register a flap; returns True if the route is now suppressed.

        ``kind`` is ``"withdrawal"`` or ``"attribute_change"``.
        """
        config = self.config
        penalty = (
            config.withdrawal_penalty
            if kind == "withdrawal"
            else config.attribute_change_penalty
        )
        state = self._states.setdefault(key, DampingState())
        now = self._sim.now
        state.penalty = min(
            state.decayed_penalty(now, config.half_life) + penalty,
            config.max_penalty,
        )
        state.last_update = now
        state.flaps += 1
        if not state.suppressed and state.penalty > config.suppress_threshold:
            state.suppressed = True
            self.suppressions += 1
            self._schedule_reuse(key, state)
        return state.suppressed

    def is_suppressed(self, key: Tuple[int, Prefix]) -> bool:
        """True while the route is damped out of decisions."""
        state = self._states.get(key)
        if state is None or not state.suppressed:
            return False
        # Lazily release if decay already crossed the reuse threshold
        # (the scheduled callback also handles this; this guards against
        # queries between decay and callback execution).
        if (
            state.decayed_penalty(self._sim.now, self.config.half_life)
            < self.config.reuse_threshold
        ):
            self._release(key, state)
            return False
        return True

    def penalty_of(self, key: Tuple[int, Prefix]) -> float:
        """Current (decayed) penalty for a key."""
        state = self._states.get(key)
        if state is None:
            return 0.0
        return state.decayed_penalty(self._sim.now, self.config.half_life)

    def state_of(self, key: Tuple[int, Prefix]) -> Optional[DampingState]:
        """Raw damping state for a key, if any."""
        return self._states.get(key)

    def clear(self, key: Tuple[int, Prefix]) -> None:
        """Forget state (session reset clears damping history per RFC)."""
        self._states.pop(key, None)

    def clear_peer(self, peer_asn: int) -> None:
        """Forget all damping state for one peer."""
        for key in [k for k in self._states if k[0] == peer_asn]:
            del self._states[key]

    # ------------------------------------------------------------------
    def _schedule_reuse(self, key, state: DampingState) -> None:
        config = self.config
        # time until penalty decays from current value to reuse threshold
        ratio = state.penalty / config.reuse_threshold
        delay = config.half_life * math.log(ratio, 2.0) if ratio > 1 else 0.0
        delay = min(delay, config.max_suppress_time)

        def check() -> None:
            current = self._states.get(key)
            if current is None or not current.suppressed:
                return
            if (
                current.decayed_penalty(self._sim.now, config.half_life)
                < config.reuse_threshold
            ):
                self._release(key, current)
            else:
                # re-penalized while suppressed: wait out the new penalty
                self._schedule_reuse(key, current)

        self._sim.schedule(delay + 1e-6, check, label="damping:reuse")

    def _release(self, key, state: DampingState) -> None:
        state.suppressed = False
        self.reuses += 1
        self._on_reuse(key)
