"""The BGP decision process (RFC 4271 §9.1.2, eBGP subset).

Given the candidate routes for one prefix (local + every peer's
Adj-RIB-In entry), pick the best:

1. highest LOCAL_PREF;
2. locally-originated beats learned (Quagga's "weight" effect);
3. shortest AS_PATH;
4. lowest ORIGIN (IGP < EGP < INCOMPLETE);
5. lowest MED (we compare across all neighbors, i.e. Quagga's
   ``bgp always-compare-med``, configurable off);
6. lowest peer AS number;  7. lowest peer name (router-id stand-in).

Steps 6-7 are the deterministic tie-breakers that make runs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from ..net.addr import Prefix
from .rib import LocRib, Route

__all__ = [
    "DecisionConfig",
    "DecisionDriver",
    "best_route",
    "rank_routes",
    "route_sort_key",
    "full_scan_best",
    "verify_loc_rib",
]


@dataclass
class DecisionConfig:
    """Knobs for the decision process."""

    compare_med: bool = True
    prefer_local: bool = True


def route_sort_key(route: Route, config: Optional[DecisionConfig] = None):
    """Sort key such that the minimum is the best route."""
    config = config or DecisionConfig()
    attrs = route.attrs
    return (
        -attrs.local_pref,
        0 if (config.prefer_local and route.is_local) else 1,
        attrs.as_path.length,
        int(attrs.origin),
        attrs.med if config.compare_med else 0,
        route.peer_asn,
        route.peer_name,
    )


def best_route(
    candidates: Iterable[Route], config: Optional[DecisionConfig] = None
) -> Optional[Route]:
    """The winner among ``candidates``, or None when there are none."""
    best: Optional[Route] = None
    best_key = None
    for route in candidates:
        key = route_sort_key(route, config)
        if best is None or key < best_key:
            best, best_key = route, key
    return best


def rank_routes(
    candidates: Iterable[Route], config: Optional[DecisionConfig] = None
) -> List[Route]:
    """All candidates, best first (for diagnostics / 'show ip bgp')."""
    return sorted(candidates, key=lambda r: route_sort_key(r, config))


class DecisionDriver:
    """A per-prefix dirty set for the incremental decision process.

    One UPDATE can touch the same prefix more than once (withdraw plus
    re-announce, or an import rejection acting as implicit withdrawal
    followed by a fresh announcement).  The driver records each touched
    prefix once, in first-touch order, so the router re-runs best-path
    selection exactly once per prefix per batch.  Because
    :func:`route_sort_key` is a strict total order, the single run picks
    the same winner the duplicated runs would have — the dedup changes
    work done, never results.
    """

    __slots__ = ("_dirty",)

    def __init__(self) -> None:
        # dict-as-ordered-set: insertion order is first-touch order.
        self._dirty: Dict[Prefix, None] = {}

    def __len__(self) -> int:
        return len(self._dirty)

    def mark(self, prefix: Prefix) -> None:
        """Record that a prefix's candidate set may have changed."""
        self._dirty[prefix] = None

    def drain(self) -> List[Prefix]:
        """All dirty prefixes in first-touch order; resets the set."""
        dirty = list(self._dirty)
        self._dirty.clear()
        return dirty


def full_scan_best(
    candidates_fn: Callable[[Prefix], Iterable[Route]],
    prefixes: Iterable[Prefix],
    config: Optional[DecisionConfig] = None,
) -> Dict[Prefix, Route]:
    """Reference decision process: best route per prefix by full scan.

    This is the oracle the incremental process is verified against —
    it knows nothing about dirty sets or indexes, it just asks
    ``candidates_fn`` for every prefix and picks the winner.
    """
    best: Dict[Prefix, Route] = {}
    for prefix in prefixes:
        winner = best_route(candidates_fn(prefix), config)
        if winner is not None:
            best[prefix] = winner
    return best


def verify_loc_rib(
    loc_rib: LocRib,
    candidates_fn: Callable[[Prefix], Iterable[Route]],
    prefixes: Iterable[Prefix],
    config: Optional[DecisionConfig] = None,
) -> List[str]:
    """Differential oracle: mismatches between a Loc-RIB and a full scan.

    Returns human-readable discrepancy strings (empty list = the
    incremental process converged to exactly the full-scan answer).
    Compares winners by attributes *and* provenance (peer), the same
    identity :meth:`LocRib.set_best` uses.
    """
    expected = full_scan_best(candidates_fn, prefixes, config)
    problems: List[str] = []
    for prefix in sorted(set(expected) | set(loc_rib.prefixes())):
        want = expected.get(prefix)
        got = loc_rib.get(prefix)
        if want is None and got is not None:
            problems.append(f"{prefix}: loc-rib has {got!r}, full scan has none")
        elif want is not None and got is None:
            problems.append(f"{prefix}: loc-rib empty, full scan picks {want!r}")
        elif want is not None and got is not None:
            if want.attrs != got.attrs or want.peer_asn != got.peer_asn:
                problems.append(
                    f"{prefix}: loc-rib {got!r} != full scan {want!r}"
                )
    return problems
