"""The BGP decision process (RFC 4271 §9.1.2, eBGP subset).

Given the candidate routes for one prefix (local + every peer's
Adj-RIB-In entry), pick the best:

1. highest LOCAL_PREF;
2. locally-originated beats learned (Quagga's "weight" effect);
3. shortest AS_PATH;
4. lowest ORIGIN (IGP < EGP < INCOMPLETE);
5. lowest MED (we compare across all neighbors, i.e. Quagga's
   ``bgp always-compare-med``, configurable off);
6. lowest peer AS number;  7. lowest peer name (router-id stand-in).

Steps 6-7 are the deterministic tie-breakers that make runs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from .rib import Route

__all__ = ["DecisionConfig", "best_route", "rank_routes", "route_sort_key"]


@dataclass
class DecisionConfig:
    """Knobs for the decision process."""

    compare_med: bool = True
    prefer_local: bool = True


def route_sort_key(route: Route, config: Optional[DecisionConfig] = None):
    """Sort key such that the minimum is the best route."""
    config = config or DecisionConfig()
    attrs = route.attrs
    return (
        -attrs.local_pref,
        0 if (config.prefer_local and route.is_local) else 1,
        attrs.as_path.length,
        int(attrs.origin),
        attrs.med if config.compare_med else 0,
        route.peer_asn,
        route.peer_name,
    )


def best_route(
    candidates: Iterable[Route], config: Optional[DecisionConfig] = None
) -> Optional[Route]:
    """The winner among ``candidates``, or None when there are none."""
    best: Optional[Route] = None
    best_key = None
    for route in candidates:
        key = route_sort_key(route, config)
        if best is None or key < best_key:
            best, best_key = route, key
    return best


def rank_routes(
    candidates: Iterable[Route], config: Optional[DecisionConfig] = None
) -> List[Route]:
    """All candidates, best first (for diagnostics / 'show ip bgp')."""
    return sorted(candidates, key=lambda r: route_sort_key(r, config))
