"""BGP message types (RFC 4271 §4, at the abstraction the emulator needs).

Messages travel over emulated links between session endpoints.  UPDATE
carries announcements (NLRI + shared attributes) and withdrawals in one
message, as on the wire; sessions batch per-peer pending changes into a
single UPDATE per MRAI round, which is what makes MRAI actually shape
convergence the way it does in Quagga.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Tuple

from ..net.addr import Prefix
from ..net.messages import Message
from .attrs import PathAttributes

__all__ = [
    "BGPMessage",
    "BGPOpen",
    "BGPKeepalive",
    "BGPUpdate",
    "BGPNotification",
]

_update_ids = itertools.count(1)


@dataclass(slots=True)
class BGPMessage(Message):
    """Common envelope: sender's AS number identifies the session peer."""

    sender_asn: int = 0

    def describe(self) -> str:
        """Short human-readable summary."""
        return f"{type(self).__name__}(AS{self.sender_asn})"


@dataclass(slots=True)
class BGPOpen(BGPMessage):
    """OPEN: carries the sender's AS and router-id (its node name here)."""

    router_id: str = ""
    hold_time: float = 90.0


@dataclass(slots=True)
class BGPKeepalive(BGPMessage):
    """KEEPALIVE: refreshes the hold timer; also acks OPEN."""


@dataclass(slots=True)
class BGPUpdate(BGPMessage):
    """UPDATE: announcements share one attribute set; withdrawals are bare.

    ``announced`` maps each NLRI prefix to its attributes — we allow
    per-prefix attributes in one message (a batching convenience; on the
    wire this would be several UPDATEs back-to-back, with identical
    timing).
    """

    announced: Tuple[Tuple[Prefix, PathAttributes], ...] = ()
    withdrawn: Tuple[Prefix, ...] = ()
    update_id: int = field(default_factory=lambda: next(_update_ids))

    @property
    def empty(self) -> bool:
        """True when there is nothing to send/do."""
        return not self.announced and not self.withdrawn

    def describe(self) -> str:
        """Short human-readable summary."""
        ann = ", ".join(f"{p}[{a.as_path}]" for p, a in self.announced)
        wd = ", ".join(str(p) for p in self.withdrawn)
        return f"UPDATE(AS{self.sender_asn} +[{ann}] -[{wd}])"


@dataclass(slots=True)
class BGPNotification(BGPMessage):
    """NOTIFICATION: sent on error/teardown; receiver drops the session."""

    code: str = "cease"
