"""BGP routing policy: relationships, route-maps, Gao-Rexford templates.

The framework "configures ... customer-to-provider and peer-to-peer
relationships" automatically.  We model policy the way Quagga does — as
ordered route-maps applied on import and export per peer — and provide
the two policy templates the experiments use:

- **Gao-Rexford** (valley-free): import tags each route with the business
  relationship it was learned over and sets LOCAL_PREF customer > peer >
  provider; export follows the no-valley rule (routes from peers or
  providers are only exported to customers).
- **Transit-all** (flat): every AS re-exports everything, the classic
  setting for clique convergence studies (Labovitz et al.) and the one
  the paper's 16-AS clique experiment corresponds to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..net.addr import Prefix
from .attrs import PathAttributes

__all__ = [
    "Relationship",
    "RouteMap",
    "RouteMapEntry",
    "PeerPolicy",
    "gao_rexford_policy",
    "transit_all_policy",
    "LOCAL_COMMUNITY",
    "relationship_community",
    "LOCAL_PREF_BY_RELATIONSHIP",
]

#: Community tagged on locally-originated routes.
LOCAL_COMMUNITY = "origin:local"


class Relationship(enum.Enum):
    """Business relationship of a *peer*, from this AS's point of view."""

    CUSTOMER = "customer"   # the peer pays us
    PEER = "peer"           # settlement-free peering
    PROVIDER = "provider"   # we pay the peer
    FLAT = "flat"           # no business policy (transit-all experiments)

    @property
    def inverse(self) -> "Relationship":
        """The relationship as seen from the other side of the link."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return self


#: Standard local-pref ladder: prefer customer routes, then peers, then
#: providers (economics: customers pay, providers cost).
LOCAL_PREF_BY_RELATIONSHIP = {
    Relationship.CUSTOMER: 200,
    Relationship.PEER: 100,
    Relationship.PROVIDER: 50,
    Relationship.FLAT: 100,
}


def relationship_community(rel: Relationship) -> str:
    """Community recording which relationship a route was learned over."""
    return f"learned:{rel.value}"


# ----------------------------------------------------------------------
# Route-maps
# ----------------------------------------------------------------------
@dataclass
class RouteMapEntry:
    """One permit/deny clause with optional matches and actions.

    ``matches`` are predicates over ``(prefix, attrs)``; all must hold for
    the entry to fire.  On a permit, ``actions`` transform the attributes
    in order.
    """

    permit: bool = True
    matches: List[Callable[[Prefix, PathAttributes], bool]] = field(
        default_factory=list
    )
    actions: List[Callable[[PathAttributes], PathAttributes]] = field(
        default_factory=list
    )
    description: str = ""

    def applies(self, prefix: Prefix, attrs: PathAttributes) -> bool:
        """True when every match predicate holds."""
        return all(match(prefix, attrs) for match in self.matches)

    def apply_actions(self, attrs: PathAttributes) -> PathAttributes:
        """Run all actions over the attributes."""
        for action in self.actions:
            attrs = action(attrs)
        return attrs


class RouteMap:
    """Ordered first-match route-map, Quagga semantics.

    If no entry matches, the route is denied (matching Quagga's implicit
    deny) unless ``default_permit`` is set.
    """

    def __init__(
        self,
        entries: Optional[Sequence[RouteMapEntry]] = None,
        *,
        default_permit: bool = False,
        name: str = "",
    ) -> None:
        self.entries: List[RouteMapEntry] = list(entries or [])
        self.default_permit = default_permit
        self.name = name

    def append(self, entry: RouteMapEntry) -> None:
        """Add an entry at the end."""
        self.entries.append(entry)

    def evaluate(
        self, prefix: Prefix, attrs: PathAttributes
    ) -> Optional[PathAttributes]:
        """Transformed attributes if permitted, None if denied."""
        for entry in self.entries:
            if entry.applies(prefix, attrs):
                if not entry.permit:
                    return None
                return entry.apply_actions(attrs)
        return attrs if self.default_permit else None

    def __repr__(self) -> str:
        return f"<RouteMap {self.name or '?'} entries={len(self.entries)}>"


# ----------------------------------------------------------------------
# Match / action helpers (building blocks for templates and user policy)
# ----------------------------------------------------------------------
def match_prefix_in(prefixes: Sequence[Prefix]):
    """Match NLRI covered by any prefix in the list."""
    covered = list(prefixes)

    def match(prefix: Prefix, attrs: PathAttributes) -> bool:
        return any(prefix in cover or prefix == cover for cover in covered)

    return match


def match_community(community: str):
    def match(prefix: Prefix, attrs: PathAttributes) -> bool:
        return attrs.has_community(community)

    return match


def match_any_community(communities: Sequence[str]):
    wanted = set(communities)

    def match(prefix: Prefix, attrs: PathAttributes) -> bool:
        return bool(wanted.intersection(attrs.communities))

    return match


def match_as_in_path(asn: int):
    def match(prefix: Prefix, attrs: PathAttributes) -> bool:
        return attrs.as_path.contains(asn)

    return match


def set_local_pref(value: int):
    def action(attrs: PathAttributes) -> PathAttributes:
        return attrs.with_local_pref(value)

    return action


def add_community(community: str):
    def action(attrs: PathAttributes) -> PathAttributes:
        if attrs.has_community(community):
            return attrs
        return attrs.with_communities(attrs.communities + (community,))

    return action


def strip_learned_communities():
    """Drop relationship tags before exporting (they are local meaning)."""

    def action(attrs: PathAttributes) -> PathAttributes:
        kept = tuple(
            c for c in attrs.communities
            if not c.startswith("learned:") and c != LOCAL_COMMUNITY
        )
        return attrs.with_communities(kept)

    return action


def prepend_path(asn: int, count: int):
    def action(attrs: PathAttributes) -> PathAttributes:
        return attrs.with_path(attrs.as_path.prepend(asn, count))

    return action


# ----------------------------------------------------------------------
# Per-peer policy bundles
# ----------------------------------------------------------------------
@dataclass
class PeerPolicy:
    """Import and export route-maps for one BGP peer, plus its relationship."""

    relationship: Relationship
    import_map: RouteMap
    export_map: RouteMap

    def import_route(
        self, prefix: Prefix, attrs: PathAttributes
    ) -> Optional[PathAttributes]:
        return self.import_map.evaluate(prefix, attrs)

    def export_route(
        self, prefix: Prefix, attrs: PathAttributes
    ) -> Optional[PathAttributes]:
        return self.export_map.evaluate(prefix, attrs)

    def with_export_prepend(self, asn: int, count: int) -> "PeerPolicy":
        """A copy whose permits additionally prepend ``asn`` x ``count``.

        This is the operator's standard primary/backup trick: prepending
        on the backup session makes its paths longer, so the backup only
        carries traffic after the primary is gone — and BGP must explore
        the length gap on fail-over.
        """
        entries = [
            RouteMapEntry(
                permit=entry.permit,
                matches=list(entry.matches),
                actions=list(entry.actions)
                + ([prepend_path(asn, count)] if entry.permit else []),
                description=(entry.description + f" +prepend x{count}").strip(),
            )
            for entry in self.export_map.entries
        ]
        export_map = RouteMap(
            entries,
            default_permit=self.export_map.default_permit,
            name=f"{self.export_map.name}-prepend{count}",
        )
        return PeerPolicy(self.relationship, self.import_map, export_map)


def gao_rexford_policy(relationship: Relationship) -> PeerPolicy:
    """Valley-free policy bundle for a peer with the given relationship.

    Import: set LOCAL_PREF by relationship and tag the route.
    Export: permit locally-originated and customer-learned routes to
    everyone; peer-/provider-learned routes only to customers.
    """
    import_map = RouteMap(
        [
            RouteMapEntry(
                permit=True,
                actions=[
                    set_local_pref(LOCAL_PREF_BY_RELATIONSHIP[relationship]),
                    add_community(relationship_community(relationship)),
                ],
                description=f"import from {relationship.value}",
            )
        ],
        name=f"gr-import-{relationship.value}",
    )
    exportable = [
        LOCAL_COMMUNITY,
        relationship_community(Relationship.CUSTOMER),
    ]
    if relationship is Relationship.CUSTOMER:
        # Everything goes to customers.
        entries = [
            RouteMapEntry(
                permit=True,
                actions=[strip_learned_communities()],
                description="export all to customer",
            )
        ]
    else:
        entries = [
            RouteMapEntry(
                permit=True,
                matches=[match_any_community(exportable)],
                actions=[strip_learned_communities()],
                description=f"export own/customer routes to {relationship.value}",
            ),
            RouteMapEntry(permit=False, description="implicit valley deny"),
        ]
    export_map = RouteMap(entries, name=f"gr-export-{relationship.value}")
    return PeerPolicy(relationship, import_map, export_map)


def transit_all_policy() -> PeerPolicy:
    """Flat policy: accept and re-export everything (clique experiments)."""
    import_map = RouteMap(
        [RouteMapEntry(permit=True, description="accept all")],
        name="flat-import",
    )
    export_map = RouteMap(
        [
            RouteMapEntry(
                permit=True,
                actions=[strip_learned_communities()],
                description="export all",
            )
        ],
        name="flat-export",
    )
    return PeerPolicy(Relationship.FLAT, import_map, export_map)
