"""Routing information bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.

One :class:`AdjRibIn` per peer holds the (policy-transformed) routes that
peer advertised; the :class:`LocRib` holds the decision-process winner per
prefix; one :class:`AdjRibOut` per peer records what we last advertised,
so UPDATE generation is a pure diff — no duplicate announcements, and
withdrawals are only sent for prefixes the peer actually heard from us.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..net.addr import Prefix
from .attrs import PathAttributes

__all__ = ["Route", "AdjRibIn", "LocRib", "AdjRibOut"]


@dataclass(frozen=True)
class Route:
    """A candidate route: prefix + attributes + provenance.

    ``peer_asn`` is 0 for locally-originated routes.  ``learned_at`` is
    virtual time, used for diagnostics and the route-change visualizer.
    """

    prefix: Prefix
    attrs: PathAttributes
    peer_asn: int = 0
    peer_name: str = ""
    learned_at: float = 0.0

    @property
    def is_local(self) -> bool:
        """True for locally-originated routes (no peer)."""
        return self.peer_asn == 0

    @property
    def as_path_len(self) -> int:
        """Length of the route's AS path."""
        return self.attrs.as_path.length

    def __repr__(self) -> str:
        src = "local" if self.is_local else f"AS{self.peer_asn}"
        return f"<Route {self.prefix} via {src} path=[{self.attrs.as_path}]>"


class AdjRibIn:
    """Routes received from one peer, post-import-policy."""

    def __init__(self, peer_asn: int, peer_name: str = "") -> None:
        self.peer_asn = peer_asn
        self.peer_name = peer_name
        self._routes: Dict[Prefix, Route] = {}

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes.values())

    def get(self, prefix: Prefix) -> Optional[Route]:
        """Exact-match lookup; None if absent."""
        return self._routes.get(prefix)

    def update(self, route: Route) -> bool:
        """Install/replace; True if state changed."""
        old = self._routes.get(route.prefix)
        if old is not None and old.attrs == route.attrs:
            return False
        self._routes[route.prefix] = route
        return True

    def withdraw(self, prefix: Prefix) -> bool:
        """Remove; True if a route existed."""
        return self._routes.pop(prefix, None) is not None

    def clear(self) -> list:
        """Drop everything (session reset); returns the prefixes removed."""
        prefixes = list(self._routes)
        self._routes.clear()
        return prefixes

    def prefixes(self) -> list:
        """All prefixes currently held, as a list."""
        return list(self._routes)


class LocRib:
    """Best route per prefix, as chosen by the decision process."""

    def __init__(self) -> None:
        self._best: Dict[Prefix, Route] = {}
        self.version = 0

    def __len__(self) -> int:
        return len(self._best)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._best.values())

    def get(self, prefix: Prefix) -> Optional[Route]:
        """Exact-match lookup; None if absent."""
        return self._best.get(prefix)

    def set_best(self, route: Route) -> bool:
        """Install the new best route; True if it changed."""
        old = self._best.get(route.prefix)
        if old is not None and old.attrs == route.attrs and old.peer_asn == route.peer_asn:
            return False
        self._best[route.prefix] = route
        self.version += 1
        return True

    def remove(self, prefix: Prefix) -> bool:
        """Remove the entry; True if one existed."""
        if prefix in self._best:
            del self._best[prefix]
            self.version += 1
            return True
        return False

    def prefixes(self) -> list:
        """All prefixes currently held, as a list."""
        return list(self._best)

    def routes(self) -> list:
        """All routes, sorted by prefix."""
        return sorted(self._best.values(), key=lambda r: r.prefix)


class AdjRibOut:
    """What we last sent to one peer; UPDATE generation diffs against it."""

    def __init__(self, peer_asn: int, peer_name: str = "") -> None:
        self.peer_asn = peer_asn
        self.peer_name = peer_name
        self._sent: Dict[Prefix, PathAttributes] = {}

    def __len__(self) -> int:
        return len(self._sent)

    def get(self, prefix: Prefix) -> Optional[PathAttributes]:
        """Exact-match lookup; None if absent."""
        return self._sent.get(prefix)

    def diff(
        self, prefix: Prefix, attrs: Optional[PathAttributes]
    ) -> Optional[Tuple[str, Optional[PathAttributes]]]:
        """What (if anything) must be sent so the peer sees ``attrs``.

        Returns ``("announce", attrs)``, ``("withdraw", None)``, or None
        when the peer is already up to date.  Does *not* mutate state —
        call :meth:`mark_sent` when the UPDATE actually goes out.
        """
        sent = self._sent.get(prefix)
        if attrs is None:
            return ("withdraw", None) if sent is not None else None
        if sent == attrs:
            return None
        return ("announce", attrs)

    def mark_sent(self, prefix: Prefix, attrs: Optional[PathAttributes]) -> None:
        if attrs is None:
            self._sent.pop(prefix, None)
        else:
            self._sent[prefix] = attrs

    def clear(self) -> None:
        """Drop all stored state."""
        self._sent.clear()

    def prefixes(self) -> list:
        """All prefixes currently held, as a list."""
        return list(self._sent)
