"""Routing information bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.

One :class:`AdjRibIn` per peer holds the (policy-transformed) routes that
peer advertised; the :class:`LocRib` holds the decision-process winner per
prefix; one :class:`AdjRibOut` per peer records what we last advertised,
so UPDATE generation is a pure diff — no duplicate announcements, and
withdrawals are only sent for prefixes the peer actually heard from us.

For large topologies a router can additionally maintain a
:class:`RouteIndex`: a prefix-major view (prefix → {link_id: route}) of
all its Adj-RIB-In tables, kept in sync by the tables themselves.  The
decision process then reads the candidates for one prefix directly
instead of probing every session's table — O(routes for the prefix)
instead of O(sessions) per decision, which is what makes 5k-AS
withdrawal storms tractable (see ``docs/scaling.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..net.addr import Prefix
from .attrs import PathAttributes

__all__ = ["Route", "RouteIndex", "AdjRibIn", "LocRib", "AdjRibOut"]


@dataclass(frozen=True, slots=True)
class Route:
    """A candidate route: prefix + attributes + provenance.

    ``peer_asn`` is 0 for locally-originated routes.  ``learned_at`` is
    virtual time, used for diagnostics and the route-change visualizer.
    """

    prefix: Prefix
    attrs: PathAttributes
    peer_asn: int = 0
    peer_name: str = ""
    learned_at: float = 0.0

    @property
    def is_local(self) -> bool:
        """True for locally-originated routes (no peer)."""
        return self.peer_asn == 0

    @property
    def as_path_len(self) -> int:
        """Length of the route's AS path."""
        return self.attrs.as_path.length

    def __repr__(self) -> str:
        src = "local" if self.is_local else f"AS{self.peer_asn}"
        return f"<Route {self.prefix} via {src} path=[{self.attrs.as_path}]>"


class RouteIndex:
    """Prefix-major index over a router's Adj-RIB-In tables.

    Maps each prefix to ``{link_id: route}`` for every peer table that
    currently holds it.  The index never stores anything the tables do
    not: :class:`AdjRibIn` instances constructed with ``index=`` keep it
    in sync on every install, withdraw and clear, so reading the index
    is exactly equivalent to probing every table — just without the
    O(sessions) scan.
    """

    __slots__ = ("_by_prefix",)

    def __init__(self) -> None:
        self._by_prefix: Dict[Prefix, Dict[int, Route]] = {}

    def __len__(self) -> int:
        return len(self._by_prefix)

    def set(self, link_id: int, route: Route) -> None:
        """Install/replace the route one peer table holds for a prefix."""
        self._by_prefix.setdefault(route.prefix, {})[link_id] = route

    def discard(self, link_id: int, prefix: Prefix) -> None:
        """Remove one peer table's entry for a prefix, if present."""
        entry = self._by_prefix.get(prefix)
        if entry is None:
            return
        entry.pop(link_id, None)
        if not entry:
            del self._by_prefix[prefix]

    def drop_link(self, link_id: int) -> List[Prefix]:
        """Forget everything learned over one link (session replacement).

        Returns the affected prefixes.  O(prefixes) — only used on the
        rare session-establishment path, never per-UPDATE.
        """
        affected: List[Prefix] = []
        for prefix in list(self._by_prefix):
            entry = self._by_prefix[prefix]
            if link_id in entry:
                del entry[link_id]
                affected.append(prefix)
                if not entry:
                    del self._by_prefix[prefix]
        return affected

    def get(self, prefix: Prefix) -> Dict[int, Route]:
        """The ``{link_id: route}`` entries for one prefix (maybe empty)."""
        return self._by_prefix.get(prefix, {})

    def prefixes(self) -> list:
        """All prefixes with at least one entry, as a list."""
        return list(self._by_prefix)


class AdjRibIn:
    """Routes received from one peer, post-import-policy.

    When constructed with ``link_id``/``index`` the table mirrors every
    mutation into the router-wide :class:`RouteIndex` so the compact
    decision process can read candidates per prefix.
    """

    def __init__(
        self,
        peer_asn: int,
        peer_name: str = "",
        *,
        link_id: Optional[int] = None,
        index: Optional[RouteIndex] = None,
    ) -> None:
        self.peer_asn = peer_asn
        self.peer_name = peer_name
        self._routes: Dict[Prefix, Route] = {}
        self._link_id = link_id
        self._index = index if link_id is not None else None

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes.values())

    def get(self, prefix: Prefix) -> Optional[Route]:
        """Exact-match lookup; None if absent."""
        return self._routes.get(prefix)

    def update(self, route: Route) -> bool:
        """Install/replace; True if state changed."""
        old = self._routes.get(route.prefix)
        if old is not None and old.attrs == route.attrs:
            return False
        self._routes[route.prefix] = route
        if self._index is not None:
            self._index.set(self._link_id, route)
        return True

    def withdraw(self, prefix: Prefix) -> bool:
        """Remove; True if a route existed."""
        existed = self._routes.pop(prefix, None) is not None
        if existed and self._index is not None:
            self._index.discard(self._link_id, prefix)
        return existed

    def clear(self) -> list:
        """Drop everything (session reset); returns the prefixes removed."""
        prefixes = list(self._routes)
        self._routes.clear()
        if self._index is not None:
            for prefix in prefixes:
                self._index.discard(self._link_id, prefix)
        return prefixes

    def prefixes(self) -> list:
        """All prefixes currently held, as a list."""
        return list(self._routes)


class LocRib:
    """Best route per prefix, as chosen by the decision process."""

    def __init__(self) -> None:
        self._best: Dict[Prefix, Route] = {}
        self.version = 0

    def __len__(self) -> int:
        return len(self._best)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._best.values())

    def get(self, prefix: Prefix) -> Optional[Route]:
        """Exact-match lookup; None if absent."""
        return self._best.get(prefix)

    def set_best(self, route: Route) -> bool:
        """Install the new best route; True if it changed."""
        old = self._best.get(route.prefix)
        if old is not None and old.attrs == route.attrs and old.peer_asn == route.peer_asn:
            return False
        self._best[route.prefix] = route
        self.version += 1
        return True

    def remove(self, prefix: Prefix) -> bool:
        """Remove the entry; True if one existed."""
        if prefix in self._best:
            del self._best[prefix]
            self.version += 1
            return True
        return False

    def prefixes(self) -> list:
        """All prefixes currently held, as a list."""
        return list(self._best)

    def routes(self) -> list:
        """All routes, sorted by prefix."""
        return sorted(self._best.values(), key=lambda r: r.prefix)


class AdjRibOut:
    """What we last sent to one peer; UPDATE generation diffs against it."""

    def __init__(self, peer_asn: int, peer_name: str = "") -> None:
        self.peer_asn = peer_asn
        self.peer_name = peer_name
        self._sent: Dict[Prefix, PathAttributes] = {}

    def __len__(self) -> int:
        return len(self._sent)

    def get(self, prefix: Prefix) -> Optional[PathAttributes]:
        """Exact-match lookup; None if absent."""
        return self._sent.get(prefix)

    def diff(
        self, prefix: Prefix, attrs: Optional[PathAttributes]
    ) -> Optional[Tuple[str, Optional[PathAttributes]]]:
        """What (if anything) must be sent so the peer sees ``attrs``.

        Returns ``("announce", attrs)``, ``("withdraw", None)``, or None
        when the peer is already up to date.  Does *not* mutate state —
        call :meth:`mark_sent` when the UPDATE actually goes out.
        """
        sent = self._sent.get(prefix)
        if attrs is None:
            return ("withdraw", None) if sent is not None else None
        if sent == attrs:
            return None
        return ("announce", attrs)

    def mark_sent(self, prefix: Prefix, attrs: Optional[PathAttributes]) -> None:
        if attrs is None:
            self._sent.pop(prefix, None)
        else:
            self._sent[prefix] = attrs

    def clear(self) -> None:
        """Drop all stored state."""
        self._sent.clear()

    def prefixes(self) -> list:
        """All prefixes currently held, as a list."""
        return list(self._sent)
