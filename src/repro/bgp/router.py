"""The per-AS BGP router (the framework's Quagga bgpd stand-in).

One :class:`BGPRouter` emulates one AS's border router ("to isolate the
effects of inter-domain from intra-domain routing every AS is emulated by
a single network device", paper §3).  It owns:

- one :class:`~repro.bgp.session.BGPSession` per peering link,
- per-peer Adj-RIB-In / Adj-RIB-Out plus the Loc-RIB,
- the decision process, FIB installation, and UPDATE generation,
- a serialized update-processing queue with a small per-update delay,
  modelling router CPU the way a real bgpd process serializes work.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from ..eventsim import Simulator
from ..net.addr import Prefix
from ..obs.spans import activation, last_span_activation
from ..net.dataplane import FibEntry
from ..net.link import Link
from ..net.node import Node
from .attrs import AsPath, Origin, PathAttributes
from .damping import DampingConfig, RouteDamper
from .decision import (
    DecisionConfig,
    DecisionDriver,
    best_route,
    rank_routes,
    verify_loc_rib,
)
from .messages import BGPMessage, BGPUpdate
from .policy import LOCAL_COMMUNITY, PeerPolicy, add_community
from .rib import AdjRibIn, AdjRibOut, LocRib, Route, RouteIndex
from .session import BGPSession, BGPTimers

__all__ = ["BGPRouter"]


class BGPRouter(Node):
    """A single-AS eBGP speaker with full RIB machinery."""

    def __init__(
        self,
        sim: Simulator,
        instrument,
        name: str,
        *,
        asn: int,
        timers: Optional[BGPTimers] = None,
        decision: Optional[DecisionConfig] = None,
        damping: Optional[DampingConfig] = None,
        compact: bool = False,
    ) -> None:
        super().__init__(sim, instrument, name)
        if asn <= 0:
            raise ValueError(f"ASN must be positive: {asn!r}")
        self.asn = asn
        self.timers = timers if timers is not None else BGPTimers()
        self.decision_config = decision if decision is not None else DecisionConfig()
        #: compact mode: prefix-indexed candidate reads + a dirty-set
        #: decision driver.  Provably result-identical to the full-scan
        #: path (see :meth:`verify_decisions` and docs/scaling.md); kept
        #: opt-in so the legacy code path stays byte-for-byte exercised.
        self.compact = compact
        self._index: Optional[RouteIndex] = RouteIndex() if compact else None
        self._driver: Optional[DecisionDriver] = (
            DecisionDriver() if compact else None
        )
        #: optional RFC 2439 route-flap damping; keys are (link_id, prefix).
        self.damper: Optional[RouteDamper] = (
            RouteDamper(sim, damping, self._on_damping_reuse)
            if damping is not None
            else None
        )
        self.loc_rib = LocRib()
        self.originated: Dict[Prefix, PathAttributes] = {}
        self.sessions: Dict[int, BGPSession] = {}  # link_id -> session
        self._rib_in: Dict[int, AdjRibIn] = {}  # link_id -> per-peer RIB
        self._rib_out: Dict[int, AdjRibOut] = {}
        self._update_queue: deque = deque()
        self._processing = False
        self.updates_processed = 0
        self.decisions_run = 0

    # ------------------------------------------------------------------
    # peering setup
    # ------------------------------------------------------------------
    def add_peer(
        self,
        link: Link,
        *,
        policy: Optional[PeerPolicy] = None,
        timers: Optional[BGPTimers] = None,
        local_asn: Optional[int] = None,
    ) -> BGPSession:
        """Configure an eBGP session over ``link`` (must attach to us)."""
        if link.other(self) is None:  # raises if we're not an endpoint
            raise ValueError("link does not attach to this router")
        if link.link_id in self.sessions:
            raise ValueError(f"session already configured on {link.name}")
        session = BGPSession(
            self, link, policy=policy, timers=timers, local_asn=local_asn
        )
        self.sessions[link.link_id] = session
        self._rib_in[link.link_id] = AdjRibIn(
            0, link_id=link.link_id, index=self._index
        )
        self._rib_out[link.link_id] = AdjRibOut(0)
        return session

    def start(self) -> None:
        """Start all configured sessions connecting."""
        for session in self.sessions.values():
            session.start()

    def session_on(self, link: Link) -> Optional[BGPSession]:
        """The session configured on one link, if any."""
        return self.sessions.get(link.link_id)

    def established_sessions(self) -> List[BGPSession]:
        """Sessions currently in ESTABLISHED state."""
        return [s for s in self.sessions.values() if s.established]

    def adj_rib_in(self, session: BGPSession) -> AdjRibIn:
        """Per-peer Adj-RIB-In for a session."""
        return self._rib_in[session.link.link_id]

    def adj_rib_out(self, session: BGPSession) -> AdjRibOut:
        """Per-peer Adj-RIB-Out for a session."""
        return self._rib_out[session.link.link_id]

    # ------------------------------------------------------------------
    # node hooks
    # ------------------------------------------------------------------
    def handle_message(self, link: Link, message) -> None:
        """Control-plane dispatch for one delivered message."""
        if isinstance(message, BGPMessage):
            session = self.sessions.get(link.link_id)
            if session is not None:
                session.handle_message(message)

    def link_state_changed(self, link: Link) -> None:
        """React to an attached link flipping up/down."""
        session = self.sessions.get(link.link_id)
        if session is not None:
            session.link_state_changed()

    # ------------------------------------------------------------------
    # origination (the framework's "announce prefix" command)
    # ------------------------------------------------------------------
    def originate(self, prefix: Prefix, *, med: int = 0) -> None:
        """Originate ``prefix`` from this AS and advertise per policy."""
        attrs = PathAttributes(
            as_path=AsPath(), origin=Origin.IGP, med=med,
        )
        attrs = add_community(LOCAL_COMMUNITY)(attrs)
        self.originated[prefix] = attrs
        self.add_local_prefix(prefix)
        self.bus.record("bgp.originate", self.name, prefix=str(prefix))
        # Provenance: the origination span (a root cause when injected
        # from scenario code) covers the local decision and its fallout.
        with last_span_activation(self.bus.obs):
            self._run_decision(prefix)

    def withdraw(self, prefix: Prefix) -> None:
        """Stop originating ``prefix`` (the paper's withdrawal event)."""
        if prefix not in self.originated:
            raise KeyError(f"{self.name} does not originate {prefix}")
        del self.originated[prefix]
        self.remove_local_prefix(prefix)
        self.bus.record("bgp.withdraw", self.name, prefix=str(prefix))
        with last_span_activation(self.bus.obs):
            self._run_decision(prefix)

    # ------------------------------------------------------------------
    # session callbacks
    # ------------------------------------------------------------------
    def session_up(self, session: BGPSession) -> None:
        """Session reached ESTABLISHED: reset RIBs and resync."""
        link_id = session.link.link_id
        if self._index is not None:
            # The old per-peer table is replaced wholesale below; its
            # entries must leave the prefix index with it.
            self._index.drop_link(link_id)
        self._rib_in[link_id] = AdjRibIn(
            session.peer_asn, session.peer_name,
            link_id=link_id, index=self._index,
        )
        self._rib_out[link_id] = AdjRibOut(session.peer_asn, session.peer_name)
        self.bus.record(
            "bgp.session.up", self.name,
            peer=session.peer_name, peer_asn=session.peer_asn,
        )
        obs = self.bus.obs
        if obs is not None and obs.current is None:
            # Timer-driven establishment (initial bring-up, re-establish
            # after repair): the session event is itself the root cause
            # of the resync traffic.
            ctx = obs.emit_root(
                "bgp.session.up", self.name, peer=session.peer_name
            )
            with activation(obs, ctx):
                session.resync()
        else:
            session.resync()

    def session_down(self, session: BGPSession, *, reason: str = "") -> None:
        """Session lost: flush per-peer state, re-decide."""
        link_id = session.link.link_id
        if self.damper is not None:
            self.damper.clear_peer(link_id)
        rib_in = self._rib_in.get(link_id)
        affected = rib_in.clear() if rib_in is not None else []
        rib_out = self._rib_out.get(link_id)
        if rib_out is not None:
            rib_out.clear()
        self.bus.record(
            "bgp.session.down", self.name,
            peer=session.link.other(self).name, reason=reason,
        )
        obs = self.bus.obs
        if obs is not None and obs.current is None:
            # Session loss with no surrounding cause (hold-timer expiry,
            # injected session reset) starts its own causal tree; losses
            # inside a link-down or crash context inherit that root.
            ctx = obs.emit_root(
                "bgp.session.down", self.name,
                peer=session.link.other(self).name, reason=reason,
            )
            with activation(obs, ctx):
                for prefix in affected:
                    self._run_decision(prefix)
        else:
            for prefix in affected:
                self._run_decision(prefix)

    # ------------------------------------------------------------------
    # crash / restart (fault-injection semantics)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Power-fail the router: sessions drop and all learned state is lost.

        The fault layer fails the attached links first, so peers see fast
        fallover and the sessions here are usually already IDLE; stopping
        them again covers slow-detection timer configurations.  Learned
        RIB state and BGP-derived FIB entries are wiped, but
        ``originated`` survives — origination is configuration, not
        protocol state — and is re-announced by :meth:`restart`.
        """
        obs = self.bus.obs
        ctx = obs.emit_root("bgp.crash", self.name) if obs is not None else None
        with activation(obs, ctx):
            for session in self.sessions.values():
                session.stop(notify_peer=False, reason="crash")
            self._update_queue.clear()
            self._processing = False
            for link_id, rib_in in self._rib_in.items():
                rib_in.clear()
                self._rib_out[link_id].clear()
                if self.damper is not None:
                    self.damper.clear_peer(link_id)
            lost = 0
            for prefix in list(self.loc_rib.prefixes()):
                if self.loc_rib.remove(prefix):
                    lost += 1
            for entry in [
                e for e in list(self.fib) if e.source.startswith("bgp")
            ]:
                if self.fib.remove(entry.prefix):
                    self.bus.record(
                        "fib.change", self.name, prefix=str(entry.prefix),
                        via=None,
                    )
            self.bus.record("bgp.crash", self.name, lost_routes=lost)

    def restart(self) -> None:
        """Boot after :meth:`crash`: re-install configured originations.

        Re-running the decision process for every originated prefix puts
        the local routes back into Loc-RIB/FIB; the outward re-announce
        happens via session resync once links are restored and sessions
        re-establish (the fault layer restores links after calling this).
        """
        self.bus.record("bgp.restart", self.name)
        obs = self.bus.obs
        ctx = (
            obs.emit_root("bgp.restart", self.name) if obs is not None else None
        )
        with activation(obs, ctx):
            for prefix in sorted(self.originated):
                self._run_decision(prefix)

    # ------------------------------------------------------------------
    # update processing (serialized, with CPU delay)
    # ------------------------------------------------------------------
    def enqueue_update(self, session: BGPSession, update: BGPUpdate) -> None:
        """Queue a received UPDATE for serialized processing."""
        self.bus.record_lazy(
            "bgp.update.rx", self.name,
            lambda: {
                "peer": session.link.other(self).name,
                "announced": [
                    (str(p), str(a.as_path)) for p, a in update.announced
                ],
                "withdrawn": [str(p) for p in update.withdrawn],
                "update_id": update.update_id,
            },
        )
        # Provenance: queue entries carry the rx span's context (the
        # record above) so deferred processing re-enters it.
        obs = self.bus.obs
        ctx = obs.last_ctx if obs is not None else None
        self._update_queue.append((session, update, ctx))
        self._schedule_processing()

    def _schedule_processing(self) -> None:
        if self._processing or not self._update_queue:
            return
        self._processing = True
        rng = self.sim.rng("bgp.proc")
        delay = rng.uniform(self.timers.proc_delay_min, self.timers.proc_delay_max)
        self.sim.schedule(delay, self._process_one, label=f"{self.name}:proc")

    def _process_one(self) -> None:
        self._processing = False
        if not self._update_queue:
            return
        session, update, ctx = self._update_queue.popleft()
        if session.established:
            with activation(self.bus.obs, ctx):
                self._apply_update(session, update)
        self._schedule_processing()

    def _apply_update(self, session: BGPSession, update: BGPUpdate) -> None:
        self.updates_processed += 1
        rib_in = self.adj_rib_in(session)
        link_id = session.link.link_id
        affected: List[Prefix] = []
        for prefix in update.withdrawn:
            if rib_in.withdraw(prefix):
                self._record_flap(link_id, prefix, "withdrawal")
                affected.append(prefix)
        for prefix, attrs in update.announced:
            imported = self._import_route(session, prefix, attrs)
            if imported is None:
                # Rejected: an implicit withdrawal if we previously held it.
                if rib_in.withdraw(prefix):
                    self._record_flap(link_id, prefix, "withdrawal")
                    affected.append(prefix)
                continue
            route = Route(
                prefix=prefix,
                attrs=imported,
                peer_asn=session.peer_asn,
                peer_name=session.peer_name,
                learned_at=self.sim.now,
            )
            had_before = rib_in.get(prefix) is not None
            if rib_in.update(route):
                if had_before:
                    self._record_flap(link_id, prefix, "attribute_change")
                affected.append(prefix)
        if self._driver is not None:
            # Incremental mode: one UPDATE may touch a prefix twice
            # (withdraw + re-announce); the dirty set collapses those to
            # a single best-path run per prefix, in first-touch order.
            for prefix in affected:
                self._driver.mark(prefix)
            for prefix in self._driver.drain():
                self._run_decision(prefix)
        else:
            for prefix in affected:
                self._run_decision(prefix)

    # ------------------------------------------------------------------
    # route-flap damping hooks (RFC 2439)
    # ------------------------------------------------------------------
    def _record_flap(self, link_id: int, prefix: Prefix, kind: str) -> None:
        if self.damper is None:
            return
        suppressed = self.damper.record_flap((link_id, prefix), kind=kind)
        if suppressed:
            self.bus.record(
                "bgp.damping.suppress", self.name,
                prefix=str(prefix), link_id=link_id,
                penalty=round(self.damper.penalty_of((link_id, prefix)), 1),
            )

    def _on_damping_reuse(self, key) -> None:
        link_id, prefix = key
        self.bus.record(
            "bgp.damping.reuse", self.name,
            prefix=str(prefix), link_id=link_id,
        )
        self._run_decision(prefix)

    def _import_route(
        self, session: BGPSession, prefix: Prefix, attrs: PathAttributes
    ) -> Optional[PathAttributes]:
        """Loop check + import policy; None means reject."""
        if attrs.as_path.contains(self.asn):
            return None
        return session.policy.import_route(prefix, attrs)

    # ------------------------------------------------------------------
    # decision process + FIB + advertisement scheduling
    # ------------------------------------------------------------------
    def candidates(self, prefix: Prefix) -> List[Route]:
        """All usable candidate routes for one prefix."""
        if self._index is not None:
            return self._indexed_candidates(prefix)
        return self._scan_candidates(prefix)

    def _scan_candidates(self, prefix: Prefix) -> List[Route]:
        """Legacy candidate enumeration: probe every session's table.

        O(sessions) per call; also serves as the reference for
        :meth:`verify_decisions` because it cannot be wrong about what
        the tables hold.
        """
        routes: List[Route] = []
        local = self.originated.get(prefix)
        if local is not None:
            routes.append(Route(prefix=prefix, attrs=local, peer_asn=0,
                                peer_name=self.name))
        for session in self.sessions.values():
            if not session.established:
                continue
            if self.damper is not None and self.damper.is_suppressed(
                (session.link.link_id, prefix)
            ):
                continue
            route = self.adj_rib_in(session).get(prefix)
            if route is not None:
                routes.append(route)
        return routes

    def _indexed_candidates(self, prefix: Prefix) -> List[Route]:
        """Compact candidate enumeration via the prefix index.

        Yields exactly what :meth:`_scan_candidates` would: sessions are
        registered in link-creation order and link ids are globally
        monotone, so iterating the index entries in ascending link-id
        order reproduces the legacy session-scan order (and the winner
        is order-independent anyway — ``route_sort_key`` is a strict
        total order).
        """
        routes: List[Route] = []
        local = self.originated.get(prefix)
        if local is not None:
            routes.append(Route(prefix=prefix, attrs=local, peer_asn=0,
                                peer_name=self.name))
        entry = self._index.get(prefix)
        for link_id in sorted(entry):
            session = self.sessions.get(link_id)
            if session is None or not session.established:
                continue
            if self.damper is not None and self.damper.is_suppressed(
                (link_id, prefix)
            ):
                continue
            routes.append(entry[link_id])
        return routes

    def known_prefixes(self) -> List[Prefix]:
        """Every prefix this router holds any state for, sorted."""
        seen = set(self.loc_rib.prefixes())
        for rib in self._rib_in.values():
            seen.update(rib.prefixes())
        seen.update(self.originated)
        return sorted(seen)

    def verify_decisions(self) -> List[str]:
        """Differential oracle: compare Loc-RIB against a full rescan.

        Re-derives the best route for every known prefix with the
        legacy full-scan enumeration and reports any disagreement with
        the incrementally maintained Loc-RIB.  Empty list = identical.
        Valid in either mode (in legacy mode it is a self-check).
        """
        return verify_loc_rib(
            self.loc_rib,
            self._scan_candidates,
            self.known_prefixes(),
            self.decision_config,
        )

    def _run_decision(self, prefix: Prefix) -> None:
        self.decisions_run += 1
        best = best_route(self.candidates(prefix), self.decision_config)
        old = self.loc_rib.get(prefix)
        if best is None:
            if self.loc_rib.remove(prefix):
                self._on_best_changed(prefix, old, None)
        else:
            if self.loc_rib.set_best(best):
                self._on_best_changed(prefix, old, best)

    def _on_best_changed(
        self, prefix: Prefix, old: Optional[Route], new: Optional[Route]
    ) -> None:
        self.bus.record_lazy(
            "bgp.decision", self.name,
            lambda: {
                "prefix": str(prefix),
                "old": str(old.attrs.as_path) if old else None,
                "new": str(new.attrs.as_path) if new else None,
            },
        )
        # Provenance: the FIB change and the advertisements this decision
        # schedules are consequences of the decision span just recorded.
        with last_span_activation(self.bus.obs):
            self._install_fib(prefix, new)
            for session in self.sessions.values():
                session.schedule_route(prefix)

    def _install_fib(self, prefix: Prefix, route: Optional[Route]) -> None:
        if route is None:
            if self.fib.remove(prefix):
                self.bus.record_lazy(
                    "fib.change", self.name,
                    lambda: {"prefix": str(prefix), "via": None},
                )
            return
        if route.is_local:
            entry = FibEntry(prefix, None, via="local", source="bgp.local")
        else:
            session = self._session_for_peer(route)
            if session is None:
                return
            entry = FibEntry(
                prefix, session.link, via=route.peer_name, source="bgp",
            )
        if self.fib.install(entry):
            self.bus.record_lazy(
                "fib.change", self.name,
                lambda: {"prefix": str(prefix), "via": entry.via},
            )

    def _session_for_peer(self, route: Route) -> Optional[BGPSession]:
        for session in self.sessions.values():
            if (
                session.established
                and session.peer_asn == route.peer_asn
                and session.peer_name == route.peer_name
            ):
                return session
        return None

    # ------------------------------------------------------------------
    # outbound route generation (called by sessions at send time)
    # ------------------------------------------------------------------
    def outbound_diff(
        self, session: BGPSession, prefix: Prefix
    ) -> Optional[Tuple[str, Optional[PathAttributes]]]:
        """What this session must send about ``prefix`` right now."""
        attrs = self._export_attrs(session, prefix)
        return self.adj_rib_out(session).diff(prefix, attrs)

    def _export_attrs(
        self, session: BGPSession, prefix: Prefix
    ) -> Optional[PathAttributes]:
        best = self.loc_rib.get(prefix)
        if best is None:
            return None
        # Do not advertise a route back over the session it came from
        # (split horizon; the peer would loop-reject it anyway, this just
        # reduces message noise like most real implementations).
        if (
            not best.is_local
            and best.peer_asn == session.peer_asn
            and best.peer_name == session.peer_name
        ):
            return None
        exported = session.policy.export_route(prefix, best.attrs)
        if exported is None:
            return None
        exported = exported.with_path(exported.as_path.prepend(session.local_asn))
        # LOCAL_PREF is not carried across eBGP: reset to the default so
        # the receiver's import policy decides.
        from .attrs import DEFAULT_LOCAL_PREF

        return exported.with_local_pref(DEFAULT_LOCAL_PREF)

    # ------------------------------------------------------------------
    # diagnostics ("show ip bgp")
    # ------------------------------------------------------------------
    def rib_dump(self, prefix: Optional[Prefix] = None) -> List[str]:
        """Human-readable dump of candidates, best-first."""
        lines: List[str] = []
        prefixes: Iterable[Prefix]
        if prefix is not None:
            prefixes = [prefix]
        else:
            seen = set(self.loc_rib.prefixes())
            for rib in self._rib_in.values():
                seen.update(rib.prefixes())
            seen.update(self.originated)
            prefixes = sorted(seen)
        for pfx in prefixes:
            ranked = rank_routes(self.candidates(pfx), self.decision_config)
            for i, route in enumerate(ranked):
                marker = "*>" if i == 0 else "* "
                src = "local" if route.is_local else f"AS{route.peer_asn}"
                lines.append(
                    f"{marker} {pfx} via {src} path [{route.attrs.as_path}] "
                    f"lp={route.attrs.local_pref}"
                )
        return lines
