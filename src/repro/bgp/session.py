"""eBGP session: finite state machine, hold/keepalive, and MRAI pacing.

A session binds one local router to one peer over one point-to-point
link (the paper's one-router-per-AS abstraction).  The two behaviours
that matter for convergence dynamics live here:

- **MRAI** (MinRouteAdvertisementInterval, RFC 4271 §9.2.1.1): route
  changes toward a peer are batched; at most one UPDATE per (jittered)
  MRAI period goes out.  This is what serializes BGP path exploration and
  makes clique withdrawal convergence scale with the number of exploring
  ASes.  Per RFC default, withdrawals are *not* rate-limited (Quagga-like
  behaviour is available via ``BGPTimers.withdrawal_rate_limited``).
- **Fast fallover**: when the underlying link goes down the session
  drops immediately (Quagga's ``bgp fast-external-fallover``); otherwise
  failure is only detected when the hold timer expires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Set

from ..eventsim import PeriodicTimer, Timer
from ..net.addr import Prefix
from ..net.link import Link
from .messages import BGPKeepalive, BGPMessage, BGPNotification, BGPOpen, BGPUpdate
from .policy import PeerPolicy, transit_all_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .router import BGPRouter

__all__ = ["SessionState", "BGPTimers", "BGPSession"]


class SessionState(enum.Enum):
    IDLE = "idle"
    CONNECT = "connect"
    OPEN_SENT = "open_sent"
    OPEN_CONFIRM = "open_confirm"
    ESTABLISHED = "established"


@dataclass
class BGPTimers:
    """Timer/behaviour configuration for a speaker's sessions.

    Defaults follow common Quagga deployments; experiments override
    ``mrai`` and friends explicitly so results are self-describing.
    """

    mrai: float = 30.0
    #: RFC 4271 recommends jittering timers to 75-100% of nominal.
    mrai_jitter: float = 0.25
    withdrawal_rate_limited: bool = False
    connect_delay: float = 0.1
    reconnect_delay: float = 1.0
    hold_time: float = 90.0
    keepalive_interval: float = 30.0
    keepalives_enabled: bool = False
    fast_fallover: bool = True
    #: per-UPDATE processing delay range at the receiver (models CPU).
    proc_delay_min: float = 0.005
    proc_delay_max: float = 0.02
    #: output batching window: route changes arriving within this window
    #: of each other leave in ONE UPDATE (a real bgpd generates updates
    #: in periodic output runs, so near-simultaneous decision changes
    #: never burn separate MRAI rounds).
    output_delay: float = 0.01


class BGPSession:
    """One eBGP session over one link."""

    def __init__(
        self,
        router: "BGPRouter",
        link: Link,
        *,
        policy: Optional[PeerPolicy] = None,
        timers: Optional[BGPTimers] = None,
        local_asn: Optional[int] = None,
    ) -> None:
        self.router = router
        self.link = link
        #: AS number this end speaks as.  Normally the router's own ASN;
        #: the cluster BGP speaker overrides it per session so external
        #: peers see the cluster member's AS identity (paper §2).
        self.local_asn = local_asn if local_asn is not None else router.asn
        self.policy = policy if policy is not None else transit_all_policy()
        self.timers = timers if timers is not None else router.timers
        self.state = SessionState.IDLE
        #: peer's AS, learned from its OPEN (0 until then).
        self.peer_asn = 0
        self.peer_name = ""
        self.updates_sent = 0
        self.updates_received = 0
        sim = router.sim
        self._sim = sim
        self._mrai_timer = Timer(
            sim, self._on_mrai_expiry, label=f"{router.name}:mrai"
        )
        self._connect_timer = Timer(
            sim, self._send_open, label=f"{router.name}:connect"
        )
        # Hold expiry only matters when keepalives stop coming; it must
        # not hold up convergence detection, so it is background.
        self._hold_timer = Timer(
            sim, self._on_hold_expiry, background=True,
            label=f"{router.name}:hold",
        )
        self._keepalive_timer = PeriodicTimer(
            sim,
            self._send_keepalive,
            max(self.timers.keepalive_interval, 1e-3),
            background=True,
            label=f"{router.name}:keepalive",
            jitter=0.25 if self.timers.keepalive_interval > 0 else 0.0,
            jitter_rng=sim.rng("bgp.keepalive"),
        )
        self._dirty: Set[Prefix] = set()
        #: provenance of pending advertisements: prefix -> (context, time
        #: it first went dirty).  First cause wins; consumed at send time
        #: to parent the tx span and measure the pacing wait.
        self._pending_obs: dict = {}
        self._flush_event = None
        self._open_received = False

    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        """True in the ESTABLISHED state."""
        return self.state is SessionState.ESTABLISHED

    def __repr__(self) -> str:
        return (
            f"<BGPSession {self.router.name}->"
            f"{self.link.other(self.router).name} {self.state.value}>"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, delay: Optional[float] = None) -> None:
        """Begin connecting (Idle → Connect → OpenSent ...)."""
        if self.state is not SessionState.IDLE:
            return
        if not self.link.up:
            return
        self.state = SessionState.CONNECT
        self._open_received = False
        self._connect_timer.start(
            self.timers.connect_delay if delay is None else delay
        )

    def stop(self, *, notify_peer: bool = True, reason: str = "admin") -> None:
        """Tear the session down and flush per-peer state."""
        was_established = self.established
        if notify_peer and self.state is not SessionState.IDLE and self.link.up:
            self._send(BGPNotification(sender_asn=self.local_asn, code=reason))
        self._to_idle()
        if was_established:
            self.router.session_down(self, reason=reason)

    def reset(self, *, reason: str = "admin_reset") -> None:
        """Administratively bounce the session (``clear ip bgp neighbor``).

        Sends a NOTIFICATION so the peer drops its side too, then
        reconnects after ``reconnect_delay``; the peer reconnects on its
        own schedule when it processes the notification.
        """
        self.stop(notify_peer=True, reason=reason)
        self.start(delay=self.timers.reconnect_delay)

    def link_state_changed(self) -> None:
        """Called by the router when the session's link flips state."""
        if not self.link.up:
            if self.timers.fast_fallover:
                was_established = self.established
                self._to_idle()
                if was_established:
                    self.router.session_down(self, reason="link_down")
            # Without fast fallover, the hold timer (if keepalives are on)
            # or nothing at all detects the failure — as in real BGP.
            return
        # Link restored: reconnect after the configured delay.
        if self.state is SessionState.IDLE:
            self.start(delay=self.timers.reconnect_delay)

    def peer_unreachable(self) -> None:
        """Force the session down although our own link is up.

        Used by the cluster BGP speaker when a switch reports that the
        *physical* peering link failed: the speaker's relay link is
        healthy, so fast fallover cannot fire on it.
        """
        was_established = self.established
        self._to_idle()
        if was_established:
            self.router.session_down(self, reason="peer_unreachable")

    def peer_reachable(self) -> None:
        """Physical path restored; reconnect after the usual delay."""
        if self.state is SessionState.IDLE and self.link.up:
            self.start(delay=self.timers.reconnect_delay)

    def _to_idle(self) -> None:
        self.state = SessionState.IDLE
        self.peer_asn = 0
        self.peer_name = ""
        self._open_received = False
        self._dirty.clear()
        self._pending_obs.clear()
        if self._flush_event is not None:
            self._sim.cancel(self._flush_event)
            self._flush_event = None
        self._mrai_timer.stop()
        self._connect_timer.stop()
        self._hold_timer.stop()
        self._keepalive_timer.stop()

    # ------------------------------------------------------------------
    # FSM message handling
    # ------------------------------------------------------------------
    def handle_message(self, message: BGPMessage) -> None:
        """Control-plane dispatch for one delivered message."""
        if isinstance(message, BGPOpen):
            self._handle_open(message)
        elif isinstance(message, BGPKeepalive):
            self._handle_keepalive(message)
        elif isinstance(message, BGPUpdate):
            self._handle_update(message)
        elif isinstance(message, BGPNotification):
            self._handle_notification(message)

    def _send_open(self) -> None:
        if self.state not in (SessionState.CONNECT,):
            return
        if not self.link.up:
            self._to_idle()
            return
        self._send(
            BGPOpen(
                sender_asn=self.local_asn,
                router_id=self.router.name,
                hold_time=self.timers.hold_time,
            )
        )
        self.state = SessionState.OPEN_SENT
        if self._open_received:
            self._complete_open_exchange()

    def _handle_open(self, message: BGPOpen) -> None:
        if self.state is SessionState.IDLE:
            # Passive open: a configured session accepts the peer's OPEN
            # even before its own start() ran (RFC 4271's passive TCP
            # establishment), as long as the link is usable.
            if not self.link.up:
                return
            self.state = SessionState.CONNECT
        self.peer_asn = message.sender_asn
        self.peer_name = message.router_id
        self._open_received = True
        if self.state is SessionState.CONNECT:
            # Peer beat our connect timer; answer with our own OPEN now.
            self._connect_timer.stop()
            self._send(
                BGPOpen(
                    sender_asn=self.local_asn,
                    router_id=self.router.name,
                    hold_time=self.timers.hold_time,
                )
            )
            self.state = SessionState.OPEN_SENT
        if self.state is SessionState.OPEN_SENT:
            self._complete_open_exchange()

    def _complete_open_exchange(self) -> None:
        self._send(BGPKeepalive(sender_asn=self.local_asn))
        self.state = SessionState.OPEN_CONFIRM

    def _handle_keepalive(self, message: BGPKeepalive) -> None:
        if self.state is SessionState.OPEN_CONFIRM:
            self.state = SessionState.ESTABLISHED
            if self.timers.keepalives_enabled:
                self._keepalive_timer.start()
                self._hold_timer.start(self.timers.hold_time)
            self.router.session_up(self)
        elif self.established and self.timers.keepalives_enabled:
            self._hold_timer.start(self.timers.hold_time)

    def _handle_update(self, message: BGPUpdate) -> None:
        if not self.established:
            return
        self.updates_received += 1
        if self.timers.keepalives_enabled:
            self._hold_timer.start(self.timers.hold_time)
        self.router.enqueue_update(self, message)

    def _handle_notification(self, message: BGPNotification) -> None:
        was_established = self.established
        self._to_idle()
        if was_established:
            self.router.session_down(self, reason=f"notification:{message.code}")
        # Try again later, like a real speaker would.
        if self.link.up:
            self.start(delay=self.timers.reconnect_delay)

    def _on_hold_expiry(self) -> None:
        self.stop(notify_peer=False, reason="hold_timer")
        if self.link.up:
            self.start(delay=self.timers.reconnect_delay)

    def _send_keepalive(self) -> None:
        if self.established and self.link.up:
            self.link.transmit(
                self.router,
                BGPKeepalive(sender_asn=self.local_asn),
                background=True,
            )

    # ------------------------------------------------------------------
    # route advertisement with MRAI pacing
    # ------------------------------------------------------------------
    def schedule_route(self, prefix: Prefix) -> None:
        """Note that this peer may need an UPDATE about ``prefix``.

        The actual content is computed at send time by diffing Loc-RIB
        (through export policy) against Adj-RIB-Out, so intermediate flaps
        within one MRAI round collapse naturally.
        """
        if not self.established:
            return
        self._note_dirty(prefix)
        if not self._mrai_timer.running:
            self._request_flush()
            return
        if not self.timers.withdrawal_rate_limited:
            # RFC default: withdrawals escape the MRAI gate.
            action = self.router.outbound_diff(self, prefix)
            if action is not None and action[0] == "withdraw":
                self._dirty.discard(prefix)
                self._send_update(announced=(), withdrawn=(prefix,))
                self.router.adj_rib_out(self).mark_sent(prefix, None)

    def _note_dirty(self, prefix: Prefix) -> None:
        """Mark a prefix dirty, capturing the causal context that did it."""
        self._dirty.add(prefix)
        obs = self.router.bus.obs
        if obs is not None and prefix not in self._pending_obs:
            self._pending_obs[prefix] = (obs.current, self._sim.now)

    def resync(self) -> None:
        """Mark every Loc-RIB prefix (plus stale Adj-RIB-Out entries) dirty.

        Called on session establishment to send the initial full table.
        """
        if not self.established:
            return
        for prefix in self.router.loc_rib.prefixes():
            self._note_dirty(prefix)
        for prefix in self.router.adj_rib_out(self).prefixes():
            self._note_dirty(prefix)
        if not self._mrai_timer.running:
            self._request_flush()

    def _request_flush(self) -> None:
        """Schedule an output run shortly, coalescing concurrent changes."""
        if self._flush_event is not None and not self._flush_event.cancelled:
            return
        self._flush_event = self._sim.schedule(
            self.timers.output_delay,
            self._run_flush,
            label=f"{self.router.name}:flush",
        )

    def _run_flush(self) -> None:
        self._flush_event = None
        if self._dirty and not self._mrai_timer.running:
            self._flush()

    def _on_mrai_expiry(self) -> None:
        if self._dirty:
            self._flush()
        # If nothing was pending the timer simply stops: the next change
        # is sent immediately (RFC behaviour after a quiet interval).

    def _mrai_period(self) -> float:
        mrai = self.timers.mrai
        if mrai <= 0:
            return 0.0
        jitter = self.timers.mrai_jitter
        if jitter <= 0:
            return mrai
        rng = self._sim.rng("bgp.mrai")
        return rng.uniform(mrai * (1.0 - jitter), mrai)

    def _flush(self) -> None:
        """Send one UPDATE covering all dirty prefixes, then re-arm MRAI."""
        dirty, self._dirty = self._dirty, set()
        announced = []
        withdrawn = []
        rib_out = self.router.adj_rib_out(self)
        for prefix in sorted(dirty):
            action = self.router.outbound_diff(self, prefix)
            if action is None:
                continue
            verb, attrs = action
            if verb == "announce":
                announced.append((prefix, attrs))
                rib_out.mark_sent(prefix, attrs)
            else:
                withdrawn.append(prefix)
                rib_out.mark_sent(prefix, None)
        if announced or withdrawn:
            self._send_update(tuple(announced), tuple(withdrawn))
        period = self._mrai_period()
        if period > 0 and (announced or withdrawn):
            self._mrai_timer.start(period)

    def _send_update(self, announced, withdrawn) -> None:
        update = BGPUpdate(
            sender_asn=self.local_asn,
            announced=tuple(announced),
            withdrawn=tuple(withdrawn),
        )
        self.updates_sent += 1
        obs = self.router.bus.obs
        if obs is None:
            self._record_tx(update)
            self._send(update)
            return
        # Provenance: parent the tx span under the earliest cause that
        # dirtied any prefix this UPDATE covers (deterministic tie-break
        # by span id), stretch it back to that dirty instant, and make
        # it current while transmitting so the message carries it.
        pending = []
        for prefix, _attrs in update.announced:
            entry = self._pending_obs.pop(prefix, None)
            if entry is not None:
                pending.append(entry)
        for prefix in update.withdrawn:
            entry = self._pending_obs.pop(prefix, None)
            if entry is not None:
                pending.append(entry)
        if pending:
            ctx, t_dirty = min(
                pending,
                key=lambda e: (e[1], e[0][1] if e[0] is not None else -1),
            )
            wait = self._sim.now - t_dirty
        else:
            ctx, t_dirty, wait = obs.current, self._sim.now, 0.0
        prev = obs.swap(ctx)
        try:
            self._record_tx(update)
            obs.annotate_last(t_start=t_dirty, mrai_wait=wait)
            obs.swap(obs.last_ctx)
            self._send(update)
        finally:
            obs.swap(prev)

    def _record_tx(self, update: BGPUpdate) -> None:
        # Lazy payload: stringifying every announced path is the single
        # most expensive emit in the framework, and traced-off runs
        # never look at it.
        self.router.bus.record_lazy(
            "bgp.update.tx",
            self.router.name,
            lambda: {
                "peer": self.link.other(self.router).name,
                "announced": [
                    (str(p), str(a.as_path)) for p, a in update.announced
                ],
                "withdrawn": [str(p) for p in update.withdrawn],
                "update_id": update.update_id,
            },
        )

    def _send(self, message: BGPMessage) -> None:
        if self.link.up:
            self.link.transmit(self.router, message)
