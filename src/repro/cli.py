"""Command-line interface: run the paper's experiments from a shell.

Usage (also ``python -m repro --help``)::

    python -m repro fig2 --n 16 --runs 10
    python -m repro failover --runs 5
    python -m repro announcement --runs 5
    python -m repro subcluster
    python -m repro topologies --runs 3
    python -m repro demo --n 8 --sdn 5,6,7,8
    python -m repro dot --topology clique:8 --sdn 5,6,7,8

Every command prints the same rows/series the corresponding paper
artifact reports; the benchmarks under ``benchmarks/`` are the
pytest-integrated equivalents.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import ascii_boxplot_chart, topology_dot
from .experiments import (
    announcement_sweep,
    failover_sweep,
    flap_storm_sweep,
    paper_config,
    run_subcluster_experiment,
    sweep_to_csv,
    sweep_to_json,
    topology_family_sweep,
    withdrawal_sweep,
)
from .framework import Experiment, measure_event
from .topology import barabasi_albert, clique, line, ring, star

__all__ = ["main"]


def _parse_sdn(text: Optional[str]) -> set:
    if not text:
        return set()
    out = set()
    for part in text.split(","):
        part = part.strip()
        if "-" in part:
            lo, _, hi = part.partition("-")
            out.update(range(int(lo), int(hi) + 1))
        elif part:
            out.add(int(part))
    return out


def _parse_topology(text: str):
    kind, _, arg = text.partition(":")
    size = int(arg) if arg else 8
    builders = {
        "clique": clique,
        "line": line,
        "ring": ring,
        "star": star,
        "ba": lambda n: barabasi_albert(n, 2, seed=0),
    }
    if kind not in builders:
        raise SystemExit(
            f"unknown topology {kind!r}; choose from {sorted(builders)}"
        )
    return builders[kind](size)


def _print_sweep(result, title: str) -> None:
    print(title)
    print("-" * len(title))
    rows = []
    for point in result.points:
        s = point.stats
        print(
            f"  {point.sdn_count:2d}/{result.n_ases} SDN  "
            f"median {s.median:8.1f}s  q1 {s.q1:8.1f}  q3 {s.q3:8.1f}  "
            f"updates {point.median_updates:5.0f}"
        )
        rows.append((f"{point.sdn_count:2d}/{result.n_ases}", s))
    print()
    print(ascii_boxplot_chart(rows, unit="s"))
    fit = result.fit()
    print(
        f"\nlinear fit of medians: slope {fit.slope:.1f}s/fraction, "
        f"R^2 {fit.r_squared:.3f}; "
        f"reduction at max deployment {result.reduction_at_full():.0%}"
    )


def _export_sweep(result, args) -> None:
    if getattr(args, "csv", None):
        with open(args.csv, "w") as handle:
            handle.write(sweep_to_csv(result))
        print(f"\nwrote {args.csv}")
    if getattr(args, "json", None):
        with open(args.json, "w") as handle:
            handle.write(sweep_to_json(result))
        print(f"wrote {args.json}")


def cmd_fig2(args) -> int:
    result = withdrawal_sweep(
        n=args.n, runs=args.runs, mrai=args.mrai,
        recompute_delay=args.recompute_delay,
    )
    _print_sweep(result, f"Fig. 2 — withdrawal on a {args.n}-AS clique")
    _export_sweep(result, args)
    return 0


def cmd_failover(args) -> int:
    result = failover_sweep(
        n=args.n, runs=args.runs, mrai=args.mrai,
        recompute_delay=args.recompute_delay,
    )
    _print_sweep(result, f"§4 — fail-over (dual-homed origin, {args.n}-AS clique)")
    _export_sweep(result, args)
    return 0


def cmd_announcement(args) -> int:
    result = announcement_sweep(
        n=args.n, runs=args.runs, mrai=args.mrai,
        recompute_delay=args.recompute_delay,
    )
    _print_sweep(result, f"§4 — announcement ({args.n}-AS clique)")
    _export_sweep(result, args)
    return 0


def cmd_subcluster(args) -> int:
    result = run_subcluster_experiment(seed=args.seed)
    print("Sub-cluster split experiment (bar-bell cluster)")
    print(f"  sub-clusters before: {result.sub_clusters_before}")
    print(f"  sub-clusters after : {result.sub_clusters_after}")
    print(f"  reachable after    : {result.reachable_after}")
    print(f"  cross-cluster path : {' -> '.join(result.cross_path_after)}")
    print(f"  convergence        : "
          f"{result.measurement.convergence_time:.2f}s")
    return 0 if result.reachable_after else 1


def cmd_topologies(args) -> int:
    results = topology_family_sweep(n=args.n, runs=args.runs, mrai=args.mrai)
    print("Topology families — withdrawal, 0% vs 50% SDN")
    for r in results:
        print(
            f"  {r.family:>16}: pure {r.pure_bgp.median:7.1f}s  "
            f"hybrid {r.hybrid.median:7.1f}s  reduction {r.reduction:.0%}"
        )
    return 0


def cmd_flapstorm(args) -> int:
    results = flap_storm_sweep(
        n=args.n, sdn_count=args.n // 2, flaps=args.flaps,
        delays=tuple(args.delays), seed=args.seed,
    )
    print("Flap storm — controller churn vs recompute discipline")
    print(f"({args.flaps} flaps at 0.2s intervals, {args.n}-AS clique)")
    for r in results:
        mode = "extend " if r.extend_on_burst else "ratelim"
        print(
            f"  {mode} delay={r.recompute_delay:4.1f}s: "
            f"recomputes={r.recomputations:3d} flow-mods={r.flow_mods:3d} "
            f"settle-after={r.settle_after_storm:5.1f}s "
            f"ok={r.final_state_correct}"
        )
    return 0 if all(r.final_state_correct for r in results) else 1


def cmd_demo(args) -> int:
    sdn = _parse_sdn(args.sdn)
    exp = Experiment(
        clique(args.n), sdn_members=sdn,
        config=paper_config(seed=args.seed, mrai=args.mrai),
    ).start()
    prefix = exp.announce(1)
    exp.wait_converged()
    m = measure_event(exp, lambda: exp.withdraw(1, prefix))
    print(
        f"{args.n}-AS clique, SDN members {sorted(sdn) or 'none'}: "
        f"withdrawal converged in {m.convergence_time:.1f}s "
        f"({m.updates_tx} updates)"
    )
    return 0


def cmd_dot(args) -> int:
    topo = _parse_topology(args.topology)
    print(topology_dot(topo, sdn_members=sorted(_parse_sdn(args.sdn))))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid BGP-SDN emulation framework (SIGCOMM'14 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def sweep_args(p):
        p.add_argument("--n", type=int, default=16, help="clique size")
        p.add_argument("--runs", type=int, default=10, help="runs per point")
        p.add_argument("--mrai", type=float, default=30.0)
        p.add_argument("--recompute-delay", type=float, default=0.5)
        p.add_argument("--csv", type=str, default=None,
                       help="write per-run results as CSV")
        p.add_argument("--json", type=str, default=None,
                       help="write summary + runs as JSON")

    p = sub.add_parser("fig2", help="withdrawal sweep (paper Fig. 2)")
    sweep_args(p)
    p.set_defaults(func=cmd_fig2)

    p = sub.add_parser("failover", help="fail-over sweep (paper §4)")
    sweep_args(p)
    p.set_defaults(func=cmd_failover)

    p = sub.add_parser("announcement", help="announcement sweep (paper §4)")
    sweep_args(p)
    p.set_defaults(func=cmd_announcement)

    p = sub.add_parser("subcluster", help="sub-cluster split experiment")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_subcluster)

    p = sub.add_parser("topologies", help="topology-family comparison")
    p.add_argument("--n", type=int, default=16)
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--mrai", type=float, default=30.0)
    p.set_defaults(func=cmd_topologies)

    p = sub.add_parser("flapstorm", help="bursty-input controller ablation")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--flaps", type=int, default=10)
    p.add_argument("--delays", type=float, nargs="+", default=[0.1, 0.5, 2.0])
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_flapstorm)

    p = sub.add_parser("demo", help="one withdrawal run, custom SDN set")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--sdn", type=str, default="",
                   help="comma list / ranges, e.g. 5,6,7 or 5-8")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mrai", type=float, default=30.0)
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("dot", help="Graphviz export of a topology")
    p.add_argument("--topology", type=str, default="clique:8",
                   help="kind:size, e.g. clique:16, ba:20, ring:6")
    p.add_argument("--sdn", type=str, default="")
    p.set_defaults(func=cmd_dot)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
