"""Command-line interface: run the paper's experiments from a shell.

Usage (also ``python -m repro --help``)::

    python -m repro fig2 --n 16 --runs 10 --workers 4 --cache-dir .cache
    python -m repro failover --runs 5
    python -m repro announcement --runs 5
    python -m repro sweep --scenario withdrawal --workers 8
    python -m repro sweep --self-check
    python -m repro subcluster
    python -m repro topologies --runs 3
    python -m repro faults list
    python -m repro faults run --scenario gateway-outage --fault-seed 3
    python -m repro scenarios --suites gateway-outage,router-crash
    python -m repro demo --n 8 --sdn 5,6,7,8
    python -m repro trace run --n 16 --sdn-count 4 --chrome trace.json
    python -m repro trace report spans.jsonl --markdown report.md
    python -m repro trace export spans.jsonl -o trace.json
    python -m repro dot --topology clique:8 --sdn 5,6,7,8
    python -m repro fig2 --runs 2 --registry runs.sqlite --profile
    python -m repro runs list --registry runs.sqlite
    python -m repro runs diff 1 2 --sweeps
    python -m repro runs regressions
    python -m repro runs dashboard -o dashboard.html
    python -m repro cache stats --cache-dir .cache

Every sweep command accepts ``--workers/--cache-dir/--no-cache`` (see
``docs/runner.md``): parallel execution is bit-identical to serial, and
a warm cache re-runs only missing trials.  ``--trace-level`` bounds
per-run trace memory (``off`` keeps zero records), ``--metrics``
collects per-run metric snapshots, and a global ``--quiet`` silences
informational output (primary artifacts and warnings still print).

Every command prints the same rows/series the corresponding paper
artifact reports; the benchmarks under ``benchmarks/`` are the
pytest-integrated equivalents.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis import (
    ascii_boxplot_chart,
    provenance_markdown,
    provenance_report,
    topology_dot,
)
from .eventsim import format_snapshot
from .experiments import (
    AnnouncementScenario,
    FailoverScenario,
    WithdrawalScenario,
    announcement_sweep,
    failover_sweep,
    flap_storm_sweep,
    paper_config,
    run_fraction_sweep,
    run_subcluster_experiment,
    scenarios_sweep,
    sdn_counts_for_fractions,
    sweep_to_csv,
    sweep_to_json,
    topology_family_sweep,
    withdrawal_sweep,
)
from .experiments.common import run_scenario_full, sdn_set_for
from .obs import chrome_trace_json, spans_from_jsonl, spans_to_jsonl
from .obs.registry import DEFAULT_REGISTRY_PATH, REGISTRY_ENV, RunRegistry
from .faults import (
    FaultInjector,
    FaultSchedule,
    canned_names,
    get_canned,
)
from .framework import Experiment, measure_event
from .topology import barabasi_albert, clique, line, ring, star

__all__ = ["main", "Output"]

#: environment fallback for ``--cache-dir`` on every sweep command.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class Output:
    """The CLI's single output gate.

    Every command writes through one of these instead of calling
    ``print()`` directly, so ``--quiet`` has exactly one switch to
    flip: :meth:`info` lines vanish, :meth:`emit` lines (primary
    artifacts and warnings) always reach stdout.
    """

    def __init__(self, quiet: bool = False, stream=None) -> None:
        self.quiet = quiet
        self.stream = stream if stream is not None else sys.stdout

    def info(self, text: str = "") -> None:
        """Informational line; suppressed by ``--quiet``."""
        if not self.quiet:
            print(text, file=self.stream)

    def emit(self, text: str = "") -> None:
        """Primary artifact or warning; never suppressed."""
        print(text, file=self.stream)


def _ba8(n: int) -> object:
    # module-level (not a lambda): sweep factories must be picklable.
    return barabasi_albert(n, 2, seed=0)


def _parse_sdn(text: Optional[str]) -> set:
    if not text:
        return set()
    out = set()
    for part in text.split(","):
        part = part.strip()
        if "-" in part:
            lo, _, hi = part.partition("-")
            out.update(range(int(lo), int(hi) + 1))
        elif part:
            out.add(int(part))
    return out


def _parse_topology(text: str):
    kind, _, arg = text.partition(":")
    size = int(arg) if arg else 8
    builders = {
        "clique": clique,
        "line": line,
        "ring": ring,
        "star": star,
        "ba": _ba8,
    }
    if kind not in builders:
        raise SystemExit(
            f"unknown topology {kind!r}; choose from {sorted(builders)}"
        )
    return builders[kind](size)


def _print_sweep(result, title: str, out: Output) -> None:
    out.info(title)
    out.info("-" * len(title))
    rows = []
    for point in result.points:
        s = point.stats
        out.info(
            f"  {point.sdn_count:2d}/{result.n_ases} SDN  "
            f"median {s.median:8.1f}s  q1 {s.q1:8.1f}  q3 {s.q3:8.1f}  "
            f"updates {point.median_updates:5.0f}"
        )
        rows.append((f"{point.sdn_count:2d}/{result.n_ases}", s))
    out.info()
    out.info(ascii_boxplot_chart(rows, unit="s"))
    fit = result.fit()
    out.info(
        f"\nlinear fit of medians: slope {fit.slope:.1f}s/fraction, "
        f"R^2 {fit.r_squared:.3f}; "
        f"reduction at max deployment {result.reduction_at_full():.0%}"
    )


def _print_metrics(result, out: Output) -> None:
    """Merged metrics summary for sweeps launched with --metrics."""
    merged = result.merged_metrics()
    if merged is None:
        return
    out.info("\nmetrics (merged over all runs)")
    out.info(format_snapshot(merged))


def _print_anatomy(result, out: Output) -> None:
    """Per-fraction delay attribution for sweeps with --anatomy."""
    from .obs.anatomy import ANATOMY_CATEGORIES

    per_point = result.anatomy_by_fraction()
    if not any(per_point):
        return
    out.info("\ncritical-path delay attribution (median seconds per run)")
    header = "  sdn    " + "".join(
        f"{cat:>14}" for cat in ANATOMY_CATEGORIES
    ) + f"{'total':>14}"
    out.info(header)
    for point, agg in zip(result.points, per_point):
        if not agg:
            continue
        cells = "".join(
            f"{agg['categories'].get(cat, 0.0):14.3f}"
            for cat in ANATOMY_CATEGORIES
        )
        out.info(
            f"  {point.sdn_count:2d}/{result.n_ases}{cells}"
            f"{agg['total']:14.3f}"
        )


def _runner_kwargs(args) -> dict:
    """Map the shared --workers/--cache-dir/--no-cache/--progress flags
    onto the sweep functions' runner options."""
    cache = getattr(args, "cache_dir", None) or os.environ.get(CACHE_DIR_ENV)
    if getattr(args, "no_cache", False):
        cache = None
    registry = getattr(args, "registry", None) or os.environ.get(REGISTRY_ENV)
    return {
        "workers": getattr(args, "workers", 1),
        "cache": cache,
        "progress": "log" if getattr(args, "progress", False) else None,
        "trace_level": getattr(args, "trace_level", "full"),
        "metrics": getattr(args, "metrics", False),
        "profile": getattr(args, "profile", False),
        "registry": registry,
        "sample_hz": getattr(args, "sample_hz", 0.0),
        "anatomy": getattr(args, "anatomy", False),
    }


def _export_sweep(result, args, out: Output) -> None:
    if getattr(args, "csv", None):
        with open(args.csv, "w") as handle:
            handle.write(sweep_to_csv(result))
        out.info(f"\nwrote {args.csv}")
    if getattr(args, "json", None):
        with open(args.json, "w") as handle:
            handle.write(sweep_to_json(result))
        out.info(f"wrote {args.json}")


def cmd_fig2(args) -> int:
    result = withdrawal_sweep(
        n=args.n, runs=args.runs, mrai=args.mrai,
        recompute_delay=args.recompute_delay,
        **_runner_kwargs(args),
    )
    _print_sweep(result, f"Fig. 2 — withdrawal on a {args.n}-AS clique", args.out)
    _print_metrics(result, args.out)
    _print_anatomy(result, args.out)
    _export_sweep(result, args, args.out)
    return 0


def cmd_failover(args) -> int:
    result = failover_sweep(
        n=args.n, runs=args.runs, mrai=args.mrai,
        recompute_delay=args.recompute_delay,
        **_runner_kwargs(args),
    )
    _print_sweep(result, f"§4 — fail-over (dual-homed origin, {args.n}-AS clique)", args.out)
    _print_metrics(result, args.out)
    _print_anatomy(result, args.out)
    _export_sweep(result, args, args.out)
    return 0


def cmd_announcement(args) -> int:
    result = announcement_sweep(
        n=args.n, runs=args.runs, mrai=args.mrai,
        recompute_delay=args.recompute_delay,
        **_runner_kwargs(args),
    )
    _print_sweep(result, f"§4 — announcement ({args.n}-AS clique)", args.out)
    _print_metrics(result, args.out)
    _print_anatomy(result, args.out)
    _export_sweep(result, args, args.out)
    return 0


def cmd_subcluster(args) -> int:
    out = args.out
    result = run_subcluster_experiment(seed=args.seed)
    out.info("Sub-cluster split experiment (bar-bell cluster)")
    out.info(f"  sub-clusters before: {result.sub_clusters_before}")
    out.info(f"  sub-clusters after : {result.sub_clusters_after}")
    out.info(f"  reachable after    : {result.reachable_after}")
    out.info(f"  cross-cluster path : {' -> '.join(result.cross_path_after)}")
    out.info(f"  convergence        : "
             f"{result.measurement.convergence_time:.2f}s")
    return 0 if result.reachable_after else 1


def cmd_topologies(args) -> int:
    results = topology_family_sweep(
        n=args.n, runs=args.runs, mrai=args.mrai,
        workers=args.workers,
    )
    args.out.info("Topology families — withdrawal, 0% vs 50% SDN")
    for r in results:
        args.out.info(
            f"  {r.family:>16}: pure {r.pure_bgp.median:7.1f}s  "
            f"hybrid {r.hybrid.median:7.1f}s  reduction {r.reduction:.0%}"
        )
    return 0


def cmd_flapstorm(args) -> int:
    results = flap_storm_sweep(
        n=args.n, sdn_count=args.n // 2, flaps=args.flaps,
        delays=tuple(args.delays), seed=args.seed,
    )
    args.out.info("Flap storm — controller churn vs recompute discipline")
    args.out.info(f"({args.flaps} flaps at 0.2s intervals, {args.n}-AS clique)")
    for r in results:
        mode = "extend " if r.extend_on_burst else "ratelim"
        args.out.info(
            f"  {mode} delay={r.recompute_delay:4.1f}s: "
            f"recomputes={r.recomputations:3d} flow-mods={r.flow_mods:3d} "
            f"settle-after={r.settle_after_storm:5.1f}s "
            f"ok={r.final_state_correct}"
        )
    return 0 if all(r.final_state_correct for r in results) else 1


#: name -> sweep function for the generic ``sweep`` command.
SWEEPS = {
    "withdrawal": withdrawal_sweep,
    "failover": failover_sweep,
    "announcement": announcement_sweep,
}


def _self_check(args) -> int:
    """Run one tiny clique sweep serially and in parallel and assert the
    per-run convergence times are identical — the runner's determinism
    guarantee, checked on this very machine."""
    # clamp to a tiny grid: this checks the machinery, not the paper.
    n = min(args.n, 6)
    runs = min(args.runs, 3)
    kwargs = dict(
        n=n, sdn_counts=[0, n // 2, n - 1], runs=runs, mrai=1.0,
    )
    out = args.out
    workers = max(2, args.workers)
    out.info(
        f"runner self-check: withdrawal on a {n}-AS clique, "
        f"{runs} runs/point, serial vs {workers} workers"
    )
    serial = run_fraction_sweep(WithdrawalScenario, **kwargs, workers=1)
    parallel = run_fraction_sweep(
        WithdrawalScenario, **kwargs, workers=workers,
    )
    serial_times = [
        (r.sdn_count, r.seed, r.convergence_time)
        for p in serial.points for r in p.runs
    ]
    parallel_times = [
        (r.sdn_count, r.seed, r.convergence_time)
        for p in parallel.points for r in p.runs
    ]
    if serial.failed_runs or parallel.failed_runs:
        out.emit("FAIL: some runs did not complete")
        return 1
    for s, q in zip(serial_times, parallel_times):
        marker = "ok" if s == q else "MISMATCH"
        out.info(
            f"  sdn={s[0]:2d} seed={s[1]:5d}  "
            f"serial {s[2]:.6f}s  parallel {q[2]:.6f}s  {marker}"
        )
    if serial_times != parallel_times:
        out.emit("FAIL: parallel execution changed the results")
        return 1
    out.info(
        f"PASS: {len(serial_times)} runs bit-identical across "
        f"serial and parallel execution"
    )
    return 0


def cmd_sweep(args) -> int:
    if args.self_check:
        return _self_check(args)
    sweep = SWEEPS[args.scenario]
    result = sweep(
        n=args.n, runs=args.runs, mrai=args.mrai,
        recompute_delay=args.recompute_delay,
        **_runner_kwargs(args),
    )
    out = args.out
    _print_sweep(result, f"{args.scenario} sweep ({args.n}-AS clique)", out)
    _print_metrics(result, out)
    _print_anatomy(result, out)
    if result.failed_runs:
        out.emit(f"\nWARNING: {len(result.failed_runs)} run(s) failed:")
        for failure in result.failed_runs:
            first_line = failure.error.strip().splitlines()[-1]
            out.emit(
                f"  sdn={failure.sdn_count} seed={failure.seed} "
                f"after {failure.attempts} attempt(s): {first_line}"
            )
    if result.timing is not None:
        t = result.timing
        out.info(
            f"\nexecuted {t.executed}/{t.jobs} trials "
            f"({t.cached} cached, {t.failed} failed) in {t.elapsed:.1f}s "
            f"with {t.workers} worker(s); "
            f"job time {t.total_job_wall:.1f}s (speedup {t.speedup:.2f}x)"
        )
    _export_sweep(result, args, out)
    return 0 if not result.failed_runs else 1


def _parse_fractions(text: str) -> List[float]:
    try:
        fractions = [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"bad --fractions value {text!r} (want e.g. 0,0.5,1)")
    if not fractions or any(not 0.0 <= f <= 1.0 for f in fractions):
        raise SystemExit("--fractions must be values in [0, 1]")
    return fractions


def cmd_faults_list(args) -> int:
    out = args.out
    out.emit("canned fault scenarios")
    out.emit("----------------------")
    for name in canned_names():
        canned = get_canned(name)
        schedule = canned.schedule(0)
        out.emit(
            f"  {name:20s} {len(schedule)} event(s), "
            f"reserved AS {','.join(map(str, canned.reserved))}: "
            f"{canned.summary}"
        )
        if args.verbose:
            for event in schedule:
                out.emit(f"      {event.describe()}")
    return 0


def cmd_faults_run(args) -> int:
    out = args.out
    if args.spec:
        with open(args.spec) as handle:
            schedule = FaultSchedule.from_spec(handle.read())
        schedule.fault_seed = args.fault_seed
        reserved: frozenset = frozenset()
        origins = tuple(sorted(_parse_sdn(args.origins))) or (1,)
        title = f"fault spec {args.spec}"
    else:
        canned = get_canned(args.scenario)
        schedule = canned.schedule(args.fault_seed)
        reserved = frozenset(canned.reserved)
        origins = canned.origins
        title = f"fault scenario {args.scenario!r}"
    fractions = _parse_fractions(args.fractions)
    out.info(
        f"{title} on a {args.n}-AS clique "
        f"(fault-seed {args.fault_seed}, seed {args.seed}, "
        f"mrai {args.mrai:g}s)"
    )
    all_ok = True
    for fraction in fractions:
        sdn_count = min(round(fraction * args.n), args.n - len(reserved))
        topo = clique(args.n)
        members = sdn_set_for(topo, sdn_count, reserved)
        exp = Experiment(
            topo, sdn_members=members,
            config=paper_config(
                seed=args.seed, mrai=args.mrai,
                recompute_delay=args.recompute_delay,
            ),
        ).start()
        for asn in origins:
            exp.announce(asn, exp.as_prefix(asn))
        exp.wait_converged()
        injector = FaultInjector(
            exp, schedule, check_invariants=not args.no_invariants
        )
        result = injector.run()
        out.info(
            f"\nSDN fraction {fraction:.2f} ({sdn_count}/{args.n} converted)"
        )
        for report in result.reports:
            if report.skipped:
                out.info(
                    f"  #{report.index} {report.kind:20s} "
                    f"t={report.t_fired:8.3f}  skipped"
                )
                continue
            m = report.measurement
            conv = f"{m.convergence_time:7.3f}s" if m else "      ?"
            state = f"{m.state_convergence_time:7.3f}s" if m else "      ?"
            tx = f"{m.updates_tx:4d}" if m else "   ?"
            out.info(
                f"  #{report.index} {report.kind:20s} "
                f"t={report.t_fired:8.3f}  conv={conv}  state={state}  "
                f"updates={tx}"
            )
        status = "PASS" if result.ok else f"FAIL ({len(result.violations)})"
        out.emit(
            f"  invariants: {status}  "
            f"settled t={result.t_end:.3f}  "
            f"trace digest {result.trace_digest[:16]}"
        )
        for violation in result.violations:
            out.emit(f"    {violation}")
        all_ok = all_ok and result.ok
    out.emit(f"\n{'PASS' if all_ok else 'FAIL'}: {title}, "
             f"{len(fractions)} fraction(s)")
    return 0 if all_ok else 1


def cmd_scenarios(args) -> int:
    out = args.out
    fractions = _parse_fractions(args.fractions)
    suites = args.suites.split(",") if args.suites else None
    if suites:
        for suite in suites:
            get_canned(suite)  # fail fast on typos
    results = scenarios_sweep(
        n=args.n, suites=suites, fractions=fractions, runs=args.runs,
        fault_seed=args.fault_seed, mrai=args.mrai,
        recompute_delay=args.recompute_delay,
        **{
            k: v for k, v in _runner_kwargs(args).items()
            if k not in (
                "metrics", "profile", "registry", "sample_hz", "anatomy"
            )
        },
    )
    out.info(
        f"Fault suites vs SDN deployment ({args.n}-AS clique, "
        f"{args.runs} runs/point, whole-suite convergence time)"
    )
    failures = 0
    for suite, result in results.items():
        out.info(f"\n{suite}")
        for point in result.points:
            s = point.stats
            out.info(
                f"  {point.sdn_count:2d}/{result.n_ases} SDN  "
                f"median {s.median:8.2f}s  q1 {s.q1:8.2f}  q3 {s.q3:8.2f}"
            )
        for failure in result.failed_runs:
            failures += 1
            first_line = failure.error.strip().splitlines()[-1]
            out.emit(
                f"  FAILED sdn={failure.sdn_count} seed={failure.seed}: "
                f"{first_line}"
            )
    out.emit(
        f"\n{'PASS' if failures == 0 else 'FAIL'}: "
        f"{len(results)} suite(s), {failures} failed run(s)"
    )
    return 0 if failures == 0 else 1


def cmd_demo(args) -> int:
    out = args.out
    sdn = _parse_sdn(args.sdn)
    exp = Experiment(
        clique(args.n), sdn_members=sdn,
        config=paper_config(
            seed=args.seed, mrai=args.mrai,
            trace_level=args.trace_level, metrics=args.metrics,
        ),
    ).start()
    prefix = exp.announce(1)
    exp.wait_converged()
    m = measure_event(exp, lambda: exp.withdraw(1, prefix))
    out.info(
        f"{args.n}-AS clique, SDN members {sorted(sdn) or 'none'}: "
        f"withdrawal converged in {m.convergence_time:.1f}s "
        f"({m.updates_tx} updates)"
    )
    snapshot = exp.metrics_snapshot()
    if snapshot is not None:
        out.info("\nmetrics")
        out.info(format_snapshot(snapshot))
    return 0


#: scenario classes the ``trace run`` command can instrument.
TRACE_SCENARIOS = {
    "withdrawal": WithdrawalScenario,
    "failover": FailoverScenario,
    "announcement": AnnouncementScenario,
}


def _export_spans(spans, args, out: Output, *, root_id=None) -> None:
    """Shared --jsonl/--chrome/--markdown export flags."""
    if getattr(args, "jsonl", None):
        with open(args.jsonl, "w") as handle:
            handle.write(spans_to_jsonl(spans))
        out.info(f"wrote {args.jsonl} ({len(spans)} spans)")
    if getattr(args, "chrome", None):
        with open(args.chrome, "w") as handle:
            handle.write(chrome_trace_json(spans))
        out.info(
            f"wrote {args.chrome} (Chrome trace-event JSON; open in "
            "Perfetto or chrome://tracing)"
        )
    if getattr(args, "markdown", None):
        with open(args.markdown, "w") as handle:
            handle.write(
                provenance_markdown(
                    spans, root_id=root_id,
                    max_timeline=getattr(args, "timeline", 20),
                )
            )
        out.info(f"wrote {args.markdown}")


def cmd_trace_run(args) -> int:
    out = args.out
    scenario = TRACE_SCENARIOS[args.scenario]()
    topology = scenario.topology(args.n, clique)
    sdn_count = min(
        args.sdn_count, len(topology) - len(scenario.reserved_legacy)
    )
    members = sdn_set_for(topology, sdn_count, scenario.reserved_legacy)
    config = paper_config(
        seed=args.seed, mrai=args.mrai,
        recompute_delay=args.recompute_delay, spans=True,
    )
    out.info(
        f"tracing {args.scenario} on a {len(topology)}-AS topology "
        f"({sdn_count} SDN, seed {args.seed}, mrai {args.mrai:g}s)"
    )
    measurement, _, spans = run_scenario_full(
        scenario, topology, members, config
    )
    root_id = measurement.extra.get("event_root_span")
    out.info(
        f"converged in {measurement.convergence_time:.3f}s "
        f"({measurement.updates_tx} updates); {len(spans)} spans\n"
    )
    out.emit(
        provenance_report(spans, root_id=root_id, max_timeline=args.timeline)
    )
    _export_spans(spans, args, out, root_id=root_id)
    return 0


def _load_spans(path: str) -> list:
    with open(path) as handle:
        return [span.to_dict() for span in spans_from_jsonl(handle.read())]


def cmd_trace_report(args) -> int:
    spans = _load_spans(args.spans)
    args.out.emit(
        provenance_report(
            spans, root_id=args.root, max_timeline=args.timeline
        )
    )
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(
                provenance_markdown(
                    spans, root_id=args.root, max_timeline=args.timeline
                )
            )
        args.out.info(f"\nwrote {args.markdown}")
    return 0


def cmd_trace_export(args) -> int:
    spans = _load_spans(args.spans)
    text = chrome_trace_json(spans, indent=1 if args.pretty else None)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        args.out.info(
            f"wrote {args.output} ({len(spans)} spans; open in Perfetto "
            "or chrome://tracing)"
        )
    else:
        args.out.emit(text)
    return 0


def cmd_trace_anatomy(args) -> int:
    """Per-AS convergence waterfall of a captured span file."""
    from .analysis.report import anatomy_of_spans
    from .obs.anatomy import anatomy_json, anatomy_markdown, anatomy_report
    from .obs.anatomy import check_anatomy

    out = args.out
    spans = _load_spans(args.spans)
    anatomy = anatomy_of_spans(spans, root_id=args.root)
    out.emit(anatomy_report(anatomy, node=args.node))
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(anatomy_markdown(anatomy))
        out.info(f"\nwrote {args.markdown}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(anatomy_json(anatomy))
        out.info(f"wrote {args.json}")
    if args.check:
        problems = check_anatomy(anatomy.to_dict())
        if problems:
            out.emit("\nFAIL: attribution does not reconcile")
            for problem in problems:
                out.emit(f"  {problem}")
            return 1
        out.emit(
            "\nPASS: every per-AS attribution sums bit-exactly to its "
            "convergence instant"
        )
    return 0


def cmd_dot(args) -> int:
    topo = _parse_topology(args.topology)
    args.out.emit(topology_dot(topo, sdn_members=sorted(_parse_sdn(args.sdn))))
    return 0


# ----------------------------------------------------------------------
# runs: the cross-run telemetry registry (docs/telemetry.md)
# ----------------------------------------------------------------------
def _registry_path(args) -> str:
    return (
        getattr(args, "registry", None)
        or os.environ.get(REGISTRY_ENV)
        or DEFAULT_REGISTRY_PATH
    )


def _open_registry(args) -> RunRegistry:
    path = _registry_path(args)
    if path != ":memory:" and not os.path.exists(path):
        raise SystemExit(
            f"no registry at {path!r}; record one with --registry on a "
            f"sweep command (or set ${REGISTRY_ENV})"
        )
    return RunRegistry(path)


def cmd_runs_list(args) -> int:
    out = args.out
    with _open_registry(args) as registry:
        if args.sweeps:
            out.emit(
                f"{'sweep':>5}  {'recorded_at':20}  {'scenario':<22} "
                f"{'jobs':>4} {'cached':>6} {'failed':>6} {'elapsed':>8}  rev"
            )
            for sweep in registry.sweeps(
                scenario=args.scenario, limit=args.limit, newest_first=True
            ):
                elapsed = (
                    f"{sweep.elapsed:8.2f}" if sweep.elapsed is not None
                    else f"{'-':>8}"
                )
                out.emit(
                    f"{sweep.sweep_id:>5}  {sweep.recorded_at:20}  "
                    f"{sweep.scenario:<22} {sweep.jobs or 0:>4} "
                    f"{sweep.cached or 0:>6} {sweep.failed or 0:>6} "
                    f"{elapsed}  {sweep.git_rev}"
                )
            return 0
        out.emit(
            f"{'run':>5} {'sweep':>5}  {'recorded_at':20}  {'digest':12}  "
            f"{'label':<28} {'ok':>2} {'wall':>8} {'cached':>6}  rev"
        )
        for run in registry.runs(
            digest=args.digest, scenario=args.scenario,
            limit=args.limit, newest_first=True,
        ):
            out.emit(
                f"{run.run_id:>5} {run.sweep_id or '-':>5}  "
                f"{run.recorded_at:20}  {run.spec_digest[:12]:12}  "
                f"{run.label:<28} {'y' if run.ok else 'N':>2} "
                f"{run.wall_time:8.3f} {'hit' if run.cached else '-':>6}  "
                f"{run.git_rev}"
            )
        counts = registry.counts()
    out.info(
        f"\n{counts['runs']} run(s) ({counts['failed']} failed), "
        f"{counts['sweeps']} sweep(s), {counts['digests']} distinct "
        f"spec digest(s) in {_registry_path(args)}"
    )
    return 0


def cmd_runs_show(args) -> int:
    out = args.out
    with _open_registry(args) as registry:
        run = registry.run(args.run_id)
        if run is None:
            out.emit(f"no run {args.run_id} in {_registry_path(args)}")
            return 1
        out.emit(f"run {run.run_id} — {run.label}")
        out.emit(f"  recorded      {run.recorded_at}")
        out.emit(f"  spec digest   {run.spec_digest}")
        out.emit(
            f"  scenario      {run.scenario} (n={run.n}, "
            f"sdn={run.sdn_count}, seed={run.seed})"
        )
        out.emit(
            f"  code          {run.code_version}"
            + (f" @ {run.git_rev}" if run.git_rev else "")
        )
        status = "ok" if run.ok else f"FAILED: {run.error}"
        out.emit(f"  status        {status}")
        out.emit(
            f"  execution     {run.wall_time:.3f}s on "
            f"{run.worker or '?'} "
            f"({'cache hit' if run.cached else f'{run.attempts} attempt(s)'})"
        )
        if run.measurement:
            out.emit("  measurement")
            for key in sorted(run.measurement):
                out.emit(f"    {key:22} {run.measurement[key]}")
        if run.instants:
            instants = ", ".join(
                f"AS{node}@{t:g}s" for node, t in sorted(
                    run.instants.items(), key=lambda kv: (kv[1], kv[0])
                )
            )
            out.emit(f"  convergence instants ({len(run.instants)} ASes)")
            out.emit(f"    {instants}")
        if run.span_count is not None:
            out.emit(f"  spans         {run.span_count}")
        if run.fault_count is not None:
            out.emit(f"  faults        {run.fault_count}")
        if run.anatomy:
            categories = run.anatomy.get("categories", {})
            critical = run.anatomy.get("critical_node")
            depth = run.anatomy.get("critical_depth")
            out.emit(
                f"  anatomy       critical AS {critical} "
                f"(causal depth {depth})"
            )
            for key in sorted(categories):
                out.emit(f"    {key:22} {categories[key]:.3f}s")
        elif run.span_count:
            out.emit(
                "  anatomy       not recorded (pre-schema-3 row; "
                "re-run to attribute its convergence delay)"
            )
        if run.ok and not run.resources:
            out.emit(
                "  resources     not recorded (pre-schema-2 row; "
                "re-run to account cpu/rss/gc)"
            )
        if run.resources:
            out.emit("  resources")
            labels = {
                "cpu_user_s": ("cpu user", "{:.3f}s"),
                "cpu_sys_s": ("cpu sys", "{:.3f}s"),
                "max_rss_kb": ("peak rss", "{:.0f} KB"),
                "gc_collections": ("gc collections", "{:.0f}"),
                "gc_pause_s": ("gc pause", "{:.4f}s"),
                "events_processed": ("events", "{:.0f}"),
                "events_per_s": ("events/s", "{:.1f}"),
            }
            for key, (label, fmt) in labels.items():
                value = run.resources.get(key)
                if value is not None:
                    out.emit(f"    {label:22} {fmt.format(value)}")
        if run.sample_stacks:
            from .obs.sampler import top_frames

            total = sum(run.sample_stacks.values())
            out.emit(
                f"  hottest sampled frames ({total} stack sample(s))"
            )
            for frame, count, share in top_frames(
                run.sample_stacks, top=args.top
            ):
                out.emit(f"    {share:6.1%}  {count:>6}  {frame}")
        if run.profile:
            out.emit("  hottest functions (cumulative seconds)")
            for row in run.profile[: args.top]:
                out.emit(
                    f"    {row['cumtime']:9.4f}  {row['ncalls']:>7}  "
                    f"{row['func']}"
                )
    return 0


def _print_run_diff(diff, out: Output, *, verbose: bool) -> None:
    if not diff.same_digest:
        out.emit(
            f"  runs {diff.run_a} and {diff.run_b} have different spec "
            f"digests ({diff.digest_a[:12]} vs {diff.digest_b[:12]}); "
            "deterministic fields are not comparable"
        )
    det = diff.deterministic_mismatches
    for field_diff in det:
        out.emit(
            f"  DRIFT {field_diff.name}: {field_diff.a!r} vs {field_diff.b!r}"
        )
    _print_anatomy_deltas(diff, out)
    for field_diff in diff.timing_mismatches:
        out.info(
            f"  timing {field_diff.name}: {field_diff.a:.3f} vs "
            f"{field_diff.b:.3f} ({field_diff.rel_error:.0%} apart — "
            "informational, wall clocks vary)"
        )
    if verbose:
        for field_diff in diff.fields:
            if field_diff.ok:
                out.info(f"  ok    {field_diff.name}: {field_diff.a!r}")


def _print_anatomy_deltas(diff, out: Output) -> None:
    """Causal-attribution section of ``runs diff``.

    When both rows carry anatomy, every per-category delay is already a
    compared deterministic field; this reprints them side by side so a
    drift reads as "the extra 4.2s is MRAI wait", not just a mismatch.
    """
    rows = [
        f for f in diff.fields
        if f.name.startswith("anatomy.")
        and f.name != "anatomy.critical_depth"
        and isinstance(f.a, (int, float)) and isinstance(f.b, (int, float))
    ]
    if not rows:
        return
    out.info("  causal attribution (critical-path seconds, a vs b)")
    for field_diff in rows:
        category = field_diff.name[len("anatomy."):]
        delta = field_diff.b - field_diff.a
        marker = "  " if field_diff.ok else "!!"
        out.info(
            f"    {marker} {category:16} {field_diff.a:10.3f}  "
            f"{field_diff.b:10.3f}  ({delta:+.3f})"
        )


def cmd_runs_diff(args) -> int:
    from .obs.trends import diff_runs, diff_sweeps

    out = args.out
    with _open_registry(args) as registry:
        if args.sweeps:
            diff = diff_sweeps(
                registry, args.a, args.b, timing_tolerance=args.tolerance
            )
            out.info(
                f"sweep {args.a} vs sweep {args.b}: "
                f"{len(diff.pairs)} digest-matched pair(s)"
            )
            for digest in diff.only_in_a:
                out.emit(f"  only in sweep {args.a}: {digest[:12]}")
            for digest in diff.only_in_b:
                out.emit(f"  only in sweep {args.b}: {digest[:12]}")
            bad_pairs = [p for p in diff.pairs if not p.ok]
            for pair in bad_pairs:
                out.emit(f"  runs {pair.run_a} vs {pair.run_b}:")
                _print_run_diff(pair, out, verbose=args.verbose)
            ok = diff.ok
        else:
            run_a, run_b = registry.run(args.a), registry.run(args.b)
            missing = [
                str(i) for i, r in ((args.a, run_a), (args.b, run_b))
                if r is None
            ]
            if missing:
                out.emit(f"no run(s) {', '.join(missing)} in the registry")
                return 1
            diff = diff_runs(run_a, run_b, timing_tolerance=args.tolerance)
            _print_run_diff(diff, out, verbose=args.verbose)
            ok = diff.ok
    out.emit(
        "PASS: deterministic fields identical" if ok
        else "FAIL: deterministic fields drifted (or digests differ)"
    )
    return 0 if ok else 1


def cmd_runs_gc(args) -> int:
    with _open_registry(args) as registry:
        if args.dry_run:
            plan = registry.gc_plan(
                keep_last=args.keep_last, drop_failed=args.drop_failed
            )
            counts = registry.counts()
            args.out.emit(
                f"would delete {len(plan)} of {counts['runs']} run row(s) "
                f"across {counts['digests']} digest(s)"
            )
            for run_id in plan:
                row = registry.run(run_id)
                if row is None:
                    continue
                status = "ok" if row.ok else "FAILED"
                args.out.emit(
                    f"  run {run_id}: {row.scenario} "
                    f"digest={row.spec_digest[:12]} {status} "
                    f"recorded {row.recorded_at}"
                )
            return 0
        deleted = registry.gc(
            keep_last=args.keep_last, drop_failed=args.drop_failed
        )
        counts = registry.counts()
    args.out.emit(
        f"deleted {deleted} run row(s); {counts['runs']} run(s) across "
        f"{counts['digests']} digest(s) remain"
    )
    return 0


def cmd_serve(args) -> int:
    from .service import ServiceConfig, run_service

    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV)
    if args.no_cache:
        cache_dir = None
    registry = (
        args.registry
        or os.environ.get(REGISTRY_ENV)
        or DEFAULT_REGISTRY_PATH
    )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        cache_dir=cache_dir,
        registry_path=registry,
        concurrency=args.concurrency,
        max_queue=args.max_queue,
        quota=args.quota,
    )

    def announce(host: str, port: int) -> None:
        # Always emitted (and flushed): the smoke harness parses this
        # line to learn the ephemeral port when started with --port 0.
        args.out.emit(f"serving on http://{host}:{port}")
        args.out.stream.flush()
        args.out.info(
            f"cache: {cache_dir or 'off'}; registry: {registry}; "
            f"workers: {args.concurrency}; queue: {args.max_queue}; "
            f"quota: {args.quota}/client"
        )

    run_service(config, announce=announce)
    return 0


def _service_client(args):
    from .service import ServiceClient

    return ServiceClient(
        args.host, args.port,
        client_id=args.client_id, timeout=args.timeout,
    )


def _load_payload(source: str) -> dict:
    import json as _json

    text = sys.stdin.read() if source == "-" else None
    if text is None:
        if os.path.exists(source):
            with open(source) as handle:
                text = handle.read()
        else:
            text = source  # inline JSON
    try:
        return _json.loads(text)
    except ValueError as exc:
        raise SystemExit(f"payload is not valid JSON: {exc}")


def _watch_job(client, digest: str, out: Output) -> dict:
    def on_event(name, payload):
        if name == "job_started":
            out.info(f"[{digest[:12]}] started: {payload.get('label', '')}")
        elif name == "job_finished":
            record = payload.get("record", {})
            status = "ok" if record.get("ok") else "failed"
            if record.get("cached"):
                status = "cached"
            out.info(f"[{digest[:12]}] finished: {status}")

    return client.watch(digest, on_event=on_event)


def cmd_client_submit(args) -> int:
    import json as _json

    from .service import ServiceClientError

    client = _service_client(args)
    payload = _load_payload(args.payload)
    if "spec" not in payload and "grid" not in payload:
        payload = {"spec": payload}
    try:
        jobs = client.submit(payload)
    except ServiceClientError as exc:
        args.out.emit(f"submission rejected: {exc}")
        if exc.retry_after is not None:
            args.out.emit(f"retry after {exc.retry_after:.0f}s")
        if exc.detail:
            for line in exc.detail:
                args.out.emit(f"  - {line}")
        return 1
    for job in jobs:
        args.out.emit(f"{job['digest']}  {job['state']}  {job['label']}")
    if not args.watch:
        return 0
    failed = 0
    for job in jobs:
        final = _watch_job(client, job["digest"], args.out)
        record = final.get("record", {})
        if not record.get("ok"):
            failed += 1
        args.out.emit(
            _json.dumps(
                {"digest": job["digest"], **record}, sort_keys=True
            )
        )
    return 1 if failed else 0


def cmd_client_status(args) -> int:
    import json as _json

    args.out.emit(
        _json.dumps(_service_client(args).status(args.digest), sort_keys=True)
    )
    return 0


def cmd_client_result(args) -> int:
    body = _service_client(args).result_bytes(args.digest)
    args.out.stream.write(body.decode("utf-8"))
    return 0


def cmd_client_watch(args) -> int:
    import json as _json

    client = _service_client(args)
    final = _watch_job(client, args.digest, args.out)
    args.out.emit(_json.dumps(final, sort_keys=True))
    record = final.get("record", {})
    return 0 if record.get("ok") else 1


def cmd_client_cancel(args) -> int:
    import json as _json

    args.out.emit(
        _json.dumps(_service_client(args).cancel(args.digest), sort_keys=True)
    )
    return 0


def _report_gate(args, out: Output) -> int:
    """--against-baseline mode: the old compare_baselines.py gate."""
    from .obs.trends import compare_report_dirs

    names, failures = compare_report_dirs(
        args.against_baseline, args.candidate, args.tolerance,
        require=args.require,
    )
    if not names:
        out.emit(f"no *.txt reports under {args.against_baseline}")
        return 1
    for name in names:
        status = "FAIL" if name in failures else "ok"
        out.emit(f"{status:>4}  {name}")
        for problem in failures.get(name, []):
            out.emit(f"        {problem}")
    for name in failures:
        if name not in names:
            out.emit(f"FAIL  {name}")
            for problem in failures[name]:
                out.emit(f"        {problem}")
    if failures:
        out.emit(f"\n{len(failures)} report(s) failed the gate")
        return 1
    out.emit(f"\nall {len(names)} report(s) within tolerance")
    return 0


def cmd_runs_regressions(args) -> int:
    out = args.out
    if args.against_baseline:
        if not args.candidate:
            raise SystemExit("--against-baseline requires --candidate DIR")
        return _report_gate(args, out)
    from .obs.trends import detect_regressions

    with _open_registry(args) as registry:
        regressions = detect_regressions(
            registry,
            last=args.last,
            min_history=args.min_history,
            mad_sigma=args.mad_sigma,
            min_rel=args.min_rel,
            min_abs=args.min_abs,
        )
        digests = len(registry.digests())
    if not regressions:
        out.emit(
            f"PASS: no regressions across {digests} spec digest(s) "
            f"in {_registry_path(args)}"
        )
        return 0
    out.emit(f"FAIL: {len(regressions)} regression(s) flagged:")
    for regression in regressions:
        out.emit(f"  {regression.describe()}")
    return 1


def cmd_runs_dashboard(args) -> int:
    from .obs.dashboard import render_dashboard

    with _open_registry(args) as registry:
        html = render_dashboard(
            registry, title=args.title, last_sweeps=args.last_sweeps
        )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(html)
        args.out.info(
            f"wrote {args.output} ({len(html)} bytes, self-contained — "
            "open in any browser)"
        )
    else:
        args.out.emit(html)
    return 0


# ----------------------------------------------------------------------
# cache: result-cache introspection and maintenance
# ----------------------------------------------------------------------
def _open_cache(args):
    from .runner import ResultCache

    cache_dir = getattr(args, "cache_dir", None) or os.environ.get(
        CACHE_DIR_ENV
    )
    if not cache_dir:
        raise SystemExit(
            f"no cache directory: pass --cache-dir or set ${CACHE_DIR_ENV}"
        )
    return ResultCache(cache_dir)


def cmd_cache_stats(args) -> int:
    cache = _open_cache(args)
    stats = cache.stats()
    out = args.out
    out.emit(f"result cache {cache.directory}")
    out.emit(f"  entries   {stats.entries}")
    out.emit(f"  size      {stats.total_bytes} bytes")
    out.emit(f"  code      {cache.code_version}")
    return 0


def cmd_cache_prune(args) -> int:
    cache = _open_cache(args)
    before = cache.stats()
    removed = cache.prune()
    after = cache.stats()
    args.out.emit(
        f"pruned {removed} stale entr{'y' if removed == 1 else 'ies'} "
        f"({before.entries} -> {after.entries}, "
        f"{before.total_bytes - after.total_bytes} bytes reclaimed)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid BGP-SDN emulation framework (SIGCOMM'14 repro)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress informational output (artifacts and warnings "
             "still print; exit codes carry pass/fail)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def sweep_args(p):
        p.add_argument("--n", type=int, default=16, help="clique size")
        p.add_argument("--runs", type=int, default=10, help="runs per point")
        p.add_argument("--mrai", type=float, default=30.0)
        p.add_argument("--recompute-delay", type=float, default=0.5)
        p.add_argument("--csv", type=str, default=None,
                       help="write per-run results as CSV")
        p.add_argument("--json", type=str, default=None,
                       help="write summary + runs as JSON")
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = serial; results are "
                            "identical at any count)")
        p.add_argument("--cache-dir", type=str, default=None,
                       help="result-cache directory (also via "
                            f"${CACHE_DIR_ENV}); re-runs only execute "
                            "missing trials")
        p.add_argument("--no-cache", action="store_true",
                       help="ignore any result cache for this run")
        p.add_argument("--progress", action="store_true",
                       help="log one line per trial to stderr")
        p.add_argument("--trace-level", choices=["full", "route", "off"],
                       default="full",
                       help="per-run trace retention: full trace, "
                            "route-affecting only, or none (streaming "
                            "measurement still sees everything)")
        p.add_argument("--metrics", action="store_true",
                       help="collect per-run metric snapshots and print "
                            "a merged summary")
        p.add_argument("--profile", action="store_true",
                       help="wrap each trial in cProfile and keep its "
                            "hot-function table (see runs show)")
        p.add_argument("--registry", type=str, default=None,
                       help="record every trial into this SQLite telemetry "
                            f"registry (also via ${REGISTRY_ENV}; "
                            "inspect with the runs subcommands)")
        p.add_argument("--sample-hz", type=float, default=0.0,
                       help="attach a sampling profiler to every trial at "
                            "this frequency (0 = off; collapsed stacks "
                            "land in the registry and runs show)")
        p.add_argument("--anatomy", action="store_true",
                       help="keep spans and attribute every trial's "
                            "convergence delay to its critical causal "
                            "path (per-category summary prints after "
                            "the sweep; does not change spec digests)")

    p = sub.add_parser("fig2", help="withdrawal sweep (paper Fig. 2)")
    sweep_args(p)
    p.set_defaults(func=cmd_fig2)

    p = sub.add_parser("failover", help="fail-over sweep (paper §4)")
    sweep_args(p)
    p.set_defaults(func=cmd_failover)

    p = sub.add_parser("announcement", help="announcement sweep (paper §4)")
    sweep_args(p)
    p.set_defaults(func=cmd_announcement)

    p = sub.add_parser(
        "sweep",
        help="generic parallel sweep runner (and --self-check)",
    )
    p.add_argument("--scenario", choices=sorted(SWEEPS), default="withdrawal")
    p.add_argument(
        "--self-check", action="store_true",
        help="run a tiny clique sweep serially and in parallel and "
             "assert identical per-run convergence times",
    )
    sweep_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("subcluster", help="sub-cluster split experiment")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_subcluster)

    p = sub.add_parser("topologies", help="topology-family comparison")
    p.add_argument("--n", type=int, default=16)
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--mrai", type=float, default=30.0)
    p.add_argument("--workers", type=int, default=1)
    p.set_defaults(func=cmd_topologies)

    p = sub.add_parser("flapstorm", help="bursty-input controller ablation")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--flaps", type=int, default=10)
    p.add_argument("--delays", type=float, nargs="+", default=[0.1, 0.5, 2.0])
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_flapstorm)

    p = sub.add_parser(
        "faults", help="fault-injection scenarios with invariant checking"
    )
    fsub = p.add_subparsers(dest="faults_command", required=True)

    fp = fsub.add_parser("list", help="list the canned fault scenarios")
    fp.add_argument("-v", "--verbose", action="store_true",
                    help="also show each scenario's event schedule")
    fp.set_defaults(func=cmd_faults_list)

    fp = fsub.add_parser(
        "run",
        help="run one fault scenario across SDN fractions, "
             "checking invariants",
    )
    fp.add_argument("--scenario", choices=canned_names(),
                    default="gateway-outage")
    fp.add_argument("--spec", type=str, default=None,
                    help="JSON fault-schedule file (overrides --scenario)")
    fp.add_argument("--origins", type=str, default="1",
                    help="with --spec: ASes that announce their /24 "
                         "before the faults start (comma list / ranges)")
    fp.add_argument("--n", type=int, default=16, help="clique size")
    fp.add_argument("--fractions", type=str, default="0,0.5,1",
                    help="SDN deployment fractions to compare")
    fp.add_argument("--fault-seed", type=int, default=0,
                    help="seed for fault timing jitter; same schedule + "
                         "seed reproduces the identical trace")
    fp.add_argument("--seed", type=int, default=1,
                    help="experiment base seed")
    fp.add_argument("--mrai", type=float, default=5.0)
    fp.add_argument("--recompute-delay", type=float, default=0.5)
    fp.add_argument("--no-invariants", action="store_true",
                    help="skip invariant checking (timing only)")
    fp.set_defaults(func=cmd_faults_run)

    p = sub.add_parser(
        "scenarios",
        help="fault-suite sweep: canned suites vs SDN fraction",
    )
    p.add_argument("--suites", type=str, default="",
                   help="comma list of canned suites (default: all)")
    p.add_argument("--fractions", type=str, default="0,0.5,1")
    p.add_argument("--fault-seed", type=int, default=0)
    sweep_args(p)
    p.set_defaults(func=cmd_scenarios, mrai=5.0, runs=3)

    p = sub.add_parser("demo", help="one withdrawal run, custom SDN set")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--sdn", type=str, default="",
                   help="comma list / ranges, e.g. 5,6,7 or 5-8")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mrai", type=float, default=30.0)
    p.add_argument("--trace-level", choices=["full", "route", "off"],
                   default="full")
    p.add_argument("--metrics", action="store_true",
                   help="print the run's metrics snapshot")
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser(
        "trace",
        help="causal provenance tracing: traced runs, reports, exports",
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)

    tp = tsub.add_parser(
        "run",
        help="run one scenario with spans on and print its causal report",
    )
    tp.add_argument("--scenario", choices=sorted(TRACE_SCENARIOS),
                    default="withdrawal")
    tp.add_argument("--n", type=int, default=16, help="clique size")
    tp.add_argument("--sdn-count", type=int, default=0,
                    help="ASes converted to SDN (highest ASNs first)")
    tp.add_argument("--seed", type=int, default=0)
    tp.add_argument("--mrai", type=float, default=30.0)
    tp.add_argument("--recompute-delay", type=float, default=0.5)
    tp.add_argument("--timeline", type=int, default=20,
                    help="causal-timeline rows to show")
    tp.add_argument("--jsonl", type=str, default=None,
                    help="write the run's spans as JSONL")
    tp.add_argument("--chrome", type=str, default=None,
                    help="write Chrome trace-event JSON (open in "
                         "Perfetto or chrome://tracing)")
    tp.add_argument("--markdown", type=str, default=None,
                    help="write a Markdown run report")
    tp.set_defaults(func=cmd_trace_run)

    tp = tsub.add_parser(
        "report", help="causal report from a saved JSONL span file"
    )
    tp.add_argument("spans", help="JSONL span file (trace run --jsonl)")
    tp.add_argument("--root", type=int, default=None,
                    help="root span id (default: largest causal tree)")
    tp.add_argument("--timeline", type=int, default=20)
    tp.add_argument("--markdown", type=str, default=None,
                    help="also write the report as Markdown")
    tp.set_defaults(func=cmd_trace_report)

    tp = tsub.add_parser(
        "export",
        help="convert a JSONL span file to Chrome trace-event JSON",
    )
    tp.add_argument("spans", help="JSONL span file (trace run --jsonl)")
    tp.add_argument("-o", "--output", type=str, default=None,
                    help="output path (default: stdout)")
    tp.add_argument("--pretty", action="store_true",
                    help="indent the JSON output")
    tp.set_defaults(func=cmd_trace_export)

    tp = tsub.add_parser(
        "anatomy",
        help="per-AS convergence waterfall: attribute every delay on "
             "the critical causal path to its mechanism",
    )
    tp.add_argument("spans", help="JSONL span file (trace run --jsonl)")
    tp.add_argument("--root", type=int, default=None,
                    help="root span id (default: largest causal tree)")
    tp.add_argument("--node", type=str, default=None,
                    help="AS whose waterfall to expand (default: the "
                         "last-converging AS)")
    tp.add_argument("--markdown", type=str, default=None,
                    help="write the waterfall as Markdown")
    tp.add_argument("--json", type=str, default=None,
                    help="write the attribution payload as JSON")
    tp.add_argument("--check", action="store_true",
                    help="verify every per-AS attribution sums "
                         "bit-exactly to its convergence instant "
                         "(exit 1 otherwise)")
    tp.set_defaults(func=cmd_trace_anatomy)

    p = sub.add_parser("dot", help="Graphviz export of a topology")
    p.add_argument("--topology", type=str, default="clique:8",
                   help="kind:size, e.g. clique:16, ba:20, ring:6")
    p.add_argument("--sdn", type=str, default="")
    p.set_defaults(func=cmd_dot)

    p = sub.add_parser(
        "runs",
        help="cross-run telemetry registry: list, diff, gate, dashboard",
    )
    rsub = p.add_subparsers(dest="runs_command", required=True)

    def registry_arg(rp):
        rp.add_argument(
            "--registry", type=str, default=None,
            help="registry path (default: "
                 f"${REGISTRY_ENV} or {DEFAULT_REGISTRY_PATH})",
        )

    rp = rsub.add_parser("list", help="recorded runs (or --sweeps), newest first")
    registry_arg(rp)
    rp.add_argument("--sweeps", action="store_true",
                    help="list sweep aggregates instead of runs")
    rp.add_argument("--scenario", type=str, default=None)
    rp.add_argument("--digest", type=str, default=None,
                    help="only runs of this spec digest")
    rp.add_argument("--limit", type=int, default=30)
    rp.set_defaults(func=cmd_runs_list)

    rp = rsub.add_parser("show", help="everything recorded about one run")
    registry_arg(rp)
    rp.add_argument("run_id", type=int)
    rp.add_argument("--top", type=int, default=10,
                    help="profile rows to show (for --profile runs)")
    rp.set_defaults(func=cmd_runs_show)

    rp = rsub.add_parser(
        "diff",
        help="compare two runs (or --sweeps): deterministic fields must "
             "match exactly, timing gets a tolerance band",
    )
    registry_arg(rp)
    rp.add_argument("a", type=int, help="run id (or sweep id with --sweeps)")
    rp.add_argument("b", type=int)
    rp.add_argument("--sweeps", action="store_true",
                    help="treat A and B as sweep ids and diff every "
                         "digest-matched run pair")
    rp.add_argument("--tolerance", type=float, default=0.5,
                    help="relative wall-time band (informational)")
    rp.add_argument("-v", "--verbose", action="store_true",
                    help="also list the fields that matched")
    rp.set_defaults(func=cmd_runs_diff)

    rp = rsub.add_parser(
        "regressions",
        help="gate the newest run of every digest against its history "
             "(or --against-baseline: report-dir tolerance gate)",
    )
    registry_arg(rp)
    rp.add_argument("--last", type=int, default=10,
                    help="history window per spec digest")
    rp.add_argument("--min-history", type=int, default=3,
                    help="non-cached runs needed before wall-time gating")
    rp.add_argument("--mad-sigma", type=float, default=4.0,
                    help="robust sigmas of MAD above the median")
    rp.add_argument("--min-rel", type=float, default=0.25,
                    help="minimum relative headroom above the median")
    rp.add_argument("--min-abs", type=float, default=0.005,
                    help="minimum absolute headroom in seconds")
    rp.add_argument("--against-baseline", type=str, default=None,
                    metavar="DIR",
                    help="compare *.txt benchmark reports in DIR against "
                         "--candidate instead of using the registry")
    rp.add_argument("--candidate", type=str, default=None, metavar="DIR",
                    help="candidate report directory for --against-baseline")
    rp.add_argument("--tolerance", type=float, default=0.5,
                    help="relative error band for --against-baseline")
    rp.add_argument("--require", nargs="*", default=[],
                    help="report names that must exist in the baseline")
    rp.set_defaults(func=cmd_runs_regressions)

    rp = rsub.add_parser(
        "dashboard", help="render the registry as one static HTML page"
    )
    registry_arg(rp)
    rp.add_argument("-o", "--output", type=str, default=None,
                    help="output path (default: stdout)")
    rp.add_argument("--title", type=str, default="repro telemetry")
    rp.add_argument("--last-sweeps", type=int, default=20,
                    help="historical sweeps to chart")
    rp.set_defaults(func=cmd_runs_dashboard)

    rp = rsub.add_parser("gc", help="trim registry history per digest")
    registry_arg(rp)
    rp.add_argument("--keep-last", type=int, default=20,
                    help="newest runs to keep per spec digest")
    rp.add_argument("--drop-failed", action="store_true",
                    help="also delete every failed run")
    rp.add_argument("--dry-run", action="store_true",
                    help="delete nothing; list the runs that would go")
    rp.set_defaults(func=cmd_runs_gc)

    p = sub.add_parser(
        "serve",
        help="run the emulation service (HTTP control plane over the "
             "sweep runner; see docs/service.md)",
    )
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument("--port", type=int, default=8351,
                   help="listen port (0 picks an ephemeral port, "
                        "announced on stdout)")
    p.add_argument("--cache-dir", type=str, default=None,
                   help=f"result-cache directory (also via ${CACHE_DIR_ENV})")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without a result cache (every submission "
                        "executes)")
    p.add_argument("--registry", type=str, default=None,
                   help="telemetry registry every run records into "
                        f"(default: ${REGISTRY_ENV} or "
                        f"{DEFAULT_REGISTRY_PATH})")
    p.add_argument("--concurrency", type=int, default=1,
                   help="jobs executed at once (worker threads)")
    p.add_argument("--max-queue", type=int, default=64,
                   help="queued jobs before submissions get 429")
    p.add_argument("--quota", type=int, default=8,
                   help="active jobs allowed per client id")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "client",
        help="talk to a running service: submit, watch, fetch results",
    )
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument("--port", type=int, default=8351)
    p.add_argument("--client-id", type=str, default="cli",
                   help="client identity for quota accounting "
                        "(X-Repro-Client header)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="per-request timeout in seconds")
    clsub = p.add_subparsers(dest="client_command", required=True)

    clp = clsub.add_parser(
        "submit",
        help="submit a spec/grid payload (file path, '-' for stdin, "
             "or inline JSON)",
    )
    clp.add_argument("payload",
                     help='e.g. \'{"scenario": "withdrawal", "n": 8, '
                          '"sdn_count": 4, "seed": 7}\'')
    clp.add_argument("--watch", action="store_true",
                     help="stream progress until every job finishes")
    clp.set_defaults(func=cmd_client_submit)

    clp = clsub.add_parser("status", help="one job's state")
    clp.add_argument("digest")
    clp.set_defaults(func=cmd_client_status)

    clp = clsub.add_parser(
        "result", help="a finished job's full result record (JSON)"
    )
    clp.add_argument("digest")
    clp.set_defaults(func=cmd_client_result)

    clp = clsub.add_parser(
        "watch", help="stream a job's SSE progress to completion"
    )
    clp.add_argument("digest")
    clp.set_defaults(func=cmd_client_watch)

    clp = clsub.add_parser("cancel", help="cancel a queued/running job")
    clp.add_argument("digest")
    clp.set_defaults(func=cmd_client_cancel)

    p = sub.add_parser(
        "cache", help="result-cache introspection and maintenance"
    )
    csub = p.add_subparsers(dest="cache_command", required=True)

    cp = csub.add_parser("stats", help="entry count and size of a cache")
    cp.add_argument("--cache-dir", type=str, default=None,
                    help=f"cache directory (also via ${CACHE_DIR_ENV})")
    cp.set_defaults(func=cmd_cache_stats)

    cp = csub.add_parser(
        "prune",
        help="drop corrupt entries and entries from other code versions",
    )
    cp.add_argument("--cache-dir", type=str, default=None,
                    help=f"cache directory (also via ${CACHE_DIR_ENV})")
    cp.set_defaults(func=cmd_cache_prune)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    args.out = Output(quiet=args.quiet)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
