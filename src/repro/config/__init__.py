"""Configuration management: address allocation, config rendering, and
JSON spec ingestion for the service API."""

from .allocator import AllocationError, PrefixAllocator
from .templates import render_bgpd_conf, render_exabgp_conf, render_route_map

# Spec ingestion resolves scenario/topology names against
# repro.experiments, which imports repro.framework, which imports this
# package — so specio must load lazily (PEP 562) to stay cycle-free.
_LAZY = {
    "SpecIngestError": ".specio",
    "runspec_from_json": ".specio",
    "grid_from_json": ".specio",
    "specs_from_json": ".specio",
    "spec_payload": ".specio",
    "scenario_names": ".specio",
    "topology_names": ".specio",
}


def __getattr__(name):
    if name in _LAZY:
        from importlib import import_module

        value = getattr(import_module(_LAZY[name], __name__), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "AllocationError",
    "PrefixAllocator",
    "render_bgpd_conf",
    "render_exabgp_conf",
    "render_route_map",
    "SpecIngestError",
    "runspec_from_json",
    "grid_from_json",
    "specs_from_json",
    "spec_payload",
    "scenario_names",
    "topology_names",
]
