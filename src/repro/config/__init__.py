"""Configuration management: address allocation and config rendering."""

from .allocator import AllocationError, PrefixAllocator
from .templates import render_bgpd_conf, render_exabgp_conf, render_route_map

__all__ = [
    "AllocationError",
    "PrefixAllocator",
    "render_bgpd_conf",
    "render_exabgp_conf",
    "render_route_map",
]
