"""Automatic IP address and prefix assignment (paper §2-3).

"The framework automatically assigns IP addresses and configures network
devices."  Assignment plan:

- every AS gets one /24 *AS prefix* out of ``10.0.0.0/8``, derived from
  its ASN's allocation index (deterministic, collision-free);
- every inter-device link gets a /30 *transfer net* out of
  ``172.16.0.0/12``, with ``.1``/``.2`` to the two endpoints;
- hosts get consecutive addresses inside their AS prefix, starting after
  the router's loopback (which takes the first host address).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..net.addr import AddressError, IPv4Address, Prefix

__all__ = ["PrefixAllocator", "AllocationError"]

AS_POOL = Prefix.parse("10.0.0.0/8")
LINK_POOL = Prefix.parse("172.16.0.0/12")
AS_PREFIX_LEN = 24
LINK_PREFIX_LEN = 30


class AllocationError(RuntimeError):
    """Pool exhausted or conflicting assignment."""


class PrefixAllocator:
    """Deterministic address plan for one experiment."""

    def __init__(self) -> None:
        self._as_prefix: Dict[int, Prefix] = {}
        self._as_index: Dict[int, int] = {}
        self._next_as_index = 0
        self._next_link_index = 0
        self._host_count: Dict[int, int] = {}
        self._max_as = AS_POOL.num_addresses // (1 << (32 - AS_PREFIX_LEN))
        self._max_links = LINK_POOL.num_addresses // (1 << (32 - LINK_PREFIX_LEN))

    # ------------------------------------------------------------------
    def as_prefix(self, asn: int) -> Prefix:
        """The /24 owned by AS ``asn`` (allocated on first request)."""
        if asn in self._as_prefix:
            return self._as_prefix[asn]
        if self._next_as_index >= self._max_as:
            raise AllocationError(f"AS prefix pool exhausted at AS{asn}")
        index = self._next_as_index
        self._next_as_index += 1
        network = AS_POOL.network + (index << (32 - AS_PREFIX_LEN))
        prefix = Prefix(network, AS_PREFIX_LEN)
        self._as_prefix[asn] = prefix
        self._as_index[asn] = index
        self._host_count[asn] = 0
        return prefix

    def router_address(self, asn: int) -> IPv4Address:
        """The AS router's loopback-style address (first host of the /24)."""
        return self.as_prefix(asn).host(0)

    def host_address(self, asn: int) -> IPv4Address:
        """Next free host address inside the AS prefix."""
        prefix = self.as_prefix(asn)
        self._host_count[asn] += 1
        index = self._host_count[asn]  # 0 is the router
        try:
            return prefix.host(index)
        except AddressError:
            raise AllocationError(f"host pool of AS{asn} exhausted") from None

    def link_net(self) -> Tuple[Prefix, IPv4Address, IPv4Address]:
        """Allocate the next /30 transfer net: (prefix, addr_a, addr_b)."""
        if self._next_link_index >= self._max_links:
            raise AllocationError("link pool exhausted")
        index = self._next_link_index
        self._next_link_index += 1
        network = LINK_POOL.network + (index << (32 - LINK_PREFIX_LEN))
        prefix = Prefix(network, LINK_PREFIX_LEN)
        return prefix, prefix.host(0), prefix.host(1)

    # ------------------------------------------------------------------
    def allocations(self) -> Dict[int, Prefix]:
        """Snapshot of all AS prefix assignments."""
        return dict(self._as_prefix)

    def owner_of(self, address: IPv4Address):
        """ASN owning ``address`` through its AS prefix, or None."""
        for asn, prefix in self._as_prefix.items():
            if address in prefix:
                return asn
        return None
