"""JSON ingestion of sweep trials: RunSpec and sweep-grid payloads.

The service API (``docs/service.md``), CLI clients and spec files all
speak the same JSON dialect; this module is the single hardened gateway
that turns untrusted payloads into
:class:`~repro.runner.jobs.RunSpec` objects.  Scenario and topology
factories are referenced *by name* against a closed registry — a
payload can never name an arbitrary import path — and every unknown,
malformed or mistyped field is collected and reported precisely in one
:class:`SpecIngestError` instead of surfacing as a deep exception from
the dataclass layer, so an HTTP front end can turn any bad payload
into one clean 400.

Two payload shapes are understood:

- a **spec**: one trial (``runspec_from_json``), mirroring every
  digest-relevant :class:`RunSpec` field;
- a **grid**: a Fig. 2-style fraction sweep (``grid_from_json``) that
  expands to the exact spec list
  :func:`~repro.experiments.common.run_fraction_sweep` would build —
  same seed formula, same labels, same digests.

:func:`specs_from_json` accepts either (``{"spec": {...}}``,
``{"grid": {...}}``, or a bare spec object) and always returns a list.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "SpecIngestError",
    "scenario_names",
    "topology_names",
    "runspec_from_json",
    "grid_from_json",
    "specs_from_json",
    "spec_payload",
]

#: hard ceiling on how many trials one grid payload may expand to.
MAX_GRID_SPECS = 4096

_TRACE_LEVELS = ("full", "route", "off")

_SCHEDULERS = ("heap", "calendar")


class SpecIngestError(ValueError):
    """A spec/grid payload that failed validation.

    ``errors`` lists every problem found (field name first), so callers
    can report the full shape of what is wrong in one round trip.
    """

    def __init__(self, errors) -> None:
        self.errors = [str(e) for e in errors]
        super().__init__("; ".join(self.errors))


def _ba(n: int):
    """Barabasi-Albert topology (m=2, fixed attachment seed) by name."""
    from ..topology import barabasi_albert

    return barabasi_albert(n, 2, seed=0)


# Registries are built lazily: repro.experiments imports repro.framework
# which imports repro.config, so eager imports here would be circular.
def _scenario_registry() -> Dict[str, Callable]:
    from ..experiments import (
        AnnouncementScenario,
        FailoverScenario,
        WithdrawalScenario,
    )

    return {
        "withdrawal": WithdrawalScenario,
        "failover": FailoverScenario,
        "announcement": AnnouncementScenario,
    }


def _topology_registry() -> Dict[str, Callable]:
    from ..topology import caida_hierarchy, clique, line, ring, star

    return {
        "clique": clique,
        "line": line,
        "ring": ring,
        "star": star,
        "ba": _ba,
        "caida": caida_hierarchy,
    }


def scenario_names() -> List[str]:
    """The scenario names a payload may reference."""
    return sorted(_scenario_registry())


def topology_names() -> List[str]:
    """The topology names a payload may reference."""
    return sorted(_topology_registry())


def _show(value: Any) -> str:
    """Short, type-first description of a bad value for error messages."""
    text = repr(value)
    if len(text) > 40:
        text = text[:37] + "..."
    return f"{type(value).__name__} {text}"


class _Fields:
    """Typed field extraction over one payload dict, collecting errors.

    Every getter returns the (validated) value or the default, *never*
    raises — problems accumulate in ``errors`` so a payload with three
    mistakes produces three messages, not one arbitrary first failure.
    """

    def __init__(self, data: Dict[str, Any]) -> None:
        self.data = data
        self.errors: List[str] = []

    def error(self, message: str) -> None:
        self.errors.append(message)

    def reject_unknown(self, known) -> None:
        for name in sorted(set(self.data) - set(known)):
            self.error(
                f"unknown field {name!r} (known fields: "
                f"{', '.join(sorted(known))})"
            )

    def _missing(self, name: str, default, required: bool):
        if required:
            self.error(f"field {name!r} is required")
        return default

    def int_(
        self,
        name: str,
        default: Optional[int] = None,
        *,
        required: bool = False,
        minimum: Optional[int] = None,
    ) -> Optional[int]:
        if name not in self.data:
            return self._missing(name, default, required)
        value = self.data[name]
        if isinstance(value, bool) or not isinstance(value, int):
            self.error(f"field {name!r}: expected an integer, got {_show(value)}")
            return default
        if minimum is not None and value < minimum:
            self.error(f"field {name!r}: must be >= {minimum}, got {value}")
            return default
        return value

    def number(
        self,
        name: str,
        default: Optional[float] = None,
        *,
        required: bool = False,
        minimum: Optional[float] = None,
        allow_none: bool = False,
    ) -> Optional[float]:
        if name not in self.data:
            return self._missing(name, default, required)
        value = self.data[name]
        if value is None and allow_none:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            self.error(f"field {name!r}: expected a number, got {_show(value)}")
            return default
        if minimum is not None and value < minimum:
            self.error(f"field {name!r}: must be >= {minimum}, got {value}")
            return default
        return float(value)

    def str_(
        self,
        name: str,
        default: Optional[str] = None,
        *,
        required: bool = False,
        choices=None,
    ) -> Optional[str]:
        if name not in self.data:
            return self._missing(name, default, required)
        value = self.data[name]
        if not isinstance(value, str):
            self.error(f"field {name!r}: expected a string, got {_show(value)}")
            return default
        if choices is not None and value not in choices:
            self.error(
                f"field {name!r}: unknown value {value!r} "
                f"(choose from {', '.join(sorted(choices))})"
            )
            return default
        return value

    def bool_(self, name: str, default: bool = False) -> bool:
        if name not in self.data:
            return default
        value = self.data[name]
        if not isinstance(value, bool):
            self.error(
                f"field {name!r}: expected true or false, got {_show(value)}"
            )
            return default
        return value

    def int_list(
        self,
        name: str,
        default=None,
        *,
        item_minimum: Optional[int] = None,
    ):
        if name not in self.data:
            return default
        value = self.data[name]
        if value is None:
            return default
        if not isinstance(value, (list, tuple)):
            self.error(
                f"field {name!r}: expected a list of integers, "
                f"got {_show(value)}"
            )
            return default
        out: List[int] = []
        for i, item in enumerate(value):
            if isinstance(item, bool) or not isinstance(item, int):
                self.error(
                    f"field {name!r}[{i}]: expected an integer, "
                    f"got {_show(item)}"
                )
                return default
            if item_minimum is not None and item < item_minimum:
                self.error(
                    f"field {name!r}[{i}]: must be >= {item_minimum}, "
                    f"got {item}"
                )
                return default
            out.append(item)
        return out

    def faults(self, name: str = "faults"):
        """A fault schedule: a ``FaultSchedule`` spec object or its
        canonical list form; returns the canonical tuple or None."""
        if name not in self.data or self.data[name] is None:
            return None
        value = self.data[name]
        from ..faults.schedule import FaultSchedule, FaultSpecError

        try:
            if isinstance(value, dict):
                return FaultSchedule.from_spec(value).canonical()
            if isinstance(value, (list, tuple)):
                return FaultSchedule.from_canonical(value).canonical()
        except FaultSpecError as exc:
            self.error(f"field {name!r}: {exc}")
            return None
        self.error(
            f"field {name!r}: expected a fault-schedule object or its "
            f"canonical list form, got {_show(value)}"
        )
        return None

    def raise_if_failed(self) -> None:
        if self.errors:
            raise SpecIngestError(self.errors)


def _ensure_dict(payload, what: str) -> Dict[str, Any]:
    if isinstance(payload, str):
        import json

        try:
            payload = json.loads(payload)
        except ValueError as exc:
            raise SpecIngestError([f"{what} is not valid JSON: {exc}"]) from None
    if not isinstance(payload, dict):
        raise SpecIngestError(
            [f"{what} must be a JSON object, got {_show(payload)}"]
        )
    return payload


_SPEC_FIELDS = (
    "scenario", "topology", "n", "sdn_count", "seed", "mrai",
    "recompute_delay", "policy_mode", "sdn_members", "horizon",
    "trace_level", "metrics", "spans", "profile", "sample_hz",
    "faults", "compact", "batch_delivery", "lean", "scheduler", "label",
)


def runspec_from_json(payload) -> "RunSpec":  # noqa: F821 (local import)
    """Parse one trial payload (dict or JSON string) into a RunSpec.

    Raises :class:`SpecIngestError` listing *every* problem: unknown
    fields, type mismatches, out-of-range values, unregistered scenario
    or topology names, and malformed nested fault schedules.
    """
    data = _ensure_dict(payload, "spec")
    f = _Fields(data)
    f.reject_unknown(_SPEC_FIELDS)
    scenarios = _scenario_registry()
    topologies = _topology_registry()
    scenario = f.str_("scenario", required=True, choices=scenarios)
    topology = f.str_("topology", "clique", choices=topologies)
    n = f.int_("n", required=True, minimum=2)
    sdn_count = f.int_("sdn_count", 0, minimum=0)
    seed = f.int_("seed", 0)
    mrai = f.number("mrai", 30.0, minimum=0.0)
    recompute_delay = f.number("recompute_delay", 0.5, minimum=0.0)
    policy_mode = f.str_("policy_mode", "flat")
    sdn_members = f.int_list("sdn_members", None, item_minimum=0)
    horizon = f.number("horizon", None, minimum=0.0, allow_none=True)
    trace_level = f.str_("trace_level", "full", choices=_TRACE_LEVELS)
    metrics = f.bool_("metrics")
    spans = f.bool_("spans")
    profile = f.bool_("profile")
    sample_hz = f.number("sample_hz", 0.0, minimum=0.0)
    faults = f.faults()
    compact = f.bool_("compact")
    batch_delivery = f.bool_("batch_delivery")
    lean = f.bool_("lean")
    scheduler = f.str_("scheduler", "heap", choices=_SCHEDULERS)
    label = f.str_("label", "")
    if n is not None and sdn_count is not None and sdn_count > n:
        f.error(
            f"field 'sdn_count': cannot convert {sdn_count} of {n} ASes"
        )
    if n is not None and sdn_members:
        outside = [m for m in sdn_members if m > n]
        if outside:
            f.error(
                f"field 'sdn_members': ASes {outside} outside 1..{n}"
            )
    f.raise_if_failed()

    from ..runner.jobs import RunSpec

    return RunSpec(
        scenario_factory=scenarios[scenario],
        topology_factory=topologies[topology],
        n=n,
        sdn_count=sdn_count,
        seed=seed,
        mrai=mrai,
        recompute_delay=recompute_delay,
        policy_mode=policy_mode,
        sdn_members=tuple(sdn_members) if sdn_members is not None else None,
        horizon=horizon,
        trace_level=trace_level,
        metrics=metrics,
        spans=spans,
        profile=profile,
        sample_hz=sample_hz,
        faults=faults,
        compact=compact,
        batch_delivery=batch_delivery,
        lean=lean,
        scheduler=scheduler,
        label=label,
    )


_GRID_FIELDS = (
    "scenario", "topology", "n", "sdn_counts", "runs", "seed_base",
    "mrai", "recompute_delay", "policy_mode", "trace_level",
    "metrics", "spans", "profile", "sample_hz", "faults", "horizon",
    "compact", "batch_delivery", "lean", "scheduler",
)


def grid_from_json(payload, *, max_specs: int = MAX_GRID_SPECS) -> List:
    """Expand a sweep-grid payload to the RunSpec list the Fig. 2
    harness would build: seeds follow ``seed_base + 1000*sdn_count +
    run_index`` and labels match, so grid submissions share digests
    (and cache entries) with :func:`run_fraction_sweep` trials."""
    data = _ensure_dict(payload, "grid")
    f = _Fields(data)
    f.reject_unknown(_GRID_FIELDS)
    scenarios = _scenario_registry()
    topologies = _topology_registry()
    scenario = f.str_("scenario", required=True, choices=scenarios)
    topology = f.str_("topology", "clique", choices=topologies)
    n = f.int_("n", required=True, minimum=2)
    sdn_counts = f.int_list("sdn_counts", None, item_minimum=0)
    runs = f.int_("runs", 1, minimum=1)
    seed_base = f.int_("seed_base", 100)
    mrai = f.number("mrai", 30.0, minimum=0.0)
    recompute_delay = f.number("recompute_delay", 0.5, minimum=0.0)
    policy_mode = f.str_("policy_mode", "flat")
    trace_level = f.str_("trace_level", "full", choices=_TRACE_LEVELS)
    metrics = f.bool_("metrics")
    spans = f.bool_("spans")
    profile = f.bool_("profile")
    sample_hz = f.number("sample_hz", 0.0, minimum=0.0)
    horizon = f.number("horizon", None, minimum=0.0, allow_none=True)
    faults = f.faults()
    compact = f.bool_("compact")
    batch_delivery = f.bool_("batch_delivery")
    lean = f.bool_("lean")
    scheduler = f.str_("scheduler", "heap", choices=_SCHEDULERS)
    if n is not None and sdn_counts:
        too_big = [c for c in sdn_counts if c > n]
        if too_big:
            f.error(
                f"field 'sdn_counts': counts {too_big} exceed n={n}"
            )
    f.raise_if_failed()

    from ..runner.jobs import RunSpec

    probe = scenarios[scenario]()
    if sdn_counts is None:
        max_sdn = n - len(probe.reserved_legacy)
        sdn_counts = list(range(0, max_sdn + 1))
    total = len(sdn_counts) * runs
    if total > max_specs:
        raise SpecIngestError(
            [
                f"grid expands to {total} trials "
                f"({len(sdn_counts)} sdn_counts x {runs} runs); "
                f"the limit is {max_specs}"
            ]
        )
    specs: List[RunSpec] = []
    for sdn_count in sdn_counts:
        for run_index in range(runs):
            seed = seed_base + 1000 * sdn_count + run_index
            specs.append(
                RunSpec(
                    scenario_factory=scenarios[scenario],
                    topology_factory=topologies[topology],
                    n=n,
                    sdn_count=sdn_count,
                    seed=seed,
                    mrai=mrai,
                    recompute_delay=recompute_delay,
                    policy_mode=policy_mode,
                    horizon=horizon,
                    trace_level=trace_level,
                    metrics=metrics,
                    spans=spans,
                    profile=profile,
                    sample_hz=sample_hz,
                    faults=faults,
                    compact=compact,
                    batch_delivery=batch_delivery,
                    lean=lean,
                    scheduler=scheduler,
                    label=f"{probe.name} sdn={sdn_count} seed={seed}",
                )
            )
    return specs


def specs_from_json(payload) -> List:
    """Parse either payload shape into a spec list.

    ``{"spec": {...}}`` and a bare spec object yield one spec;
    ``{"grid": {...}}`` yields the expanded grid.  Supplying both (or
    neither, for wrapper-shaped payloads) is an error.
    """
    data = _ensure_dict(payload, "payload")
    if "spec" in data and "grid" in data:
        raise SpecIngestError(
            ["payload must contain either 'spec' or 'grid', not both"]
        )
    if "grid" in data:
        extra = sorted(set(data) - {"grid"})
        if extra:
            raise SpecIngestError(
                [f"unexpected fields next to 'grid': {', '.join(extra)}"]
            )
        return grid_from_json(data["grid"])
    if "spec" in data:
        extra = sorted(set(data) - {"spec"})
        if extra:
            raise SpecIngestError(
                [f"unexpected fields next to 'spec': {', '.join(extra)}"]
            )
        return [runspec_from_json(data["spec"])]
    return [runspec_from_json(data)]


def _jsonify(value):
    """Canonical tuples -> JSON-ready lists, recursively."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def spec_payload(spec) -> Dict[str, Any]:
    """The JSON payload form of a RunSpec (inverse of
    :func:`runspec_from_json` for registry-named factories).

    Raises :class:`SpecIngestError` when the spec uses factories that
    have no registered name (such specs cannot travel over the API).
    """
    from ..runner.jobs import callable_token

    scenario_tokens = {
        callable_token(factory): name
        for name, factory in _scenario_registry().items()
    }
    topology_tokens = {
        callable_token(factory): name
        for name, factory in _topology_registry().items()
    }
    scenario_token = callable_token(spec.scenario_factory)
    topology_token = callable_token(spec.topology_factory)
    errors = []
    if scenario_token not in scenario_tokens:
        errors.append(f"scenario factory {scenario_token} has no registered name")
    if topology_token not in topology_tokens:
        errors.append(f"topology factory {topology_token} has no registered name")
    if errors:
        raise SpecIngestError(errors)
    out: Dict[str, Any] = {
        "scenario": scenario_tokens[scenario_token],
        "topology": topology_tokens[topology_token],
        "n": spec.n,
        "sdn_count": spec.sdn_count,
        "seed": spec.seed,
        "mrai": spec.mrai,
        "recompute_delay": spec.recompute_delay,
        "policy_mode": spec.policy_mode,
        "trace_level": spec.trace_level,
        "metrics": spec.metrics,
        "spans": spec.spans,
        "profile": spec.profile,
    }
    if spec.sdn_members is not None:
        out["sdn_members"] = list(spec.sdn_members)
    if spec.horizon is not None:
        out["horizon"] = spec.horizon
    if spec.faults is not None:
        out["faults"] = _jsonify(spec.faults)
    # Like the digest, these appear only when set so pre-existing
    # payloads (and their consumers) see no new keys.
    if spec.compact:
        out["compact"] = True
    if spec.batch_delivery:
        out["batch_delivery"] = True
    if spec.lean:
        out["lean"] = True
    if spec.scheduler != "heap":
        out["scheduler"] = spec.scheduler
    if spec.sample_hz:
        out["sample_hz"] = spec.sample_hz
    if spec.label:
        out["label"] = spec.label
    return out
