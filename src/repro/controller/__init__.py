"""The paper's IDR SDN controller and cluster BGP speaker."""

from .compiler import CompiledRule, FlowPlan, compile_decisions
from .graphs import (
    DEST,
    ASTopologyGraph,
    ExternalRoute,
    Peering,
    SwitchGraph,
    build_as_topology,
)
from .idr import ControllerConfig, IDRController
from .routing import MemberDecision, compute_decisions, decision_path
from .speaker import SPEAKER_ASN, ClusterBGPSpeaker

__all__ = [
    "CompiledRule",
    "FlowPlan",
    "compile_decisions",
    "DEST",
    "ASTopologyGraph",
    "ExternalRoute",
    "Peering",
    "SwitchGraph",
    "build_as_topology",
    "ControllerConfig",
    "IDRController",
    "MemberDecision",
    "compute_decisions",
    "decision_path",
    "SPEAKER_ASN",
    "ClusterBGPSpeaker",
]
