"""Compile per-member routing decisions into switch flow rules.

"AS routes are then compiled to flow rules on the SDN switches" (paper
§3).  The compiler is a pure function from (prefix, decisions, switch
graph, previous compilation) to FlowMod/FlowRemove message plans, so it
is unit-testable without a running controller.  Rule priority equals the
prefix length, giving OpenFlow tables longest-prefix-match semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..net.addr import Prefix
from ..sdn.messages import FlowMod, FlowRemove
from .graphs import SwitchGraph
from .routing import MemberDecision

__all__ = ["CompiledRule", "FlowPlan", "compile_decisions"]


@dataclass(frozen=True)
class CompiledRule:
    """Abstract rule for one member: where packets for the prefix go."""

    member: str
    prefix: Prefix
    action_type: str            # "output" | "local" | "drop"
    out_link_name: Optional[str] = None

    def to_flow_mod(self) -> FlowMod:
        """Render as the FlowMod message for the switch."""
        return FlowMod(
            match=self.prefix,
            action_type=self.action_type,
            out_link_name=self.out_link_name,
            priority=self.prefix.length,
            cookie=f"idr:{self.prefix}",
        )


@dataclass
class FlowPlan:
    """Messages to bring switches from the previous state to the new one."""

    installs: List[Tuple[str, FlowMod]]      # (member, message)
    removals: List[Tuple[str, FlowRemove]]   # (member, message)

    @property
    def empty(self) -> bool:
        """True when there is nothing to send/do."""
        return not self.installs and not self.removals

    def touched_members(self) -> List[str]:
        """Members receiving at least one message."""
        members = {m for m, _ in self.installs}
        members.update(m for m, _ in self.removals)
        return sorted(members)


def compile_decisions(
    prefix: Prefix,
    decisions: Dict[str, MemberDecision],
    switch_graph: SwitchGraph,
    previous: Optional[Dict[str, CompiledRule]] = None,
) -> Tuple[Dict[str, CompiledRule], FlowPlan]:
    """Translate decisions to rules and diff against ``previous``.

    Returns the new compilation state (member -> rule; unreachable
    members absent) and the plan of FlowMod/FlowRemove messages that
    realizes it.  Members whose rule is unchanged get no message — the
    controller stays quiet when nothing moved, which matters for the
    update-churn ablation.
    """
    previous = previous or {}
    new_rules: Dict[str, CompiledRule] = {}
    for member in sorted(decisions):
        rule = _rule_for(prefix, decisions[member], switch_graph)
        if rule is not None:
            new_rules[member] = rule

    installs: List[Tuple[str, FlowMod]] = []
    removals: List[Tuple[str, FlowRemove]] = []
    for member, rule in new_rules.items():
        if previous.get(member) != rule:
            installs.append((member, rule.to_flow_mod()))
    for member in previous:
        if member not in new_rules:
            removals.append(
                (
                    member,
                    FlowRemove(match=prefix, priority=prefix.length),
                )
            )
    return new_rules, FlowPlan(installs=installs, removals=removals)


def _rule_for(
    prefix: Prefix, decision: MemberDecision, switch_graph: SwitchGraph
) -> Optional[CompiledRule]:
    if decision.kind == "local":
        return CompiledRule(decision.member, prefix, "local")
    if decision.kind == "egress":
        return CompiledRule(
            decision.member, prefix, "output",
            out_link_name=decision.route.peering.phys_link_name,
        )
    if decision.kind == "forward":
        link_name = switch_graph.intra_link_name(
            decision.member, decision.next_member
        )
        if link_name is None:  # pragma: no cover - defensive
            return None
        return CompiledRule(decision.member, prefix, "output", out_link_name=link_name)
    return None  # unreachable: no rule
