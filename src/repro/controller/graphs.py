"""The controller's two graphs (paper §3).

The paper's key design insight is that the controller cannot reuse BGP's
distributed loop avoidance: a centrally computed route may egress the
cluster, cross the legacy world, and *re-enter* the cluster, looping.
It therefore keeps:

- the **Switch graph** — the physical topology of cluster switches and
  their up intra-cluster links (plus external peering attachment
  points), maintained from PortStatus events; and
- a per-destination-prefix **AS topology graph** — a transformation of
  the switch graph where each usable way of reaching the prefix becomes
  a weighted edge toward a virtual destination node.  External routes
  whose AS path contains any member of the *same sub-cluster* are
  excluded (using them could re-enter this sub-cluster = loop); paths
  through members of a *different* sub-cluster are allowed, which is
  precisely what lets disjoint sub-clusters reach each other over the
  legacy Internet (design goal §2).

Best paths are computed with Dijkstra on the AS topology graph
(``repro.controller.routing``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

from ..bgp.attrs import AsPath, Origin
from ..bgp.policy import Relationship
from ..net.addr import Prefix

__all__ = [
    "Peering",
    "ExternalRoute",
    "SwitchGraph",
    "ASTopologyGraph",
    "DEST",
    "build_as_topology",
]

#: Name of the virtual destination node in the AS topology graph.
DEST = "__dest__"


@dataclass(frozen=True)
class Peering:
    """One external BGP peering of a cluster member.

    The speaker terminates the BGP session (impersonating ``member_asn``)
    over ``relay link``; data-plane traffic egresses over the physical
    link named ``phys_link_name`` on switch ``member``.
    """

    member: str
    member_asn: int
    external: str
    phys_link_name: str
    #: business relationship of the external AS from the member's point
    #: of view (CUSTOMER = external pays the member).  FLAT disables
    #: valley-free preference/export rules.
    relationship: Relationship = Relationship.FLAT

    def __str__(self) -> str:
        return f"{self.member}<->{self.external}"


@dataclass(frozen=True)
class ExternalRoute:
    """A route for one prefix learned over one peering."""

    peering: Peering
    prefix: Prefix
    as_path: AsPath
    origin: Origin = Origin.IGP
    med: int = 0
    learned_at: float = 0.0

    @property
    def path_len(self) -> int:
        """AS-path length of the external route."""
        return self.as_path.length


class SwitchGraph:
    """Live physical view of the cluster: members + intra-cluster links.

    Maintained by the controller from its initial topology knowledge and
    subsequent PortStatus events.  Sub-clusters are the connected
    components — an intra-cluster link failure splits the cluster, and
    route computation then treats each component independently.
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()
        #: member name -> ASN
        self.member_asn: Dict[str, int] = {}

    def add_member(self, name: str, asn: int) -> None:
        """Register a member switch and its ASN."""
        self.member_asn[name] = asn
        self._graph.add_node(name)

    def members(self) -> List[str]:
        """Member switch names, sorted."""
        return sorted(self._graph.nodes)

    def member_asns(self) -> Set[int]:
        """The set of all member AS numbers."""
        return set(self.member_asn.values())

    def add_intra_link(self, a: str, b: str, link_name: str) -> None:
        """Register an intra-cluster adjacency."""
        if a not in self.member_asn or b not in self.member_asn:
            raise KeyError(f"both endpoints must be members: {a}, {b}")
        self._graph.add_edge(a, b, link_name=link_name, up=True)

    def set_link_state(self, a: str, b: str, up: bool) -> bool:
        """Mark an intra-cluster link up/down; True if it existed."""
        if not self._graph.has_edge(a, b):
            return False
        self._graph.edges[a, b]["up"] = up
        return True

    def up_graph(self) -> nx.Graph:
        """The switch graph restricted to links currently up."""
        up = nx.Graph()
        up.add_nodes_from(self._graph.nodes)
        for a, b, data in self._graph.edges(data=True):
            if data.get("up", True):
                up.add_edge(a, b, **data)
        return up

    def sub_clusters(self) -> List[FrozenSet[str]]:
        """Connected components (each is one sub-cluster), deterministic order."""
        comps = [frozenset(c) for c in nx.connected_components(self.up_graph())]
        return sorted(comps, key=lambda c: sorted(c)[0])

    def sub_cluster_of(self, member: str) -> FrozenSet[str]:
        """The connected component containing a member."""
        for comp in self.sub_clusters():
            if member in comp:
                return comp
        raise KeyError(f"not a member: {member!r}")

    def intra_link_name(self, a: str, b: str) -> Optional[str]:
        """Name of the up link between two members, or None."""
        if self._graph.has_edge(a, b) and self._graph.edges[a, b].get("up", True):
            return self._graph.edges[a, b]["link_name"]
        return None

    def up_neighbors(self, member: str) -> List[str]:
        """Members adjacent over currently-up links."""
        out = []
        for nbr in self._graph.neighbors(member):
            if self._graph.edges[member, nbr].get("up", True):
                out.append(nbr)
        return sorted(out)

    def __contains__(self, member: str) -> bool:
        return member in self.member_asn


@dataclass
class ASTopologyGraph:
    """The per-prefix transformed graph Dijkstra runs on.

    Directed graph over member names plus the virtual :data:`DEST` node:

    - ``member -> member`` edges (weight 1) for up intra-cluster links
      within one sub-cluster;
    - ``member -> DEST`` edges for usable egresses: local origination
      (weight 0) or a valid external route (weight 1 + AS-path length).

    ``egress_choice`` remembers, per member with a direct DEST edge, which
    concrete external route (or local origination) backs it, so the
    compiler and the advertisement builder can reconstruct real paths.
    """

    prefix: Prefix
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    #: member -> ("local", None) or ("egress", ExternalRoute)
    egress_choice: Dict[str, Tuple[str, Optional[ExternalRoute]]] = field(
        default_factory=dict
    )

    def usable_members(self) -> List[str]:
        """Members present in the per-prefix graph."""
        return sorted(n for n in self.graph.nodes if n != DEST)


def build_as_topology(
    switch_graph: SwitchGraph,
    prefix: Prefix,
    external_routes: Iterable[ExternalRoute],
    originating_members: Iterable[str] = (),
    *,
    egress_base_cost: float = 1.0,
) -> ASTopologyGraph:
    """Transform the switch graph into the AS topology graph for ``prefix``.

    The loop-avoidance rule: an external route learned at a peering of
    member ``m`` is usable only if its AS path contains no ASN of any
    member in ``m``'s *sub-cluster*.  (Its own ASN cannot appear — the
    speaker's per-session loop check already dropped that — but a path
    through a fellow sub-cluster member would re-enter this sub-cluster.)

    Weights: intra-cluster hop = 1; egress edge = ``egress_base_cost`` +
    external AS-path length; local origination = 0.  With the default
    base cost this makes total weight equal to the AS-level hop count of
    the resulting route, so Dijkstra picks what BGP's shortest-AS-path
    step would, minus the exploration.
    """
    topo = ASTopologyGraph(prefix=prefix)
    graph = topo.graph
    graph.add_node(DEST)
    sub_clusters = switch_graph.sub_clusters()
    asn_of_component: Dict[FrozenSet[str], Set[int]] = {
        comp: {switch_graph.member_asn[m] for m in comp} for comp in sub_clusters
    }
    component_of: Dict[str, FrozenSet[str]] = {}
    for comp in sub_clusters:
        for member in comp:
            component_of[member] = comp

    for member in switch_graph.members():
        graph.add_node(member)

    # Intra-cluster edges (both directions; weight 1 per AS hop).
    for member in switch_graph.members():
        for nbr in switch_graph.up_neighbors(member):
            graph.add_edge(member, nbr, weight=1.0, kind="intra")

    # Local originations beat any egress (weight 0).
    for member in sorted(set(originating_members)):
        if member not in switch_graph:
            raise KeyError(f"originating node is not a member: {member!r}")
        graph.add_edge(member, DEST, weight=0.0, kind="local")
        topo.egress_choice[member] = ("local", None)

    # External egresses, best (lowest weight, then deterministic
    # tie-break) route per member.
    best_per_member: Dict[str, ExternalRoute] = {}
    for route in external_routes:
        if route.prefix != prefix:
            continue
        member = route.peering.member
        if member not in switch_graph:
            continue
        cluster_asns = asn_of_component[component_of[member]]
        if any(route.as_path.contains(asn) for asn in cluster_asns):
            continue  # would re-enter this sub-cluster: loop risk
        current = best_per_member.get(member)
        if current is None or _route_key(route) < _route_key(current):
            best_per_member[member] = route

    for member, route in best_per_member.items():
        if topo.egress_choice.get(member, (None, None))[0] == "local":
            continue  # origination wins
        graph.add_edge(
            member, DEST,
            weight=egress_base_cost + route.path_len,
            kind="egress",
        )
        topo.egress_choice[member] = ("egress", route)

    return topo


#: valley-free route preference: customer routes first, then peers,
#: then providers (mirrors the LOCAL_PREF ladder legacy routers use).
_REL_RANK = {
    Relationship.CUSTOMER: 0,
    Relationship.PEER: 1,
    Relationship.FLAT: 1,
    Relationship.PROVIDER: 2,
}


def _route_key(route: ExternalRoute):
    """Deterministic preference among a member's external routes."""
    return (
        _REL_RANK[route.peering.relationship],
        route.path_len,
        int(route.origin),
        route.med,
        route.peering.external,
        tuple(route.as_path),
    )
