"""The proof-of-concept IDR SDN controller (paper §3, the POX app).

The controller exploits centralization to cut convergence time: instead
of letting every member AS explore paths with distributed BGP, it

1. maintains the **switch graph** from PortStatus events,
2. on route/topology events, rebuilds the per-prefix **AS topology
   graph** and runs **Dijkstra** on it,
3. **compiles** the resulting member decisions to flow rules pushed over
   the control channel, and
4. **re-advertises** the chosen routes to external peers through the
   cluster BGP speaker, preserving each member's AS identity.

Recomputation is *delayed* (a debounce timer): "the need for a delayed
recomputation of best paths on the controller's side, so as to improve
overall stability and rate-limit route flaps due to bursts in external
BGP input" — the second design insight of §3.  The delay is the
``recompute_delay`` knob; the ``abl-delayed-recompute`` benchmark sweeps
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..bgp.attrs import AsPath, Origin, PathAttributes
from ..bgp.policy import Relationship
from ..eventsim import DebounceTimer, Simulator
from ..net.addr import Prefix
from ..net.link import Link
from ..net.messages import Message
from ..net.node import Node
from ..obs.spans import activation, last_span_activation
from ..sdn.messages import BarrierReply, PacketIn, PortStatus
from ..sdn.switch import SDNSwitch
from .compiler import CompiledRule, compile_decisions
from .graphs import ExternalRoute, Peering, SwitchGraph, build_as_topology
from .routing import MemberDecision, compute_decisions
from .speaker import ClusterBGPSpeaker

__all__ = ["ControllerConfig", "IDRController"]


@dataclass
class ControllerConfig:
    """Tunables of the IDR controller."""

    #: debounce before best-path recomputation (the paper's delayed
    #: recomputation; 0 recomputes immediately after each event batch).
    recompute_delay: float = 0.5
    #: if True, the debounce window extends on every new event
    #: (quiescence-style); if False it fires a fixed delay after the
    #: first event of a burst (rate-limit style, the paper's behaviour).
    extend_on_burst: bool = False
    #: weight added to every egress edge in the AS topology graph.
    egress_base_cost: float = 1.0


class IDRController(Node):
    """Logically centralized routing decision process for the cluster."""

    def __init__(
        self,
        sim: Simulator,
        instrument,
        name: str = "controller",
        *,
        config: Optional[ControllerConfig] = None,
    ) -> None:
        super().__init__(sim, instrument, name)
        self.config = config if config is not None else ControllerConfig()
        self.switch_graph = SwitchGraph()
        self.speaker: Optional[ClusterBGPSpeaker] = None
        self._members: Dict[str, SDNSwitch] = {}
        self._control_links: Dict[str, Link] = {}
        #: prefix -> {member -> decision}
        self.decisions: Dict[Prefix, Dict[str, MemberDecision]] = {}
        #: prefix -> {member -> compiled rule} (what switches currently hold)
        self._compiled: Dict[Prefix, Dict[str, CompiledRule]] = {}
        #: prefix -> set of originating member names
        self.originations: Dict[Prefix, Set[str]] = {}
        self._dirty: Set[Prefix] = set()
        #: provenance of pending recomputation: prefix -> (context, time
        #: it went dirty); first cause wins, consumed by the recompute.
        self._dirty_ctx: Dict[Prefix, tuple] = {}
        self._recompute_timer = DebounceTimer(
            sim,
            self._recompute_dirty,
            self.config.recompute_delay,
            extend=self.config.extend_on_burst,
            label=f"{name}:recompute",
        )
        self.recomputations = 0
        self.flow_mods_sent = 0
        self.packet_ins = 0
        #: False while the controller process is "dead" (failover fault):
        #: inputs are dropped, no recomputation runs.  The speaker keeps
        #: advertising the last computed decisions, like a real route
        #: server surviving its policy engine.
        self.active = True

    # ------------------------------------------------------------------
    # cluster wiring (done by the framework's cluster builder)
    # ------------------------------------------------------------------
    def attach_speaker(self, speaker: ClusterBGPSpeaker) -> None:
        """Colocate with the speaker (controller runs on top of it)."""
        self.speaker = speaker
        speaker.attach_controller(self)

    def register_member(self, switch: SDNSwitch, control_link: Link) -> None:
        """Add a member switch reachable over ``control_link``."""
        self._members[switch.name] = switch
        self._control_links[switch.name] = control_link
        self.switch_graph.add_member(switch.name, switch.asn)

    def register_intra_link(self, a: str, b: str, link_name: str) -> None:
        """Record an intra-cluster link in the switch graph."""
        self.switch_graph.add_intra_link(a, b, link_name)

    def members(self) -> List[str]:
        """Member switch names, sorted."""
        return sorted(self._members)

    # ------------------------------------------------------------------
    # prefix origination by member switches
    # ------------------------------------------------------------------
    def originate(self, member: str, prefix: Prefix) -> None:
        """Member AS ``member`` starts originating ``prefix``."""
        if member not in self._members:
            raise KeyError(f"not a member: {member!r}")
        self.originations.setdefault(prefix, set()).add(member)
        self._members[member].add_local_prefix(prefix)
        self.bus.record(
            "bgp.originate", member, prefix=str(prefix), via="controller"
        )
        # Provenance: the origination span roots the recompute cascade.
        with last_span_activation(self.bus.obs):
            self.mark_dirty([prefix])

    def withdraw(self, member: str, prefix: Prefix) -> None:
        """Member AS ``member`` stops originating ``prefix``."""
        members = self.originations.get(prefix, set())
        if member not in members:
            raise KeyError(f"{member} does not originate {prefix}")
        members.discard(member)
        if not members:
            self.originations.pop(prefix, None)
        self._members[member].remove_local_prefix(prefix)
        self.bus.record(
            "bgp.withdraw", member, prefix=str(prefix), via="controller"
        )
        with last_span_activation(self.bus.obs):
            self.mark_dirty([prefix])

    # ------------------------------------------------------------------
    # failover / crash-recovery (fault-injection semantics)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Kill the controller process: pending work lost, inputs ignored.

        Compiled state and the speaker's last advertisements survive (the
        data plane keeps forwarding on installed rules); only the
        decision process stops.
        """
        if not self.active:
            return
        self.active = False
        self._recompute_timer.cancel()
        self._dirty.clear()
        self._dirty_ctx.clear()
        self.bus.record("controller.fail", self.name)

    def recover(self) -> None:
        """Restart after :meth:`fail`: resync and recompute everything.

        PortStatus events that arrived during the outage are gone, so the
        switch graph is rebuilt from every member's actual link state (a
        real controller re-learns this in the reconnect handshake), then
        every known prefix is marked dirty for one recomputation round.
        """
        if self.active:
            return
        self.active = True
        self.bus.record("controller.recover", self.name)
        for name, switch in sorted(self._members.items()):
            for link in switch.links:
                if link.kind != "phys":
                    continue
                self.switch_graph.set_link_state(
                    name, link.other(switch).name, link.up
                )
        obs = self.bus.obs
        if obs is not None and obs.current is None:
            # Recovery is a root cause: the catch-up recompute it queues
            # hangs off this span rather than appearing uncaused.
            ctx = obs.emit_root("controller.recover", self.name)
            with activation(obs, ctx):
                self.mark_dirty(self.known_prefixes())
        else:
            self.mark_dirty(self.known_prefixes())

    def member_rebooted(self, member: str) -> None:
        """A member switch lost its flow table (crash/restart).

        Forget what we believe is installed there and recompute, so the
        next round re-pushes the member's rules from scratch.
        """
        for rules in self._compiled.values():
            rules.pop(member, None)
        self.bus.record("controller.member_reboot", self.name, member=member)
        if self.active:
            self.mark_dirty(self.known_prefixes())

    def _drop_while_down(self, what: str) -> None:
        self.bus.record("controller.dropped", self.name, event=what)

    # ------------------------------------------------------------------
    # events from the speaker
    # ------------------------------------------------------------------
    def route_event(self, peering: Peering, prefixes: List[Prefix]) -> None:
        """External BGP input changed some prefixes at one peering."""
        if not self.active:
            self._drop_while_down("route_event")
            return
        self.bus.record_lazy(
            "controller.route_event", self.name,
            lambda: {
                "peering": str(peering),
                "prefixes": [str(p) for p in prefixes],
            },
        )
        self.mark_dirty(prefixes)

    def peering_established(self, peering: Peering) -> None:
        """Speaker callback: a peering came up."""
        if not self.active:
            self._drop_while_down("peering_established")
            return
        self.bus.record(
            "controller.peering.up", self.name, peering=str(peering)
        )

    def peering_lost(self, peering: Peering, affected: List[Prefix]) -> None:
        """Speaker callback: a peering went down."""
        if not self.active:
            self._drop_while_down("peering_lost")
            return
        self.bus.record_lazy(
            "controller.peering.down", self.name,
            lambda: {
                "peering": str(peering),
                "prefixes": [str(p) for p in affected],
            },
        )
        self.mark_dirty(affected)

    def mark_dirty(self, prefixes) -> None:
        """Queue prefixes for the next (debounced) recompute."""
        if not self.active:
            return
        prefixes = list(prefixes)
        obs = self.bus.obs
        if obs is not None:
            # Provenance: remember what first dirtied each prefix so the
            # eventual recompute span is parented under its true cause.
            now = self.sim.now
            for prefix in prefixes:
                if prefix not in self._dirty_ctx:
                    self._dirty_ctx[prefix] = (obs.current, now)
        self._dirty.update(prefixes)
        if self._dirty:
            self._recompute_timer.trigger()

    # ------------------------------------------------------------------
    # control-channel messages from switches
    # ------------------------------------------------------------------
    def handle_message(self, link: Link, message: Message) -> None:
        """Control-plane dispatch for one delivered message."""
        if not self.active:
            self._drop_while_down(type(message).__name__)
            return
        if isinstance(message, PortStatus):
            self._handle_port_status(message)
        elif isinstance(message, PacketIn):
            self.packet_ins += 1
            self.bus.record_lazy(
                "controller.packet_in", self.name,
                lambda: {"switch": message.switch, "dst": message.dst},
            )
        elif isinstance(message, BarrierReply):
            pass

    def _handle_port_status(self, status: PortStatus) -> None:
        self.bus.record_lazy(
            "controller.port_status", self.name,
            lambda: {
                "switch": status.switch, "peer": status.peer,
                "up": status.up,
            },
        )
        changed = self.switch_graph.set_link_state(
            status.switch, status.peer, status.up
        )
        # Any topology change (intra-cluster link or an egress peering
        # link) can invalidate every computed route: recompute all.
        self.mark_dirty(self.known_prefixes())
        if changed:
            self.bus.record_lazy(
                "controller.switch_graph", self.name,
                lambda: {
                    "sub_clusters": [
                        sorted(c) for c in self.switch_graph.sub_clusters()
                    ],
                },
            )

    # ------------------------------------------------------------------
    # delayed recomputation
    # ------------------------------------------------------------------
    def _recompute_dirty(self) -> None:
        dirty, self._dirty = self._dirty, set()
        if not dirty:
            return
        self.recomputations += 1
        obs = self.bus.obs
        if obs is None:
            self._record_recompute(dirty)
            for prefix in sorted(dirty):
                self._recompute_prefix(prefix)
            return
        # Provenance: the recompute fires from a debounce timer, so the
        # causal context was captured when the prefixes went dirty.
        # Parent under the earliest cause (deterministic tie-break by
        # span id) and stretch the span across the debounce wait.
        entries = []
        for prefix in dirty:
            entry = self._dirty_ctx.pop(prefix, None)
            if entry is not None:
                entries.append(entry)
        if entries:
            ctx, t_first = min(
                entries,
                key=lambda e: (e[1], e[0][1] if e[0] is not None else -1),
            )
            wait = self.sim.now - t_first
        else:
            ctx, t_first, wait = obs.current, self.sim.now, 0.0
        prev = obs.swap(ctx)
        try:
            self._record_recompute(dirty)
            obs.annotate_last(t_start=t_first, debounce_wait=wait)
            obs.swap(obs.last_ctx)
            for prefix in sorted(dirty):
                self._recompute_prefix(prefix)
        finally:
            obs.swap(prev)

    def _record_recompute(self, dirty) -> None:
        self.bus.record_lazy(
            "controller.recompute", self.name,
            lambda: {
                "prefixes": [str(p) for p in sorted(dirty)],
                "coalesced": self._recompute_timer.triggers_coalesced,
            },
        )

    def _recompute_prefix(self, prefix: Prefix) -> None:
        routes = (
            self.speaker.external_routes(prefix)
            if self.speaker is not None
            else []
        )
        topo = build_as_topology(
            self.switch_graph,
            prefix,
            routes,
            self.originations.get(prefix, ()),
            egress_base_cost=self.config.egress_base_cost,
        )
        decisions = compute_decisions(topo, self.switch_graph.member_asn)
        old_decisions = self.decisions.get(prefix, {})
        compiled, plan = compile_decisions(
            prefix, decisions, self.switch_graph, self._compiled.get(prefix)
        )
        self.decisions[prefix] = decisions
        self._compiled[prefix] = compiled
        for member, mod in plan.installs:
            self._send_to_switch(member, mod)
        for member, removal in plan.removals:
            self._send_to_switch(member, removal)
        if decisions != old_decisions and self.speaker is not None:
            self.bus.record(
                "controller.advertise", self.name, prefix=str(prefix)
            )
            with last_span_activation(self.bus.obs):
                self.speaker.schedule_all_sessions(prefix)

    def _send_to_switch(self, member: str, message: Message) -> None:
        link = self._control_links.get(member)
        if link is None or not link.up:
            self.bus.record(
                "controller.control_link_down", self.name, member=member
            )
            return
        self.flow_mods_sent += 1
        self.bus.record_lazy(
            "controller.flow_install", self.name,
            lambda: {"member": member, "message": type(message).__name__},
        )
        # Provenance: the FlowMod carries the flow_install span so the
        # switch's fib.change lands under it.
        with last_span_activation(self.bus.obs):
            link.transmit(self, message)

    # ------------------------------------------------------------------
    # advertisement generation (asked by the speaker per peering)
    # ------------------------------------------------------------------
    def desired_advertisement(
        self, peering: Peering, prefix: Prefix
    ) -> Optional[PathAttributes]:
        """What the cluster should advertise for ``prefix`` at ``peering``.

        The AS path is the member-ASN chain along the intra-cluster
        forwarding path, followed by the chosen egress's external path —
        the cluster looks like a normal sequence of ASes to the legacy
        world, keeping legacy loop detection sound.
        """
        decision = self.decisions.get(prefix, {}).get(peering.member)
        if decision is None or not decision.reachable:
            return None
        route = self._egress_route(prefix, decision)
        if route is not None and route.peering == peering:
            return None  # split horizon toward the chosen egress peering
        if not self._export_permitted(route, peering):
            return None  # valley-free export rule
        if route is not None:
            as_path = route.as_path.prepend_sequence(decision.as_chain)
            origin = route.origin
            med = route.med
        else:
            as_path = AsPath(decision.as_chain)
            origin = Origin.IGP
            med = 0
        return PathAttributes(as_path=as_path, origin=origin, med=med)

    @staticmethod
    def _export_permitted(route, peering: Peering) -> bool:
        """Gao-Rexford export check for the cluster as a whole.

        Locally originated routes (``route is None``) and customer-learned
        routes go to everyone; peer-/provider-learned routes go only to
        customers.  FLAT peerings (the clique experiments) export freely.
        """
        if route is None:
            return True
        learned = route.peering.relationship
        if learned in (Relationship.CUSTOMER, Relationship.FLAT):
            return True
        return peering.relationship is Relationship.CUSTOMER

    def _egress_route(
        self, prefix: Prefix, decision: MemberDecision
    ) -> Optional[ExternalRoute]:
        """The external route backing ``decision`` (None for local origin)."""
        node = decision
        decisions = self.decisions.get(prefix, {})
        seen = set()
        while node is not None and node.kind == "forward":
            if node.member in seen:  # pragma: no cover - defensive
                return None
            seen.add(node.member)
            node = decisions.get(node.next_member)
        if node is not None and node.kind == "egress":
            return node.route
        return None

    # ------------------------------------------------------------------
    def known_prefixes(self) -> List[Prefix]:
        """Everything the cluster has a route for or originates."""
        seen = set(self.originations)
        if self.speaker is not None:
            seen.update(self.speaker.known_external_prefixes())
        seen.update(self.decisions)
        return sorted(seen)

    def flush_now(self) -> None:
        """Force an immediate recomputation (test/experiment hook)."""
        self._recompute_timer.cancel()
        self._recompute_dirty()

    # ------------------------------------------------------------------
    # consistency auditing
    # ------------------------------------------------------------------
    def audit(self) -> List[str]:
        """Cross-check controller state against the switches' tables.

        Returns a list of human-readable discrepancies (empty = clean):
        rules the controller believes are installed but the switch lacks
        (lost FlowMods — e.g. a control link was down), rules present
        with a different action than compiled, and orphaned IDR-cookied
        rules for prefixes the controller no longer tracks.  This is the
        operational check a real deployment runs after control-channel
        hiccups.
        """
        problems: List[str] = []
        for prefix, rules in sorted(self._compiled.items()):
            for member, rule in sorted(rules.items()):
                switch = self._members.get(member)
                if switch is None:  # pragma: no cover - defensive
                    problems.append(f"{member}: unknown member for {prefix}")
                    continue
                actual = [
                    r for r in switch.flow_table
                    if r.match == prefix and r.cookie == f"idr:{prefix}"
                ]
                if not actual:
                    problems.append(
                        f"{member}: missing rule for {prefix} "
                        f"(expected {rule.action_type})"
                    )
                    continue
                flow = actual[0]
                actual_target = (
                    flow.action.link.name
                    if flow.action.link is not None
                    else flow.action.type.value
                )
                expected_target = rule.out_link_name or rule.action_type
                if actual_target != expected_target:
                    problems.append(
                        f"{member}: rule for {prefix} points at "
                        f"{actual_target}, compiled {expected_target}"
                    )
        tracked = set(self._compiled)
        for member, switch in sorted(self._members.items()):
            for flow in switch.flow_table:
                if not flow.cookie.startswith("idr:"):
                    continue
                if flow.match not in tracked or member not in self._compiled.get(
                    flow.match, {}
                ):
                    problems.append(
                        f"{member}: orphaned rule for {flow.match}"
                    )
        return problems

    def repair(self) -> int:
        """Re-push every compiled rule (recovery after control-link loss).

        Returns the number of FlowMods sent.  Orphans are removed by
        cookie.
        """
        from ..sdn.messages import FlowRemove

        sent = 0
        for prefix, rules in sorted(self._compiled.items()):
            for member, rule in sorted(rules.items()):
                self._send_to_switch(member, rule.to_flow_mod())
                sent += 1

        tracked = set(self._compiled)
        for member, switch in sorted(self._members.items()):
            orphans = {
                flow.match
                for flow in switch.flow_table
                if flow.cookie.startswith("idr:")
                and (
                    flow.match not in tracked
                    or member not in self._compiled.get(flow.match, {})
                )
            }
            for prefix in sorted(orphans):
                self._send_to_switch(member, FlowRemove(cookie=f"idr:{prefix}"))
                sent += 1
        return sent
