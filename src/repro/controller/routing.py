"""Best-path computation on the AS topology graph (paper §3).

"Best path calculations are based on the Dijkstra algorithm, running on
the AS topology graph."  We run one reverse Dijkstra from the virtual
destination node, yielding every member's distance and successor in one
pass, then translate successors into per-member routing decisions.

Determinism: the priority queue orders by (distance, node name), and
ties among equal-cost successors break on (successor's distance,
successor name), so repeated runs and different dict orders always yield
identical routing — a property the tests assert.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .graphs import DEST, ASTopologyGraph, ExternalRoute

__all__ = ["MemberDecision", "compute_decisions", "decision_path"]


@dataclass(frozen=True)
class MemberDecision:
    """How one member switch reaches the prefix.

    ``kind`` is one of:

    - ``"local"`` — the member originates the prefix (deliver locally);
    - ``"egress"`` — leave the cluster via ``route.peering``;
    - ``"forward"`` — hand over to neighbouring member ``next_member``;
    - ``"unreachable"`` — no path; the compiler removes flow rules.

    ``distance`` is the Dijkstra cost (AS-level hop count with default
    weights); ``as_chain`` is the sequence of member ASNs from this
    member to (and including) the egress/originating member — the part
    of the AS path inside the cluster, used when re-advertising so the
    cluster stays transparent to the legacy world.
    """

    member: str
    kind: str
    next_member: Optional[str] = None
    route: Optional[ExternalRoute] = None
    distance: float = float("inf")
    as_chain: Tuple[int, ...] = ()

    @property
    def reachable(self) -> bool:
        """True unless the decision is 'unreachable'."""
        return self.kind != "unreachable"


def compute_decisions(topo: ASTopologyGraph, member_asn: Dict[str, int]) -> Dict[str, MemberDecision]:
    """Run reverse Dijkstra from DEST and derive every member's decision."""
    dist, succ = _reverse_dijkstra(topo)
    decisions: Dict[str, MemberDecision] = {}
    for member in topo.usable_members():
        if member not in dist:
            decisions[member] = MemberDecision(member, "unreachable")
            continue
        decisions[member] = _decision_for(member, topo, dist, succ, member_asn)
    return decisions


def _reverse_dijkstra(
    topo: ASTopologyGraph,
) -> Tuple[Dict[str, float], Dict[str, str]]:
    """Distances to DEST and each node's best successor toward it.

    Edges in the AS topology graph point toward DEST; we relax them in
    reverse (for each edge u->v, knowing dist(v) improves dist(u)).
    """
    graph = topo.graph
    dist: Dict[str, float] = {DEST: 0.0}
    succ: Dict[str, str] = {}
    # (distance, node) heap; name is the deterministic tie-breaker.
    heap: List[Tuple[float, str]] = [(0.0, DEST)]
    done = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for pred in graph.predecessors(node):
            weight = graph.edges[pred, node]["weight"]
            cand = d + weight
            if pred not in dist or cand < dist[pred] - 1e-12:
                dist[pred] = cand
                succ[pred] = node
                heapq.heappush(heap, (cand, pred))
            elif abs(cand - dist[pred]) <= 1e-12:
                # Equal cost: keep the lexicographically smallest
                # successor so routing is order-independent.
                if node < succ.get(pred, "￿"):
                    succ[pred] = node
    return dist, succ


def _decision_for(
    member: str,
    topo: ASTopologyGraph,
    dist: Dict[str, float],
    succ: Dict[str, str],
    member_asn: Dict[str, int],
) -> MemberDecision:
    nxt = succ.get(member)
    chain = _chain(member, succ, member_asn)
    if nxt == DEST:
        kind, route = topo.egress_choice[member]
        if kind == "local":
            return MemberDecision(
                member, "local", distance=dist[member], as_chain=chain
            )
        return MemberDecision(
            member, "egress", route=route, distance=dist[member], as_chain=chain
        )
    if nxt is None:
        return MemberDecision(member, "unreachable")
    return MemberDecision(
        member, "forward", next_member=nxt, distance=dist[member], as_chain=chain
    )


def _chain(
    member: str, succ: Dict[str, str], member_asn: Dict[str, int]
) -> Tuple[int, ...]:
    """Member-ASN sequence from ``member`` to its egress/origin member."""
    chain: List[int] = []
    node = member
    seen = set()
    while node != DEST and node is not None:
        if node in seen:  # pragma: no cover - Dijkstra successors are acyclic
            break
        seen.add(node)
        chain.append(member_asn[node])
        node = succ.get(node)
    return tuple(chain)


def decision_path(
    member: str, decisions: Dict[str, MemberDecision]
) -> List[str]:
    """Member names along ``member``'s forwarding path inside the cluster."""
    path = [member]
    node = decisions.get(member)
    while node is not None and node.kind == "forward":
        path.append(node.next_member)
        node = decisions.get(node.next_member)
    return path
