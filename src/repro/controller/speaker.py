"""Cluster BGP speaker (the framework's ExaBGP substitute).

"Within the SDN cluster we have a special BGP speaker, called cluster
BGP speaker, which relays routing information between external BGP
routers and the SDN controller" (paper §3).

The speaker terminates one eBGP session per external peering of every
cluster member, *speaking as the member's ASN* so the cluster stays
transparent to the legacy world (design goal §2).  Each session runs
over a dedicated relay link to the member's border switch, which
shuttles the BGP bytes to/from the physical peering link.

The speaker is deliberately dumb: it keeps per-peering Adj-RIB-In /
Adj-RIB-Out, forwards route events to the IDR controller, and asks the
controller what to advertise.  All route *selection* lives in the
controller (unlike RouteFlow, which mirrors legacy protocols — see the
paper's related-work comparison).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..bgp.attrs import PathAttributes
from ..bgp.messages import BGPMessage, BGPUpdate
from ..bgp.rib import AdjRibIn, AdjRibOut, Route
from ..bgp.session import BGPSession, BGPTimers
from ..eventsim import Simulator
from ..net.addr import Prefix
from ..net.link import Link
from ..net.messages import Message
from ..net.node import Node
from ..obs.spans import activation
from ..sdn.messages import PeeringStatus
from .graphs import ExternalRoute, Peering

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .idr import IDRController

__all__ = ["ClusterBGPSpeaker", "SPEAKER_ASN"]

#: Private ASN for the speaker process itself (never appears on the wire
#: — sessions speak with member ASNs).
SPEAKER_ASN = 64900


class _ControllerRibView:
    """Duck-typed Loc-RIB stand-in: sessions resync from the controller's
    set of known prefixes instead of a local best-route table."""

    def __init__(self, speaker: "ClusterBGPSpeaker") -> None:
        self._speaker = speaker

    def prefixes(self) -> List[Prefix]:
        """All prefixes currently held, as a list."""
        if not self._speaker.controller_reachable:
            return []
        controller = self._speaker.controller
        return controller.known_prefixes() if controller is not None else []


class ClusterBGPSpeaker(Node):
    """BGP endpoint of the SDN cluster; one session per external peering."""

    def __init__(
        self,
        sim: Simulator,
        instrument,
        name: str = "speaker",
        *,
        timers: Optional[BGPTimers] = None,
    ) -> None:
        super().__init__(sim, instrument, name)
        self.asn = SPEAKER_ASN
        #: ExaBGP applies no MRAI; the controller's delayed recomputation
        #: is the cluster's rate limiter (paper §3).
        self.timers = timers if timers is not None else BGPTimers(mrai=0.0)
        self.controller: Optional["IDRController"] = None
        self.loc_rib = _ControllerRibView(self)
        self.sessions: Dict[int, BGPSession] = {}       # relay link id ->
        self.peering_of: Dict[int, Peering] = {}        # relay link id ->
        self._rib_in: Dict[int, AdjRibIn] = {}
        self._rib_out: Dict[int, AdjRibOut] = {}
        self.updates_processed = 0
        #: False while the speaker-controller channel is partitioned:
        #: callbacks to the controller are dropped and advertisements
        #: freeze at the last pushed policy (an ExaBGP process that lost
        #: its API pipe keeps announcing what it was last told).
        self.controller_reachable = True

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_controller(self, controller: "IDRController") -> None:
        """Bind the IDR controller for event callbacks."""
        self.controller = controller

    def add_peering(
        self,
        peering: Peering,
        relay_link: Link,
        *,
        timers: Optional[BGPTimers] = None,
        policy=None,
    ) -> BGPSession:
        """Create the session for one external peering over ``relay_link``."""
        if relay_link.link_id in self.sessions:
            raise ValueError(f"peering already bound to {relay_link.name}")
        session = BGPSession(
            self,
            relay_link,
            policy=policy,
            timers=timers if timers is not None else self.timers,
            local_asn=peering.member_asn,
        )
        self.sessions[relay_link.link_id] = session
        self.peering_of[relay_link.link_id] = peering
        self._rib_in[relay_link.link_id] = AdjRibIn(0)
        self._rib_out[relay_link.link_id] = AdjRibOut(0)
        return session

    def start(self) -> None:
        """Begin connecting all configured sessions."""
        for session in self.sessions.values():
            session.start()

    # ------------------------------------------------------------------
    # controller-speaker partition (fault-injection semantics)
    # ------------------------------------------------------------------
    def partition(self) -> None:
        """Cut the speaker-controller channel (both directions)."""
        if not self.controller_reachable:
            return
        self.controller_reachable = False
        self.bus.record("speaker.partition", self.name)

    def heal_partition(self) -> None:
        """Restore the channel and resynchronize both directions.

        Route/peering events that happened during the partition were
        dropped; the controller re-reads the speaker's current RIBs by
        recomputing every known prefix, and every session reconsiders
        its advertisement against the controller's current decisions.
        """
        if self.controller_reachable:
            return
        self.controller_reachable = True
        self.bus.record("speaker.partition.heal", self.name)
        if self.controller is None:
            return
        prefixes = set(self.controller.known_prefixes())
        prefixes.update(self.known_external_prefixes())
        self.controller.mark_dirty(sorted(prefixes))
        for prefix in sorted(prefixes):
            self.schedule_all_sessions(prefix)

    def _drop_partitioned(self, what: str) -> None:
        self.bus.record("speaker.partition.drop", self.name, event=what)

    def peerings(self) -> List[Peering]:
        """All configured peerings, deterministic order."""
        return [self.peering_of[lid] for lid in sorted(self.peering_of)]

    def session_for(self, peering: Peering) -> Optional[BGPSession]:
        """The session bound to one peering, if any."""
        for link_id, p in self.peering_of.items():
            if p == peering:
                return self.sessions[link_id]
        return None

    def adj_rib_in(self, session: BGPSession) -> AdjRibIn:
        """Per-peer Adj-RIB-In for a session."""
        return self._rib_in[session.link.link_id]

    def adj_rib_out(self, session: BGPSession) -> AdjRibOut:
        """Per-peer Adj-RIB-Out for a session."""
        return self._rib_out[session.link.link_id]

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, link: Link, message: Message) -> None:
        """Control-plane dispatch for one delivered message."""
        if isinstance(message, PeeringStatus):
            self._handle_peering_status(link, message)
            return
        if isinstance(message, BGPMessage):
            session = self.sessions.get(link.link_id)
            if session is not None:
                session.handle_message(message)

    def _handle_peering_status(self, link: Link, status: PeeringStatus) -> None:
        session = self.sessions.get(link.link_id)
        if session is None:
            return
        self.bus.record(
            "speaker.peering", self.name,
            switch=status.switch, peer=status.peer, up=status.up,
        )
        if status.up:
            session.peer_reachable()
        else:
            session.peer_unreachable()

    def link_state_changed(self, link: Link) -> None:
        """React to an attached link flipping up/down."""
        session = self.sessions.get(link.link_id)
        if session is not None:
            session.link_state_changed()

    # ------------------------------------------------------------------
    # BGPSession host interface
    # ------------------------------------------------------------------
    def session_up(self, session: BGPSession) -> None:
        """Session reached ESTABLISHED: reset RIBs and resync."""
        link_id = session.link.link_id
        self._rib_in[link_id] = AdjRibIn(session.peer_asn, session.peer_name)
        self._rib_out[link_id] = AdjRibOut(session.peer_asn, session.peer_name)
        peering = self.peering_of[link_id]
        self.bus.record(
            "speaker.session.up", self.name,
            peering=str(peering), peer_asn=session.peer_asn,
        )
        obs = self.bus.obs
        if obs is not None and obs.current is None:
            # Timer-driven establishment is its own root cause (mirrors
            # BGPRouter.session_up).
            ctx = obs.emit_root(
                "bgp.session.up", self.name, peering=str(peering)
            )
            with activation(obs, ctx):
                session.resync()
        else:
            session.resync()
        if self.controller is None:
            return
        if not self.controller_reachable:
            self._drop_partitioned("peering_established")
            return
        self.controller.peering_established(peering)

    def session_down(self, session: BGPSession, *, reason: str = "") -> None:
        """Session lost: flush per-peer state, re-decide."""
        link_id = session.link.link_id
        peering = self.peering_of[link_id]
        affected = self._rib_in[link_id].clear()
        self._rib_out[link_id].clear()
        self.bus.record(
            "speaker.session.down", self.name,
            peering=str(peering), reason=reason,
        )
        if self.controller is None:
            return
        if not self.controller_reachable:
            self._drop_partitioned("peering_lost")
            return
        obs = self.bus.obs
        if obs is not None and obs.current is None:
            ctx = obs.emit_root(
                "bgp.session.down", self.name,
                peering=str(peering), reason=reason,
            )
            with activation(obs, ctx):
                self.controller.peering_lost(peering, affected)
        else:
            self.controller.peering_lost(peering, affected)

    def enqueue_update(self, session: BGPSession, update: BGPUpdate) -> None:
        """Queue a received UPDATE for serialized processing."""
        self.bus.record_lazy(
            "bgp.update.rx", self.name,
            lambda: {
                "peer": session.peer_name,
                "peering": str(self.peering_of[session.link.link_id]),
                "announced": [
                    (str(p), str(a.as_path)) for p, a in update.announced
                ],
                "withdrawn": [str(p) for p in update.withdrawn],
                "update_id": update.update_id,
            },
        )
        # Small parse delay, then apply (the speaker is a thin proxy; it
        # does not serialize like a full bgpd).  The deferred apply
        # re-enters the rx span's causal context captured here.
        obs = self.bus.obs
        ctx = obs.last_ctx if obs is not None else None
        self.sim.schedule(
            0.002, lambda: self._apply_in_context(session, update, ctx),
            label=f"{self.name}:proc",
        )

    def _apply_in_context(
        self, session: BGPSession, update: BGPUpdate, ctx
    ) -> None:
        with activation(self.bus.obs, ctx):
            self._apply_update(session, update)

    def _apply_update(self, session: BGPSession, update: BGPUpdate) -> None:
        if not session.established:
            return
        self.updates_processed += 1
        link_id = session.link.link_id
        peering = self.peering_of[link_id]
        rib_in = self._rib_in[link_id]
        affected: List[Prefix] = []
        for prefix in update.withdrawn:
            if rib_in.withdraw(prefix):
                affected.append(prefix)
        for prefix, attrs in update.announced:
            # Per-session loop check against the member's own ASN; the
            # sub-cluster-wide check happens in the graph transform.
            if attrs.as_path.contains(peering.member_asn):
                if rib_in.withdraw(prefix):
                    affected.append(prefix)
                continue
            route = Route(
                prefix=prefix, attrs=attrs,
                peer_asn=session.peer_asn, peer_name=session.peer_name,
                learned_at=self.sim.now,
            )
            if rib_in.update(route):
                affected.append(prefix)
        if affected and self.controller is not None:
            if not self.controller_reachable:
                self._drop_partitioned("route_event")
                return
            self.controller.route_event(peering, affected)

    def outbound_diff(
        self, session: BGPSession, prefix: Prefix
    ) -> Optional[Tuple[str, Optional[PathAttributes]]]:
        """Ask the controller what this peering should see, diff vs sent."""
        if not self.controller_reachable:
            # Partitioned: no policy input, so the current advertisement
            # stands (returning None attrs here would send a spurious
            # withdrawal for routes the controller still wants out).
            return None
        peering = self.peering_of[session.link.link_id]
        attrs: Optional[PathAttributes] = None
        if self.controller is not None:
            attrs = self.controller.desired_advertisement(peering, prefix)
        return self.adj_rib_out(session).diff(prefix, attrs)

    # ------------------------------------------------------------------
    # controller-facing queries
    # ------------------------------------------------------------------
    def external_routes(self, prefix: Optional[Prefix] = None) -> List[ExternalRoute]:
        """Snapshot of all usable external routes (per peering best)."""
        out: List[ExternalRoute] = []
        for link_id, rib_in in self._rib_in.items():
            session = self.sessions[link_id]
            if not session.established:
                continue
            peering = self.peering_of[link_id]
            for route in rib_in:
                if prefix is not None and route.prefix != prefix:
                    continue
                out.append(
                    ExternalRoute(
                        peering=peering,
                        prefix=route.prefix,
                        as_path=route.attrs.as_path,
                        origin=route.attrs.origin,
                        med=route.attrs.med,
                        learned_at=route.learned_at,
                    )
                )
        return out

    def known_external_prefixes(self) -> List[Prefix]:
        """Sorted prefixes present in any Adj-RIB-In."""
        seen = set()
        for rib_in in self._rib_in.values():
            seen.update(rib_in.prefixes())
        return sorted(seen)

    def schedule_all_sessions(self, prefix: Prefix) -> None:
        """Let every peering reconsider its advertisement for ``prefix``."""
        if not self.controller_reachable:
            self._drop_partitioned("advertise")
            return
        for link_id in sorted(self.sessions):
            self.sessions[link_id].schedule_route(prefix)
