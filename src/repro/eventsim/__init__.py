"""Discrete-event simulation kernel (the framework's Mininet substitute).

Public surface:

- :class:`Simulator` — deterministic event loop with virtual time,
  seeded random sub-streams, and exact convergence detection via
  foreground/background event classification.
- :class:`Timer`, :class:`PeriodicTimer`, :class:`DebounceTimer` —
  the timer disciplines BGP and the IDR controller need.
- :class:`TraceLog` / :class:`TraceRecord` — structured logging consumed
  by the analysis tools.
"""

from .core import Event, SimulationError, Simulator
from .timer import DebounceTimer, PeriodicTimer, Timer
from .trace import ROUTE_AFFECTING, TraceLog, TraceRecord

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "Timer",
    "PeriodicTimer",
    "DebounceTimer",
    "TraceLog",
    "TraceRecord",
    "ROUTE_AFFECTING",
]
