"""Discrete-event simulation kernel (the framework's Mininet substitute).

Public surface:

- :class:`Simulator` — deterministic event loop with virtual time,
  seeded random sub-streams, and exact convergence detection via
  foreground/background event classification.
- :class:`Timer`, :class:`PeriodicTimer`, :class:`DebounceTimer` —
  the timer disciplines BGP and the IDR controller need.
- :class:`InstrumentationBus` — the publish/subscribe hub every
  component emits typed records on.
- :class:`TraceLog` / :class:`TraceRecord` — bounded record capture
  (one bus subscriber) consumed by the analysis tools.
- :class:`MetricsRegistry` — streaming counters/gauges/histograms.
"""

from .bus import InstrumentationBus, ROUTE_AFFECTING, Subscription, bus_of
from .core import SCHEDULERS, CalendarQueue, Event, SimulationError, Simulator
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_snapshot,
    merge_snapshots,
)
from .timer import DebounceTimer, PeriodicTimer, Timer
from .trace import TraceLog, TraceRecord

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "CalendarQueue",
    "SCHEDULERS",
    "Timer",
    "PeriodicTimer",
    "DebounceTimer",
    "InstrumentationBus",
    "Subscription",
    "bus_of",
    "TraceLog",
    "TraceRecord",
    "ROUTE_AFFECTING",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "format_snapshot",
]
