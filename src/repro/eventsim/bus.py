"""Streaming instrumentation bus — the framework's logging backbone.

Every component publishes typed :class:`TraceRecord` events here instead
of appending to a log directly; subscribers (the bounded
:class:`~repro.eventsim.trace.TraceLog`, the streaming convergence
tracker, the metrics registry, live visualizers) each receive exactly
the records they asked for.  This is the publish/subscribe layer that
lets large sweeps keep bounded — or zero — trace memory while online
consumers compute in O(1) per record what previously required full-trace
scans.

Records carry a dotted ``category`` (``bgp.update.rx``, ``fib.change``,
``controller.recompute`` ...), the node name, and a free-form payload
dict.  Categories listed in :data:`ROUTE_AFFECTING` are the ones whose
last occurrence after an injected event defines the convergence instant.

Subscriptions take an optional category filter (dotted-prefix matching,
same convention as :meth:`TraceRecord.matches`) and an optional sampling
stride (deliver every Nth matching record), so a subscriber can bound
its own cost independently of the publishing rate.  The bus itself
maintains per-category record counts in O(1) regardless of who is
subscribed — counting is the one piece of state every consumer needs.

Lazy publishing (:meth:`InstrumentationBus.record_lazy`): hot emitters
hand the bus a *payload thunk* instead of a built dict.  The bus first
checks — against its compiled per-category route — whether anything will
actually take this record (a subscriber whose sampling stride is due, or
an attached provenance tracker that wants the category).  Only then does
the thunk run and a :class:`TraceRecord` get built; otherwise the cost
of the call is the unconditional count increment and a tuple lookup.
The contract for subscriber authors: a record's ``data`` dict is built
at publish time whenever *any* taker exists, so every taker of the same
occurrence sees the same payload, and payloads always reflect state at
the publish instant — laziness is never observable, only cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "TraceRecord",
    "Subscription",
    "InstrumentationBus",
    "ROUTE_AFFECTING",
    "bus_of",
]

#: Categories that indicate routing state is still in flux.  The
#: convergence time of an injected event is the timestamp of the last
#: record in one of these categories (see ``framework.convergence``).
ROUTE_AFFECTING = frozenset(
    {
        "bgp.update.tx",
        "bgp.update.rx",
        "bgp.decision",
        "bgp.originate",
        "bgp.withdraw",
        "fib.change",
        "controller.recompute",
        "controller.flow_install",
        "controller.advertise",
    }
)

#: Shared empty payload for records published without data.  Never
#: mutated — ``TraceRecord`` consumers only read ``data``.
_EMPTY_DATA: dict = {}


class TraceRecord(NamedTuple):
    """One timestamped instrumentation record.

    A ``NamedTuple`` rather than a dataclass because construction is on
    the per-simulated-message hot path: the C-level tuple constructor is
    roughly twice as fast as a frozen dataclass ``__init__``.  Field
    order (``time, category, node, data``) is part of the API — existing
    code constructs records positionally.
    """

    time: float
    category: str
    node: str
    data: dict = _EMPTY_DATA

    def matches(self, prefix: str) -> bool:
        """True if this record's category equals or is nested under ``prefix``."""
        return self.category == prefix or self.category.startswith(prefix + ".")


@dataclass
class Subscription:
    """One subscriber's standing request for records.

    ``categories`` is None for "everything" or an iterable of dotted
    prefixes; a record is delivered when its category equals a prefix or
    nests under it.  ``sample`` delivers every Nth matching record (the
    first match always delivers, so short runs are never empty).
    """

    callback: Callable[[TraceRecord], None]
    categories: Optional[Tuple[str, ...]] = None
    sample: int = 1
    name: str = ""
    _seen: int = field(default=0, repr=False)

    def wants(self, category: str) -> bool:
        """Category-filter check (prefix semantics, no sampling)."""
        if self.categories is None:
            return True
        for prefix in self.categories:
            if category == prefix or category.startswith(prefix + "."):
                return True
        return False

    def take(self) -> bool:
        """Advance the sampling stride; True if this occurrence delivers.

        Splitting the stride decision from the callback lets the bus ask
        "will anyone retain this record?" *before* paying to build it.
        """
        seen = self._seen
        self._seen = seen + 1
        return self.sample <= 1 or seen % self.sample == 0

    def deliver(self, record: TraceRecord) -> None:
        """Hand one matching record to the callback, honoring sampling."""
        if self.take():
            self.callback(record)


class InstrumentationBus:
    """Publish/subscribe hub for all emulation instrumentation.

    Components publish via :meth:`record` (eager payload) or
    :meth:`record_lazy` (payload thunk); the per-category dispatch route
    is compiled and cached, so the steady-state cost of a record is one
    dict lookup plus one callback per interested subscriber — or, on the
    lazy path with no takers, nothing beyond the count.  Per-category
    totals (:attr:`counts`) are maintained unconditionally — they are
    the O(1) backbone of activity counting (update/decision/FIB deltas)
    and survive even a zero-subscriber, zero-trace run.
    """

    def __init__(self, sim) -> None:
        self._sim = sim
        self._subscriptions: List[Subscription] = []
        #: total records published per exact category.
        self.counts: Dict[str, int] = {}
        #: category -> compiled ``(eager, sampled, subs, obs_wants)``
        #: route (see :meth:`_compile`).
        self._routes: Dict[str, tuple] = {}
        #: records counted before the last :meth:`clear_counts` — keeps
        #: :attr:`records_published` monotonic across count resets
        #: without a per-record increment on the hot path.
        self._published_base = 0
        self._obs = None

    @property
    def now(self) -> float:
        """Current virtual time of the owning simulator."""
        return self._sim.now

    @property
    def records_published(self) -> int:
        """Total records ever published (derived from the counts)."""
        return self._published_base + sum(self.counts.values())

    @property
    def obs(self):
        """Attached provenance tracker (repro.obs.SpanTracker) or None."""
        return self._obs

    @obs.setter
    def obs(self, tracker) -> None:
        # Compiled routes bake in whether the tracker wants each
        # category, so attaching/detaching one invalidates them.
        self._obs = tracker
        self._routes.clear()

    # ------------------------------------------------------------------
    # subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self,
        callback: Callable[[TraceRecord], None],
        *,
        categories=None,
        sample: int = 1,
        name: str = "",
    ) -> Subscription:
        """Attach a subscriber; returns the handle for :meth:`unsubscribe`.

        ``categories``: None (everything) or an iterable of dotted
        prefixes.  ``sample``: deliver every Nth matching record.
        """
        if sample < 1:
            raise ValueError(f"sample stride must be >= 1: {sample!r}")
        subscription = Subscription(
            callback=callback,
            categories=tuple(sorted(categories)) if categories is not None else None,
            sample=sample,
            name=name,
        )
        self._subscriptions.append(subscription)
        self._routes.clear()
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach a subscriber (idempotent)."""
        try:
            self._subscriptions.remove(subscription)
        except ValueError:
            return
        self._routes.clear()

    @property
    def subscriptions(self) -> List[Subscription]:
        """The live subscriptions (read-only view)."""
        return list(self._subscriptions)

    # ------------------------------------------------------------------
    # route compilation
    # ------------------------------------------------------------------
    def _compile(self, category: str) -> tuple:
        """Build the dispatch route for one category.

        Returns ``(eager, sampled, subs, obs_wants)``:

        - ``eager`` — a prebound closure handling one occurrence end to
          end (observer hook, record construction, delivery, in that
          order), or None when nothing at all is attached — the lazy
          publishing path skips the payload thunk exactly when this is
          None or sampling defers the decision;
        - ``sampled`` — True when some matching subscription has a
          stride > 1, so taker decisions are per-occurrence;
        - ``subs`` — subscriptions whose filter matches, in subscribe
          order (delivery order is part of the determinism contract);
        - ``obs_wants`` — whether the attached tracker spans this
          category (``obs.wants(category)``; trackers without a
          ``wants`` method are assumed to want everything).
        """
        subs = tuple(s for s in self._subscriptions if s.wants(category))
        obs = self._obs
        if obs is None:
            obs_wants = False
        else:
            wants = getattr(obs, "wants", None)
            obs_wants = True if wants is None else bool(wants(category))
        sampled = any(s.sample > 1 for s in subs)
        eager: Optional[Callable[[str, dict], None]]
        if not subs and not obs_wants:
            eager = None
        elif not subs:

            def eager(node, data, _hook=obs.on_record, _cat=category):
                _hook(_cat, node, data)

        elif sampled:

            def eager(
                node, data,
                _hook=obs.on_record if obs_wants else None,
                _cat=category, _sim=self._sim, _new=tuple.__new__,
                _cls=TraceRecord, _subs=subs,
            ):
                if _hook is not None:
                    _hook(_cat, node, data)
                rec = _new(_cls, (_sim._now, _cat, node, data))
                for subscription in _subs:
                    subscription.deliver(rec)

        elif obs_wants or len(subs) > 1:

            def eager(
                node, data,
                _hook=obs.on_record if obs_wants else None,
                _cat=category, _sim=self._sim, _new=tuple.__new__,
                _cls=TraceRecord,
                _callbacks=tuple(s.callback for s in subs),
            ):
                if _hook is not None:
                    _hook(_cat, node, data)
                rec = _new(_cls, (_sim._now, _cat, node, data))
                for callback in _callbacks:
                    callback(rec)

        else:
            # The common large-run shape: one unsampled subscriber, no
            # tracker — e.g. the trace ring's bare ``deque.append``.

            def eager(
                node, data,
                _cat=category, _sim=self._sim, _new=tuple.__new__,
                _cls=TraceRecord, _callback=subs[0].callback,
            ):
                _callback(_new(_cls, (_sim._now, _cat, node, data)))

        route = (eager, sampled, subs, obs_wants)
        self._routes[category] = route
        return route

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def record(self, category: str, node: str, **data: Any) -> None:
        """Publish a record stamped with the current virtual time."""
        counts = self.counts
        counts[category] = counts.get(category, 0) + 1
        route = self._routes.get(category)
        if route is None:
            route = self._compile(category)
        eager = route[0]
        if eager is not None:
            eager(node, data)

    def record_lazy(
        self, category: str, node: str, thunk: Callable[[], dict]
    ) -> None:
        """Publish with a deferred payload: ``thunk()`` builds the data
        dict, and runs only when a taker exists for this occurrence.

        Counting is unchanged — every call increments :attr:`counts`
        exactly like :meth:`record` — so measurements and digests never
        depend on whether anyone retained the payload.
        """
        counts = self.counts
        counts[category] = counts.get(category, 0) + 1
        route = self._routes.get(category)
        if route is None:
            route = self._compile(category)
        eager = route[0]
        if eager is None:
            return
        if not route[1]:
            eager(node, thunk())
            return
        # Sampled subscribers: advance every stride, then materialize
        # only if this occurrence actually delivers somewhere.
        _, _, subs, obs_wants = route
        takers = [s for s in subs if s.take()]
        if not takers and not obs_wants:
            return
        data = thunk()
        if obs_wants:
            self._obs.on_record(category, node, data)
        if takers:
            rec = TraceRecord(self._sim._now, category, node, data)
            for subscription in takers:
                subscription.callback(rec)

    def publish(self, record: TraceRecord) -> None:
        """Publish a pre-built record (replay / testing entry point)."""
        category = record.category
        counts = self.counts
        counts[category] = counts.get(category, 0) + 1
        route = self._routes.get(category)
        if route is None:
            route = self._compile(category)
        for subscription in route[2]:
            subscription.deliver(record)

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    def count(self, category: str) -> int:
        """Total records whose category equals or nests under ``category``."""
        return sum(
            n for cat, n in self.counts.items()
            if cat == category or cat.startswith(category + ".")
        )

    def clear_counts(self) -> None:
        """Reset the per-category totals (subscribers are untouched)."""
        self._published_base += sum(self.counts.values())
        self.counts.clear()

    def __repr__(self) -> str:
        return (
            f"<InstrumentationBus subscribers={len(self._subscriptions)} "
            f"published={self.records_published}>"
        )


def bus_of(instrument) -> InstrumentationBus:
    """Normalize a bus-or-trace handle to the underlying bus.

    Emitting layers accept either an :class:`InstrumentationBus` or a
    legacy :class:`~repro.eventsim.trace.TraceLog` (which owns a bus),
    so existing construction code keeps working.
    """
    if isinstance(instrument, InstrumentationBus):
        return instrument
    bus = getattr(instrument, "bus", None)
    if isinstance(bus, InstrumentationBus):
        return bus
    raise TypeError(
        f"expected an InstrumentationBus or TraceLog, got {instrument!r}"
    )
