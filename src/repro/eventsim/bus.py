"""Streaming instrumentation bus — the framework's logging backbone.

Every component publishes typed :class:`TraceRecord` events here instead
of appending to a log directly; subscribers (the bounded
:class:`~repro.eventsim.trace.TraceLog`, the streaming convergence
tracker, the metrics registry, live visualizers) each receive exactly
the records they asked for.  This is the publish/subscribe layer that
lets large sweeps keep bounded — or zero — trace memory while online
consumers compute in O(1) per record what previously required full-trace
scans.

Records carry a dotted ``category`` (``bgp.update.rx``, ``fib.change``,
``controller.recompute`` ...), the node name, and a free-form payload
dict.  Categories listed in :data:`ROUTE_AFFECTING` are the ones whose
last occurrence after an injected event defines the convergence instant.

Subscriptions take an optional category filter (dotted-prefix matching,
same convention as :meth:`TraceRecord.matches`) and an optional sampling
stride (deliver every Nth matching record), so a subscriber can bound
its own cost independently of the publishing rate.  The bus itself
maintains per-category record counts in O(1) regardless of who is
subscribed — counting is the one piece of state every consumer needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "TraceRecord",
    "Subscription",
    "InstrumentationBus",
    "ROUTE_AFFECTING",
    "bus_of",
]

#: Categories that indicate routing state is still in flux.  The
#: convergence time of an injected event is the timestamp of the last
#: record in one of these categories (see ``framework.convergence``).
ROUTE_AFFECTING = frozenset(
    {
        "bgp.update.tx",
        "bgp.update.rx",
        "bgp.decision",
        "bgp.originate",
        "bgp.withdraw",
        "fib.change",
        "controller.recompute",
        "controller.flow_install",
        "controller.advertise",
    }
)


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped instrumentation record."""

    time: float
    category: str
    node: str
    data: dict = field(default_factory=dict)

    def matches(self, prefix: str) -> bool:
        """True if this record's category equals or is nested under ``prefix``."""
        return self.category == prefix or self.category.startswith(prefix + ".")


@dataclass
class Subscription:
    """One subscriber's standing request for records.

    ``categories`` is None for "everything" or an iterable of dotted
    prefixes; a record is delivered when its category equals a prefix or
    nests under it.  ``sample`` delivers every Nth matching record (the
    first match always delivers, so short runs are never empty).
    """

    callback: Callable[[TraceRecord], None]
    categories: Optional[Tuple[str, ...]] = None
    sample: int = 1
    name: str = ""
    _seen: int = field(default=0, repr=False)

    def wants(self, category: str) -> bool:
        """Category-filter check (prefix semantics, no sampling)."""
        if self.categories is None:
            return True
        for prefix in self.categories:
            if category == prefix or category.startswith(prefix + "."):
                return True
        return False

    def deliver(self, record: TraceRecord) -> None:
        """Hand one matching record to the callback, honoring sampling."""
        seen = self._seen
        self._seen = seen + 1
        if self.sample <= 1 or seen % self.sample == 0:
            self.callback(record)


class InstrumentationBus:
    """Publish/subscribe hub for all emulation instrumentation.

    Components publish via :meth:`record`; the per-category dispatch
    list is cached, so the steady-state cost of a record is one dict
    lookup plus one callback per interested subscriber.  Per-category
    totals (:attr:`counts`) are maintained unconditionally — they are
    the O(1) backbone of activity counting (update/decision/FIB deltas)
    and survive even a zero-subscriber, zero-trace run.
    """

    def __init__(self, sim) -> None:
        self._sim = sim
        self._subscriptions: List[Subscription] = []
        #: total records published per exact category.
        self.counts: Dict[str, int] = {}
        #: category -> subscriptions that want it (dispatch cache).
        self._routes: Dict[str, Tuple[Subscription, ...]] = {}
        self.records_published = 0
        #: attached provenance tracker (repro.obs.SpanTracker) or None.
        #: Kept a plain attribute so the off-path cost is one load and a
        #: None check, same discipline as the simulator dispatch hook.
        self.obs = None

    @property
    def now(self) -> float:
        """Current virtual time of the owning simulator."""
        return self._sim.now

    # ------------------------------------------------------------------
    # subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self,
        callback: Callable[[TraceRecord], None],
        *,
        categories=None,
        sample: int = 1,
        name: str = "",
    ) -> Subscription:
        """Attach a subscriber; returns the handle for :meth:`unsubscribe`.

        ``categories``: None (everything) or an iterable of dotted
        prefixes.  ``sample``: deliver every Nth matching record.
        """
        if sample < 1:
            raise ValueError(f"sample stride must be >= 1: {sample!r}")
        subscription = Subscription(
            callback=callback,
            categories=tuple(sorted(categories)) if categories is not None else None,
            sample=sample,
            name=name,
        )
        self._subscriptions.append(subscription)
        self._routes.clear()
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach a subscriber (idempotent)."""
        try:
            self._subscriptions.remove(subscription)
        except ValueError:
            return
        self._routes.clear()

    @property
    def subscriptions(self) -> List[Subscription]:
        """The live subscriptions (read-only view)."""
        return list(self._subscriptions)

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def record(self, category: str, node: str, **data: Any) -> None:
        """Publish a record stamped with the current virtual time."""
        self.counts[category] = self.counts.get(category, 0) + 1
        self.records_published += 1
        obs = self.obs
        if obs is not None:
            obs.on_record(category, node, data)
        routes = self._routes.get(category)
        if routes is None:
            routes = tuple(
                s for s in self._subscriptions if s.wants(category)
            )
            self._routes[category] = routes
        if not routes:
            return
        rec = TraceRecord(self._sim.now, category, node, data)
        for subscription in routes:
            subscription.deliver(rec)

    def publish(self, record: TraceRecord) -> None:
        """Publish a pre-built record (replay / testing entry point)."""
        self.counts[record.category] = self.counts.get(record.category, 0) + 1
        self.records_published += 1
        routes = self._routes.get(record.category)
        if routes is None:
            routes = tuple(
                s for s in self._subscriptions if s.wants(record.category)
            )
            self._routes[record.category] = routes
        for subscription in routes:
            subscription.deliver(record)

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    def count(self, category: str) -> int:
        """Total records whose category equals or nests under ``category``."""
        return sum(
            n for cat, n in self.counts.items()
            if cat == category or cat.startswith(category + ".")
        )

    def clear_counts(self) -> None:
        """Reset the per-category totals (subscribers are untouched)."""
        self.counts.clear()

    def __repr__(self) -> str:
        return (
            f"<InstrumentationBus subscribers={len(self._subscriptions)} "
            f"published={self.records_published}>"
        )


def bus_of(instrument) -> InstrumentationBus:
    """Normalize a bus-or-trace handle to the underlying bus.

    Emitting layers accept either an :class:`InstrumentationBus` or a
    legacy :class:`~repro.eventsim.trace.TraceLog` (which owns a bus),
    so existing construction code keeps working.
    """
    if isinstance(instrument, InstrumentationBus):
        return instrument
    bus = getattr(instrument, "bus", None)
    if isinstance(bus, InstrumentationBus):
        return bus
    raise TypeError(
        f"expected an InstrumentationBus or TraceLog, got {instrument!r}"
    )
