"""Discrete-event simulation kernel.

The kernel replaces Mininet's real-time execution with deterministic
virtual time.  Everything in the emulation framework — link propagation,
BGP timers, controller debounce delays, probe streams — is driven by a
single :class:`Simulator` event loop.

Events are classified as *foreground* (work that can still change routing
state: message deliveries, MRAI expirations, controller recomputations)
or *background* (periodic housekeeping that never changes routing state
by itself: keepalives, probe transmissions, collector flushes).  The
distinction is what lets :meth:`Simulator.run_until_settled` detect
routing convergence exactly: the network has converged when no foreground
event remains in the queue.

Two interchangeable event queues back the loop (``scheduler=`` knob):

- ``"heap"`` — the classic binary heap (``heapq``), O(log n) per
  operation.  The default, and the reference for determinism.
- ``"calendar"`` — a calendar queue (Brown 1988): events hash into
  time-width buckets ("days"), each a small heap; pops scan forward from
  the current day, so steady-state cost per event is O(1) when the bucket
  width tracks the mean inter-event gap.  The queue resizes (doubling /
  halving buckets, re-estimating the width from the earliest pending
  gaps) deterministically — no wall clock, no randomness.

Both schedulers pop events in the exact global ``(time, seq)`` order, so
a run is bit-identical under either; the scheduler-equivalence test
harness (``tests/properties/test_scheduler_equivalence.py`` and
``tests/experiments/test_scheduler_differential.py``) holds them to that.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

__all__ = ["Event", "Simulator", "SimulationError", "CalendarQueue", "SCHEDULERS"]


class SimulationError(RuntimeError):
    """Raised on kernel misuse (negative delays) or livelock detection."""


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    tie-breaker so same-time events run in scheduling order, which keeps
    runs deterministic.  Cancel through :meth:`Simulator.cancel` so the
    kernel's foreground bookkeeping stays exact.  ``slots=True`` because
    dense-graph runs keep hundreds of thousands of these alive in the
    heap at once.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    background: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)


#: Recognized ``scheduler=`` values for :class:`Simulator`.
SCHEDULERS = ("heap", "calendar")


class CalendarQueue:
    """Calendar-queue priority queue over :class:`Event` (Brown 1988).

    Virtual time is divided into fixed-width *days*; day ``d`` covers
    ``[d*width, (d+1)*width)`` and hashes to bucket ``d % nbuckets``
    (one *year* = ``nbuckets`` days).  Each bucket is a small heap, so
    same-day events — and days colliding a year apart — still pop in
    exact ``(time, seq)`` order.  Day membership is always computed as
    ``int(event.time / width)``, the same expression push uses for the
    bucket index, so float rounding can never strand an event between a
    bucket and its day.

    Determinism: pops yield the exact global ``(time, seq)`` order (the
    scan visits days in order; within a day the bucket heap orders by
    ``Event.__lt__``; a fruitless full-year scan falls back to the true
    minimum over bucket heads and jumps the calendar there).  Resizes
    are triggered purely by the queue length and re-estimate the bucket
    width from the gaps between the earliest pending events — no wall
    clock and no randomness, so a given push/pop/cancel sequence always
    yields the same internal state.
    """

    __slots__ = ("_buckets", "_nbuckets", "_width", "_size", "_last", "_head")

    #: never shrink below this many buckets.
    MIN_BUCKETS = 16
    #: width estimation looks at the gaps among this many earliest events.
    SAMPLE = 64

    def __init__(self, *, width: float = 0.001, nbuckets: int = MIN_BUCKETS) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive: {width!r}")
        self._buckets: List[List[Event]] = [[] for _ in range(nbuckets)]
        self._nbuckets = nbuckets
        self._width = width
        self._size = 0
        #: time of the last popped event — the scan starts at its day.
        self._last = 0.0
        #: memoized ``(bucket, head_event)`` from the last search, so
        #: the peek-then-pop pattern of the run loop scans only once.
        self._head: Optional[tuple] = None

    def __len__(self) -> int:
        return self._size

    @property
    def width(self) -> float:
        """Current bucket width in virtual seconds."""
        return self._width

    @property
    def nbuckets(self) -> int:
        """Current bucket count (one year = nbuckets * width)."""
        return self._nbuckets

    def push(self, event: Event) -> None:
        if self._size >= self._nbuckets * 2:
            self._resize(self._nbuckets * 2)
        bucket = self._buckets[int(event.time / self._width) % self._nbuckets]
        heappush(bucket, event)
        self._size += 1
        head = self._head
        if head is not None and event < head[1]:
            # The new event outranks the memoized head; since it also
            # outranks its own bucket's previous minimum it is now that
            # bucket's top, so the memo can be updated in place.
            self._head = (bucket, event)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest *live* event, or None.

        Cancelled events are discarded on the way (the same lazy
        deletion the heap scheduler uses).
        """
        while self._size:
            head = self._head
            if head is not None:
                self._head = None
                bucket, event = head
            else:
                if (
                    self._nbuckets > self.MIN_BUCKETS
                    and self._size < self._nbuckets // 4
                ):
                    self._resize(self._nbuckets // 2)
                    if not self._size:
                        break
                bucket, event = self._find()
            heappop(bucket)
            self._size -= 1
            self._last = event.time
            if not event.cancelled:
                return event
        return None

    def peek(self) -> Optional[Event]:
        """The earliest live event without removing it, or None.

        Discards cancelled events blocking the head, so a ``peek`` is
        always consistent with the ``pop`` that follows it — even if a
        resize (which purges cancelled events wholesale) runs between.
        The located head is memoized, so the run loop's peek-then-pop
        costs one bucket search, not two.
        """
        while self._size:
            head = self._head
            if head is None:
                head = self._head = self._find()
            event = head[1]
            if not event.cancelled:
                return event
            self._head = None
            heappop(head[0])
            self._size -= 1
            self._last = event.time
        return None

    def _find(self):
        """Locate the earliest event; returns ``(bucket, event)``.

        Scans days forward from the last popped time.  If a whole year
        passes without a due event (sparse far-future queue), jump the
        calendar straight to the true minimum over bucket heads.
        """
        width = self._width
        nbuckets = self._nbuckets
        buckets = self._buckets
        day = int(self._last / width)
        for _ in range(nbuckets):
            bucket = buckets[day % nbuckets]
            if bucket and int(bucket[0].time / width) == day:
                return bucket, bucket[0]
            day += 1
        # Nothing due within a year of the cursor: the earliest bucket
        # head is the global minimum (heads are per-bucket minima and
        # Event orders by (time, seq)).
        best = min(bucket[0] for bucket in buckets if bucket)
        return buckets[int(best.time / width) % nbuckets], best

    def _resize(self, nbuckets: int) -> None:
        """Re-bucket every pending event into ``nbuckets`` buckets.

        Also purges cancelled events (the heap scheduler purges them
        lazily on pop; a resize is the calendar's natural amnesty) and
        re-estimates the bucket width as twice the mean gap between the
        earliest pending events, clamped to a sane floor — the classic
        calendar-queue heuristic, made deterministic by sorting.
        """
        events = [
            event
            for bucket in self._buckets
            for event in bucket
            if not event.cancelled
        ]
        events.sort()
        sample = events[: self.SAMPLE]
        gaps = [
            later.time - earlier.time
            for earlier, later in zip(sample, sample[1:])
            if later.time > earlier.time
        ]
        if gaps:
            self._width = max(2.0 * sum(gaps) / len(gaps), 1e-9)
        self._nbuckets = nbuckets
        width = self._width
        buckets: List[List[Event]] = [[] for _ in range(nbuckets)]
        for event in events:
            heappush(buckets[int(event.time / width) % nbuckets], event)
        self._buckets = buckets
        self._size = len(events)
        self._head = None


class Simulator:
    """Deterministic discrete-event loop with a virtual clock.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random streams.  Component code asks
        for named sub-streams via :meth:`rng` so that adding a new
        randomness consumer does not perturb existing ones.
    scheduler:
        ``"heap"`` (default, binary heap) or ``"calendar"`` (calendar
        queue).  Both pop in the exact same ``(time, seq)`` order, so
        runs are bit-identical either way; the calendar amortizes to
        O(1) per event on large steady workloads.
    """

    def __init__(self, seed: int = 0, *, scheduler: str = "heap") -> None:
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; choose from {SCHEDULERS}"
            )
        self._queue: list[Event] = []
        self._calendar = CalendarQueue() if scheduler == "calendar" else None
        self.scheduler = scheduler
        self._seq = itertools.count()
        self._now = 0.0
        self._seed = seed
        self._rngs: dict[str, Any] = {}
        self._live_foreground = 0
        self.events_processed = 0
        self._dispatch_hook: Optional[Callable[[Event, float], None]] = None

    # ------------------------------------------------------------------
    # clock & randomness
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        """The seed this simulator was created with."""
        return self._seed

    def rng(self, stream: str):
        """Return a named, seeded ``random.Random`` sub-stream.

        The same ``(seed, stream)`` pair always yields the same sequence,
        independent of any other stream, so experiments are reproducible
        bit-for-bit across runs and code reorderings.
        """
        import random

        if stream not in self._rngs:
            self._rngs[stream] = random.Random(f"{self._seed}:{stream}")
        return self._rngs[stream]

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        background: bool = False,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event` handle for :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        event = Event(
            time=self._now + delay,
            seq=next(self._seq),
            callback=callback,
            background=background,
            label=label,
        )
        if self._calendar is not None:
            self._calendar.push(event)
        else:
            heapq.heappush(self._queue, event)
        if not background:
            self._live_foreground += 1
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        background: bool = False,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute virtual ``time`` (must be >= now)."""
        return self.schedule(
            time - self._now, callback, background=background, label=label
        )

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        if event.cancelled:
            return
        event.cancelled = True
        if not event.background:
            self._live_foreground -= 1

    def pending_foreground(self) -> int:
        """Number of live foreground events still queued."""
        return self._live_foreground

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def set_dispatch_hook(
        self, hook: Optional[Callable[[Event, float], None]]
    ) -> None:
        """Install a wall-clock profiling hook around event dispatch.

        ``hook(event, wall_seconds)`` runs after every processed event;
        pass None to uninstall.  With no hook the per-event overhead is
        a single None check (see ``MetricsRegistry.profile_simulator``).
        """
        self._dispatch_hook = hook

    def step(self) -> bool:
        """Run the single next live event.  Returns False if queue is empty."""
        event = self._pop_live()
        if event is None:
            return False
        self._now = event.time
        if not event.background:
            self._live_foreground -= 1
        self.events_processed += 1
        hook = self._dispatch_hook
        if hook is None:
            event.callback()
        else:
            started = time.perf_counter()
            event.callback()
            hook(event, time.perf_counter() - started)
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events until the queue empties or virtual time passes ``until``.

        Returns the virtual time at which the loop stopped.
        """
        processed = 0
        while True:
            head = self._peek_live()
            if head is None:
                break
            if until is not None and head.time > until:
                break
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely livelock"
                )
            self.step()
            processed += 1
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_settled(
        self,
        *,
        horizon: float = 1e6,
        max_events: int = 10_000_000,
    ) -> float:
        """Run until no *foreground* event remains (routing convergence).

        Background events due before the settling point run in order;
        later ones stay queued.  Raises :class:`SimulationError` if the
        horizon or event budget is hit first — that indicates the
        protocol under test is livelocked (e.g. a persistent route
        oscillation, cf. BGP "wedgies").
        """
        processed = 0
        while self._live_foreground > 0:
            head = self._peek_live()
            assert head is not None, "foreground counter out of sync"
            if head.time > horizon:
                raise SimulationError(
                    f"not settled by horizon t={horizon}: {head.label!r} pending"
                )
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely livelock"
                )
            self.step()
            processed += 1
        return self._now

    def _pop_live(self) -> Optional[Event]:
        calendar = self._calendar
        if calendar is not None:
            return calendar.pop()
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                return event
        return None

    def _peek_live(self) -> Optional[Event]:
        calendar = self._calendar
        if calendar is not None:
            return calendar.peek()
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
