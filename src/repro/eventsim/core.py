"""Discrete-event simulation kernel.

The kernel replaces Mininet's real-time execution with deterministic
virtual time.  Everything in the emulation framework — link propagation,
BGP timers, controller debounce delays, probe streams — is driven by a
single :class:`Simulator` event loop.

Events are classified as *foreground* (work that can still change routing
state: message deliveries, MRAI expirations, controller recomputations)
or *background* (periodic housekeeping that never changes routing state
by itself: keepalives, probe transmissions, collector flushes).  The
distinction is what lets :meth:`Simulator.run_until_settled` detect
routing convergence exactly: the network has converged when no foreground
event remains in the queue.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on kernel misuse (negative delays) or livelock detection."""


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    tie-breaker so same-time events run in scheduling order, which keeps
    runs deterministic.  Cancel through :meth:`Simulator.cancel` so the
    kernel's foreground bookkeeping stays exact.  ``slots=True`` because
    dense-graph runs keep hundreds of thousands of these alive in the
    heap at once.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    background: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """Deterministic discrete-event loop with a virtual clock.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random streams.  Component code asks
        for named sub-streams via :meth:`rng` so that adding a new
        randomness consumer does not perturb existing ones.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._seed = seed
        self._rngs: dict[str, Any] = {}
        self._live_foreground = 0
        self.events_processed = 0
        self._dispatch_hook: Optional[Callable[[Event, float], None]] = None

    # ------------------------------------------------------------------
    # clock & randomness
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        """The seed this simulator was created with."""
        return self._seed

    def rng(self, stream: str):
        """Return a named, seeded ``random.Random`` sub-stream.

        The same ``(seed, stream)`` pair always yields the same sequence,
        independent of any other stream, so experiments are reproducible
        bit-for-bit across runs and code reorderings.
        """
        import random

        if stream not in self._rngs:
            self._rngs[stream] = random.Random(f"{self._seed}:{stream}")
        return self._rngs[stream]

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        background: bool = False,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event` handle for :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        event = Event(
            time=self._now + delay,
            seq=next(self._seq),
            callback=callback,
            background=background,
            label=label,
        )
        heapq.heappush(self._queue, event)
        if not background:
            self._live_foreground += 1
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        background: bool = False,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute virtual ``time`` (must be >= now)."""
        return self.schedule(
            time - self._now, callback, background=background, label=label
        )

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        if event.cancelled:
            return
        event.cancelled = True
        if not event.background:
            self._live_foreground -= 1

    def pending_foreground(self) -> int:
        """Number of live foreground events still queued."""
        return self._live_foreground

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def set_dispatch_hook(
        self, hook: Optional[Callable[[Event, float], None]]
    ) -> None:
        """Install a wall-clock profiling hook around event dispatch.

        ``hook(event, wall_seconds)`` runs after every processed event;
        pass None to uninstall.  With no hook the per-event overhead is
        a single None check (see ``MetricsRegistry.profile_simulator``).
        """
        self._dispatch_hook = hook

    def step(self) -> bool:
        """Run the single next live event.  Returns False if queue is empty."""
        event = self._pop_live()
        if event is None:
            return False
        self._now = event.time
        if not event.background:
            self._live_foreground -= 1
        self.events_processed += 1
        hook = self._dispatch_hook
        if hook is None:
            event.callback()
        else:
            started = time.perf_counter()
            event.callback()
            hook(event, time.perf_counter() - started)
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events until the queue empties or virtual time passes ``until``.

        Returns the virtual time at which the loop stopped.
        """
        processed = 0
        while True:
            head = self._peek_live()
            if head is None:
                break
            if until is not None and head.time > until:
                break
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely livelock"
                )
            self.step()
            processed += 1
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_settled(
        self,
        *,
        horizon: float = 1e6,
        max_events: int = 10_000_000,
    ) -> float:
        """Run until no *foreground* event remains (routing convergence).

        Background events due before the settling point run in order;
        later ones stay queued.  Raises :class:`SimulationError` if the
        horizon or event budget is hit first — that indicates the
        protocol under test is livelocked (e.g. a persistent route
        oscillation, cf. BGP "wedgies").
        """
        processed = 0
        while self._live_foreground > 0:
            head = self._peek_live()
            assert head is not None, "foreground counter out of sync"
            if head.time > horizon:
                raise SimulationError(
                    f"not settled by horizon t={horizon}: {head.label!r} pending"
                )
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely livelock"
                )
            self.step()
            processed += 1
        return self._now

    def _pop_live(self) -> Optional[Event]:
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                return event
        return None

    def _peek_live(self) -> Optional[Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
