"""Online metrics: counters, gauges, histograms over the bus.

The registry is the streaming replacement for "re-scan the trace and
count": components (or the bus itself) update metrics in O(1) per
record, and a run-end :meth:`MetricsRegistry.snapshot` travels with
every sweep artifact (JSON export, CLI summary) instead of megabytes of
raw trace.

Metrics are keyed by name plus optional labels (``category=...``,
``node=...``), rendered Prometheus-style as ``name{k=v,...}``.  The
registry can observe an :class:`~repro.eventsim.bus.InstrumentationBus`
directly, which maintains ``records_total`` counters by category (and
optionally by node) — the built-in instrumentation every run gets for
free — and it can profile simulator event dispatch with a wall-clock
histogram via :meth:`profile_simulator`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "format_snapshot",
    "parse_key",
]


@dataclass
class Counter:
    """Monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counters only go up: {amount!r}")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (queue depth, RIB size...)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Adjust upward."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust downward."""
        self.value -= amount


#: default histogram bucket upper bounds: powers of ten from 1 µs to
#: 100 s — wide enough for both wall-clock dispatch times and virtual
#: convergence gaps.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** e for e in range(-6, 3)
)


@dataclass
class Histogram:
    """Streaming histogram: running moments plus cumulative-style buckets.

    Keeps count/sum/min/max and per-bucket counts in O(1) per
    observation — enough to report mean, spread, and a coarse
    distribution without retaining observations.
    """

    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            # one extra bucket for "over the top bound"
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-ready summary."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "buckets": {
                (f"le_{bound:g}" if i < len(self.buckets) else "inf"): n
                for i, (bound, n) in enumerate(
                    zip(list(self.buckets) + [math.inf], self.bucket_counts)
                )
                if n
            },
        }


def _escape_label(value: str) -> str:
    """Escape the characters the key syntax itself uses, so distinct
    label sets can never render to the same key (``a="1,b=2"`` must not
    collide with ``a="1", b="2"``)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace(",", "\\,")
        .replace("=", "\\=")
        .replace("}", "\\}")
    )


def _key(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(
        f"{_escape_label(k)}={_escape_label(labels[k])}"
        for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`_key`: split ``name{k=v,...}`` back into name and
    labels, undoing the ``_escape_label`` backslash escapes.

    Keys without labels come back with an empty dict.  Exposition
    layers (``repro.obs.runtime``) rely on this to rebuild the label
    set that :class:`MetricsRegistry` flattened into the storage key.
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    if not key.endswith("}"):
        raise ValueError(f"malformed metric key: {key!r}")
    name, inner = key[:brace], key[brace + 1:-1]
    labels: Dict[str, str] = {}
    part: List[str] = []
    pending_key: Optional[str] = None
    i = 0
    while i <= len(inner):
        ch = inner[i] if i < len(inner) else None
        if ch == "\\" and i + 1 < len(inner):
            part.append(inner[i + 1])
            i += 2
            continue
        if ch == "=" and pending_key is None:
            pending_key = "".join(part)
            part = []
        elif ch == "," or ch is None:
            if pending_key is None:
                if part or ch is not None:
                    raise ValueError(f"malformed metric key: {key!r}")
            else:
                labels[pending_key] = "".join(part)
                pending_key = None
                part = []
        else:
            part.append(ch)
        i += 1
    return name, labels


class MetricsRegistry:
    """Get-or-create store of named metrics with label support.

    One registry serves a whole run; components reach it through
    ``network.metrics`` (when enabled) and register custom metrics with
    plain calls — no declaration step::

        registry.counter("controller.recompute.skipped", node="ctl").inc()
        registry.histogram("bgp.rib.size").observe(len(rib))
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._subscription = None
        self._bus = None
        self._profiled_sim = None

    # ------------------------------------------------------------------
    # metric accessors (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``name`` + labels, created on first use."""
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``name`` + labels, created on first use."""
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self, name: str, *, buckets: Optional[Iterable[float]] = None,
        **labels: str,
    ) -> Histogram:
        """The histogram for ``name`` + labels, created on first use."""
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = Histogram(
                buckets=tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
            )
            self._histograms[key] = metric
        return metric

    # ------------------------------------------------------------------
    # bus + simulator integration
    # ------------------------------------------------------------------
    def observe_bus(self, bus, *, per_node: bool = False, categories=None) -> None:
        """Subscribe the built-in record counters to a bus.

        Maintains ``records_total{category=...}`` and — when ``per_node``
        — ``node_records_total{category=...,node=...}``.
        """
        if self._subscription is not None:
            raise RuntimeError("registry already observes a bus")

        if per_node:
            def on_record(rec) -> None:
                self.counter("records_total", category=rec.category).inc()
                self.counter(
                    "node_records_total",
                    category=rec.category, node=rec.node,
                ).inc()
        else:
            def on_record(rec) -> None:
                self.counter("records_total", category=rec.category).inc()

        self._bus = bus
        self._subscription = bus.subscribe(
            on_record, categories=categories, name="metrics",
        )

    def detach(self) -> None:
        """Stop observing the bus and/or simulator."""
        if self._subscription is not None and self._bus is not None:
            self._bus.unsubscribe(self._subscription)
            self._subscription = None
            self._bus = None
        if self._profiled_sim is not None:
            self._profiled_sim.set_dispatch_hook(None)
            self._profiled_sim = None

    def profile_simulator(self, sim) -> None:
        """Install a wall-clock histogram around event dispatch.

        Each processed simulator event contributes one observation to
        ``sim.dispatch_seconds`` (and bumps ``sim.events_total``); the
        hook is a single callback, so the overhead when disabled is one
        ``None`` check per event.
        """
        events = self.counter("sim.events_total")
        dispatch = self.histogram("sim.dispatch_seconds")

        def hook(event, wall_seconds: float) -> None:
            events.inc()
            dispatch.observe(wall_seconds)

        sim.set_dispatch_hook(hook)
        self._profiled_sim = sim

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready dump of every metric (stable key order)."""
        return {
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {
                k: self._gauges[k].value for k in sorted(self._gauges)
            },
            "histograms": {
                k: self._histograms[k].to_dict()
                for k in sorted(self._histograms)
            },
        }

    def clear(self) -> None:
        """Drop every metric (subscriptions stay attached)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )


def _bucket_sort_key(item: Tuple[str, int]) -> float:
    """Numeric order for bucket labels: ``le_<bound>`` ascending by
    bound, anything unparsable (``inf`` included) last."""
    label = item[0]
    if label.startswith("le_"):
        try:
            return float(label[3:])
        except ValueError:
            pass
    return math.inf


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Combine per-run snapshots into one sweep-level summary.

    Counters and histogram counts/sums add; histogram min/max widen;
    gauges keep the last seen value (they describe instantaneous state,
    so summing would be meaningless).  Degenerate inputs are tolerated:
    ``None``/empty snapshots are skipped, missing or ``None`` sections
    contribute nothing, and histograms recorded with *different* bucket
    boundaries merge by bound label (each count stays attributed to its
    own upper bound; the merged bucket dict is sorted by bound value so
    mixed boundary sets still read in order).
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for key, value in (snap.get("counters") or {}).items():
            counters[key] = counters.get(key, 0.0) + value
        for key, value in (snap.get("gauges") or {}).items():
            gauges[key] = value
        for key, hist in (snap.get("histograms") or {}).items():
            merged = histograms.setdefault(
                key,
                {"count": 0, "sum": 0.0, "min": None, "max": None,
                 "mean": 0.0, "buckets": {}},
            )
            merged["count"] += hist.get("count", 0)
            merged["sum"] += hist.get("sum", 0.0)
            for bound in ("min", "max"):
                value = hist.get(bound)
                if value is None:
                    continue
                if merged[bound] is None:
                    merged[bound] = value
                elif bound == "min":
                    merged[bound] = min(merged[bound], value)
                else:
                    merged[bound] = max(merged[bound], value)
            for bucket, n in (hist.get("buckets") or {}).items():
                merged["buckets"][bucket] = (
                    merged["buckets"].get(bucket, 0) + n
                )
    for merged in histograms.values():
        if merged["count"]:
            merged["mean"] = merged["sum"] / merged["count"]
        merged["buckets"] = dict(
            sorted(merged["buckets"].items(), key=_bucket_sort_key)
        )
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def format_snapshot(snapshot: dict, *, top: int = 20) -> str:
    """Human-readable metrics summary (the CLI's ``--metrics`` output)."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        for key, value in ranked[:top]:
            lines.append(f"  {key:<56} {value:12.0f}")
        if len(ranked) > top:
            lines.append(f"  ... and {len(ranked) - top} more")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for key in sorted(gauges):
            lines.append(f"  {key:<56} {gauges[key]:12.3f}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for key in sorted(histograms):
            h = histograms[key]
            if not h.get("count"):
                continue
            # min/max can be None even with count > 0 (snapshots merged
            # from sources that never reported extremes) — skip the
            # fields rather than crash the whole report.
            extremes = "".join(
                f" {bound}={h[bound]:.3g}"
                for bound in ("min", "max")
                if h.get(bound) is not None
            )
            lines.append(
                f"  {key}: n={h['count']} mean={h.get('mean', 0.0):.3g}"
                f"{extremes}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"
