"""Restartable one-shot and periodic timers on top of the kernel.

BGP needs several timer disciplines: per-peer MRAI (one-shot, re-armed on
demand), hold/keepalive (periodic), and the IDR controller's debounced
recomputation (one-shot that *extends* on new input).  This module keeps
that logic in one audited place instead of scattering raw ``schedule``
calls through protocol code.
"""

from __future__ import annotations

from typing import Callable, Optional

from .core import Event, Simulator

__all__ = ["Timer", "PeriodicTimer", "DebounceTimer"]


class Timer:
    """A restartable one-shot timer.

    ``start`` arms (or re-arms) the timer; ``stop`` disarms it.  The
    callback fires once per arming.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], None],
        *,
        background: bool = False,
        label: str = "timer",
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._background = background
        self._label = label
        self._event: Optional[Event] = None

    @property
    def running(self) -> bool:
        """True while armed and not yet fired."""
        return self._event is not None and not self._event.cancelled

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute virtual time of the pending expiry, or None."""
        return self._event.time if self.running else None

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now, replacing any arming."""
        self.stop()
        self._event = self._sim.schedule(
            delay, self._fire, background=self._background, label=self._label
        )

    def stop(self) -> None:
        """Disarm; safe to call when not running."""
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTimer:
    """Fires every ``interval`` seconds until stopped.

    Optional ``jitter_rng``/``jitter`` draw each period uniformly from
    ``[interval * (1 - jitter), interval]`` — the RFC 4271 style of timer
    jitter used to desynchronize keepalives and MRAI rounds.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], None],
        interval: float,
        *,
        background: bool = True,
        label: str = "periodic",
        jitter: float = 0.0,
        jitter_rng=None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval!r}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {jitter!r}")
        if jitter > 0 and jitter_rng is None:
            raise ValueError("jitter requires jitter_rng")
        self._sim = sim
        self._callback = callback
        self._interval = interval
        self._background = background
        self._label = label
        self._jitter = jitter
        self._rng = jitter_rng
        self._event: Optional[Event] = None

    @property
    def running(self) -> bool:
        """True while armed and not yet fired."""
        return self._event is not None and not self._event.cancelled

    def start(self) -> None:
        """Start ticking; first fire is one period from now."""
        self.stop()
        self._arm()

    def stop(self) -> None:
        """Disarm; safe when not running."""
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _period(self) -> float:
        if self._jitter <= 0:
            return self._interval
        low = self._interval * (1.0 - self._jitter)
        return self._rng.uniform(low, self._interval)

    def _arm(self) -> None:
        self._event = self._sim.schedule(
            self._period(), self._fire, background=self._background, label=self._label
        )

    def _fire(self) -> None:
        self._event = None
        self._arm()
        self._callback()


class DebounceTimer:
    """Coalesces a burst of triggers into a single callback.

    Used for the IDR controller's *delayed recomputation*: each route
    event calls :meth:`trigger`; the callback fires ``delay`` seconds
    after the first trigger of a burst (``extend=False``, the paper's
    rate-limiting behaviour) or after the *last* trigger (``extend=True``,
    a quiescence-style debounce, available for ablation).
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], None],
        delay: float,
        *,
        extend: bool = False,
        label: str = "debounce",
    ) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0: {delay!r}")
        self._sim = sim
        self._callback = callback
        self.delay = delay
        self._extend = extend
        self._label = label
        self._event: Optional[Event] = None
        self.triggers_coalesced = 0

    @property
    def pending(self) -> bool:
        """True while a callback is scheduled."""
        return self._event is not None and not self._event.cancelled

    def trigger(self) -> None:
        """Note an input; schedules/extends the pending callback."""
        if self.pending:
            self.triggers_coalesced += 1
            if self._extend:
                self._sim.cancel(self._event)
                self._event = self._sim.schedule(
                    self.delay, self._fire, label=self._label
                )
            return
        self._event = self._sim.schedule(self.delay, self._fire, label=self._label)

    def cancel(self) -> None:
        """Drop any pending callback."""
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
