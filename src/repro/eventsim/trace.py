"""Bounded trace capture — one subscriber on the instrumentation bus.

Historically the ``TraceLog`` *was* the instrumentation layer: every
component appended frozen records to one unbounded list, and the
analysis package re-scanned it after the run.  Publishing now happens on
the :class:`~repro.eventsim.bus.InstrumentationBus`; the trace log is
just the subscriber that retains records for offline "log file
analysis" (``repro.analysis``), with three capture controls for large
runs:

- ``categories`` — dotted-prefix filter; retain only matching records;
- ``max_records`` — ring buffer bound; old records fall off the front;
- ``sample`` — keep every Nth matching record.

The full query API (``filter``/``last_time``/``count``) is unchanged.
Per-category *counts* always reflect everything published on the bus —
even with capture disabled or filtered — because the bus maintains them
in O(1) independent of any subscriber.

For backward compatibility ``TraceLog(sim)`` still works: given a
:class:`~repro.eventsim.core.Simulator` it creates a private bus, so
unit-level code (build a router, pass a trace) needs no changes, and
``TraceLog.record`` republishes through the bus.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Iterator, Optional

from .bus import ROUTE_AFFECTING, InstrumentationBus, Subscription, TraceRecord

__all__ = ["TraceRecord", "TraceLog", "ROUTE_AFFECTING"]


class TraceLog:
    """Record-retaining subscriber with category filters and live taps.

    Taps (callbacks) observe every record published on the underlying
    bus — they are plain bus subscriptions kept here so live tooling
    written against the old API (the silence detector, visualizers)
    keeps working unchanged.
    """

    def __init__(
        self,
        source,
        *,
        categories=None,
        max_records: Optional[int] = None,
        sample: int = 1,
        capture: bool = True,
    ) -> None:
        if isinstance(source, InstrumentationBus):
            self.bus = source
        else:
            # legacy construction: TraceLog(sim) owns a private bus.
            self.bus = InstrumentationBus(source)
        self._records: deque = deque(maxlen=max_records)
        self._taps: Dict[Callable[[TraceRecord], None], Subscription] = {}
        self._enabled = capture
        #: records silently evicted from the front of the ring buffer.
        #: Non-zero means queries over :attr:`records` saw a truncated
        #: history — surfaced in run reports so bounded captures cannot
        #: masquerade as complete ones.
        self.dropped_records = 0
        self.categories = (
            tuple(sorted(categories)) if categories is not None else None
        )
        self.max_records = max_records
        self._sample = sample
        # A disabled trace does not subscribe at all: with no
        # subscription the bus's lazy publishing path skips building
        # records entirely, which is what makes ``trace_level="off"``
        # runs approach the bare counting floor.
        self._subscription: Optional[Subscription] = None
        if capture:
            self._subscription = self._subscribe()

    def _subscribe(self) -> Subscription:
        # Unbounded ring: hand the bus the deque's C-level append — no
        # python frame per retained record.  Bounded ring: go through
        # _on_record, which maintains the dropped-records accounting.
        callback = (
            self._records.append
            if self.max_records is None
            else self._on_record
        )
        return self.bus.subscribe(
            callback,
            categories=self.categories,
            sample=self._sample,
            name="trace",
        )

    # ------------------------------------------------------------------
    # subscriber side
    # ------------------------------------------------------------------
    def _on_record(self, record: TraceRecord) -> None:
        records = self._records
        if records.maxlen is not None and len(records) == records.maxlen:
            self.dropped_records += 1
        records.append(record)

    def set_enabled(self, enabled: bool) -> None:
        """Disable to cut memory/time for very large parameter sweeps.

        Toggles the underlying bus subscription, so a disabled trace
        costs nothing per record (and lazy emitters skip building the
        payload altogether when nothing else is attached).
        """
        enabled = bool(enabled)
        if enabled == self._enabled:
            return
        self._enabled = enabled
        if enabled:
            if self._subscription is None:
                self._subscription = self._subscribe()
        elif self._subscription is not None:
            self.bus.unsubscribe(self._subscription)
            self._subscription = None

    def detach(self) -> None:
        """Stop receiving records from the bus entirely."""
        if self._subscription is not None:
            self.bus.unsubscribe(self._subscription)
            self._subscription = None

    # ------------------------------------------------------------------
    # publisher compatibility (records go through the bus)
    # ------------------------------------------------------------------
    def record(self, category: str, node: str, **data: Any) -> None:
        """Publish a record on the underlying bus."""
        self.bus.record(category, node, **data)

    @property
    def counts(self) -> Dict[str, int]:
        """Per-category totals of everything published (bus-maintained)."""
        return self.bus.counts

    def add_tap(self, tap: Callable[[TraceRecord], None]) -> None:
        """Attach a live observer callback (sees every bus record)."""
        self._taps[tap] = self.bus.subscribe(tap, name="tap")

    def remove_tap(self, tap: Callable[[TraceRecord], None]) -> None:
        """Detach a previously added observer."""
        self.bus.unsubscribe(self._taps.pop(tap))

    # ------------------------------------------------------------------
    # retained records
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list:
        """The retained records, oldest first."""
        return list(self._records)

    # ------------------------------------------------------------------
    # queries (the "log file analysis" entry points)
    # ------------------------------------------------------------------
    def filter(
        self,
        category: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> list:
        """Records matching all given criteria (category matches by prefix)."""
        out = []
        for rec in self._records:
            if category is not None and not rec.matches(category):
                continue
            if node is not None and rec.node != node:
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            out.append(rec)
        return out

    def last_time(
        self, categories=ROUTE_AFFECTING, since: float = 0.0
    ) -> Optional[float]:
        """Timestamp of the last record in ``categories`` at/after ``since``."""
        latest: Optional[float] = None
        for rec in self._records:
            if rec.time >= since and rec.category in categories:
                if latest is None or rec.time > latest:
                    latest = rec.time
        return latest

    def count(self, category: str) -> int:
        """Total published records equal to or nested under ``category``.

        Counts come from the bus, so they are complete even when capture
        is filtered, sampled, bounded, or disabled.
        """
        return self.bus.count(category)

    def clear(self) -> None:
        """Drop retained records and reset the bus counters."""
        self._records.clear()
        self.dropped_records = 0
        self.bus.clear_counts()

    def __repr__(self) -> str:
        bound = self.max_records if self.max_records is not None else "inf"
        return (
            f"<TraceLog records={len(self._records)} bound={bound} "
            f"dropped={self.dropped_records} capture={self._enabled}>"
        )
