"""Structured trace log — the framework's "log files".

Every component appends typed records here instead of writing text logs;
the analysis package (``repro.analysis``) then plays the role of the
paper's "automatic log file analysis" tools: convergence-time extraction,
update counting, route-change visualization.

Records carry a dotted ``category`` (``bgp.update.rx``, ``fib.change``,
``controller.recompute`` ...), the node name, and a free-form payload
dict.  Categories listed in :data:`ROUTE_AFFECTING` are the ones whose
last occurrence after an injected event defines the convergence instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["TraceRecord", "TraceLog", "ROUTE_AFFECTING"]

#: Categories that indicate routing state is still in flux.  The
#: convergence time of an injected event is the timestamp of the last
#: record in one of these categories (see ``analysis.convergence``).
ROUTE_AFFECTING = frozenset(
    {
        "bgp.update.tx",
        "bgp.update.rx",
        "bgp.decision",
        "bgp.originate",
        "bgp.withdraw",
        "fib.change",
        "controller.recompute",
        "controller.flow_install",
        "controller.advertise",
    }
)


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped log record."""

    time: float
    category: str
    node: str
    data: dict = field(default_factory=dict)

    def matches(self, prefix: str) -> bool:
        """True if this record's category equals or is nested under ``prefix``."""
        return self.category == prefix or self.category.startswith(prefix + ".")


class TraceLog:
    """Append-only in-memory log with category filters and live taps.

    Taps (callbacks) let live tooling — the convergence detector, the
    route collector's feed, visualizers — observe records as they are
    produced, mirroring how the paper's monitoring tools watch BGP update
    streams in real time.
    """

    def __init__(self, sim) -> None:
        self._sim = sim
        self._records: list[TraceRecord] = []
        self._taps: list[Callable[[TraceRecord], None]] = []
        self._enabled = True
        self.counts: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        """The raw record list (append-only)."""
        return self._records

    def add_tap(self, tap: Callable[[TraceRecord], None]) -> None:
        """Attach a live observer callback."""
        self._taps.append(tap)

    def remove_tap(self, tap: Callable[[TraceRecord], None]) -> None:
        """Detach a previously added observer."""
        self._taps.remove(tap)

    def set_enabled(self, enabled: bool) -> None:
        """Disable to cut memory/time for very large parameter sweeps."""
        self._enabled = enabled

    def record(self, category: str, node: str, **data: Any) -> None:
        """Append a record stamped with the current virtual time."""
        rec = TraceRecord(self._sim.now, category, node, data)
        self.counts[category] = self.counts.get(category, 0) + 1
        if self._enabled:
            self._records.append(rec)
        for tap in self._taps:
            tap(rec)

    # ------------------------------------------------------------------
    # queries (the "log file analysis" entry points)
    # ------------------------------------------------------------------
    def filter(
        self,
        category: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> list[TraceRecord]:
        """Records matching all given criteria (category matches by prefix)."""
        out = []
        for rec in self._records:
            if category is not None and not rec.matches(category):
                continue
            if node is not None and rec.node != node:
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            out.append(rec)
        return out

    def last_time(
        self, categories=ROUTE_AFFECTING, since: float = 0.0
    ) -> Optional[float]:
        """Timestamp of the last record in ``categories`` at/after ``since``."""
        latest: Optional[float] = None
        for rec in self._records:
            if rec.time >= since and rec.category in categories:
                if latest is None or rec.time > latest:
                    latest = rec.time
        return latest

    def count(self, category: str) -> int:
        """Total records whose category equals or nests under ``category``."""
        return sum(
            n for cat, n in self.counts.items()
            if cat == category or cat.startswith(category + ".")
        )

    def clear(self) -> None:
        """Drop all stored state."""
        self._records.clear()
        self.counts.clear()
