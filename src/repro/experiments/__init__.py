"""Pre-built paper experiments: Fig. 2, §4 scenarios, and ablations."""

from .ablations import (
    MraiPoint,
    RecomputePoint,
    mrai_sweep,
    recompute_delay_sweep,
)
from .announcement import announcement_sweep
from .common import (
    AnnouncementScenario,
    FailedRun,
    FailoverScenario,
    RunResult,
    Scenario,
    SweepPoint,
    SweepResult,
    WithdrawalScenario,
    paper_config,
    paper_timers,
    run_fraction_sweep,
    run_scenario_once,
    sdn_set_for,
)
from .export import sweep_rows, sweep_to_csv, sweep_to_json
from .failover import failover_sweep
from .flapstorm import FlapStormResult, flap_storm_sweep, run_flap_storm
from .placement import STRATEGIES, PlacementResult, pick_members, placement_sweep
from .scenarios import (
    DEFAULT_FRACTIONS,
    FaultSuiteScenario,
    fault_suite_scenario,
    scenarios_sweep,
    sdn_counts_for_fractions,
)
from .subcluster import (
    SubClusterResult,
    barbell_topology,
    run_subcluster_experiment,
)
from .topologies import (
    FAMILIES,
    TopologyFamilyResult,
    topology_family_sweep,
)
from .withdrawal import withdrawal_sweep

__all__ = [
    "MraiPoint",
    "RecomputePoint",
    "mrai_sweep",
    "recompute_delay_sweep",
    "announcement_sweep",
    "AnnouncementScenario",
    "FailedRun",
    "FailoverScenario",
    "RunResult",
    "Scenario",
    "SweepPoint",
    "SweepResult",
    "WithdrawalScenario",
    "paper_config",
    "paper_timers",
    "run_fraction_sweep",
    "run_scenario_once",
    "sdn_set_for",
    "sweep_rows",
    "sweep_to_csv",
    "sweep_to_json",
    "failover_sweep",
    "FlapStormResult",
    "flap_storm_sweep",
    "run_flap_storm",
    "DEFAULT_FRACTIONS",
    "FaultSuiteScenario",
    "fault_suite_scenario",
    "scenarios_sweep",
    "sdn_counts_for_fractions",
    "STRATEGIES",
    "PlacementResult",
    "pick_members",
    "placement_sweep",
    "SubClusterResult",
    "barbell_topology",
    "run_subcluster_experiment",
    "FAMILIES",
    "TopologyFamilyResult",
    "topology_family_sweep",
    "withdrawal_sweep",
]
