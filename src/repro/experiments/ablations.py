"""Ablations of the two design insights called out in §3.

1. **MRAI** — BGP's rate limiter is exactly what makes withdrawal
   exploration slow; sweeping MRAI with and without an SDN cluster shows
   centralization's benefit scales with MRAI (the thing it bypasses).
2. **Delayed recomputation** — the controller's debounce trades reaction
   latency for stability: longer delays coalesce bursty external input
   into fewer recomputations/flow pushes, at the cost of a convergence
   floor.  Sweeping the delay quantifies both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.stats import BoxplotStats, boxplot_stats
from .common import (
    WithdrawalScenario,
    paper_config,
    run_scenario_once,
    sdn_set_for,
)
from ..topology.builders import clique

__all__ = ["MraiPoint", "mrai_sweep", "RecomputePoint", "recompute_delay_sweep"]


@dataclass
class MraiPoint:
    """Withdrawal convergence at one MRAI value, with/without SDN.

    Note the expected *U-shape* for pure BGP (Griffin & Premore): at
    MRAI 0 nothing rate-limits path exploration, so the update count
    explodes and convergence is CPU-bound; at large MRAI exploration is
    slow because each round waits.  The sweet spot is a small nonzero
    MRAI — and the hybrid sits near the controller floor throughout.
    """

    mrai: float
    pure_bgp: BoxplotStats
    hybrid: BoxplotStats
    sdn_count: int
    pure_updates: float = 0.0
    hybrid_updates: float = 0.0

    @property
    def reduction(self) -> float:
        """Relative improvement of hybrid over pure BGP."""
        base = self.pure_bgp.median
        return (base - self.hybrid.median) / base if base > 0 else 0.0


def mrai_sweep(
    *,
    n: int = 16,
    mrai_values: Sequence[float] = (0.0, 5.0, 15.0, 30.0),
    sdn_count: int = 8,
    runs: int = 5,
    seed_base: int = 400,
) -> List[MraiPoint]:
    """Withdrawal convergence vs MRAI, pure BGP vs half-SDN hybrid."""
    points: List[MraiPoint] = []
    for mrai in mrai_values:
        times = {0: [], sdn_count: []}
        updates = {0: [], sdn_count: []}
        for k in (0, sdn_count):
            for run_index in range(runs):
                scenario = WithdrawalScenario()
                topology = clique(n)
                members = sdn_set_for(topology, k, scenario.reserved_legacy)
                config = paper_config(
                    seed=seed_base + run_index + int(mrai * 10) + k,
                    mrai=mrai,
                )
                m = run_scenario_once(scenario, topology, members, config)
                times[k].append(m.convergence_time)
                updates[k].append(m.updates_tx)
        points.append(
            MraiPoint(
                mrai=mrai,
                pure_bgp=boxplot_stats(times[0]),
                hybrid=boxplot_stats(times[sdn_count]),
                sdn_count=sdn_count,
                pure_updates=sorted(updates[0])[len(updates[0]) // 2],
                hybrid_updates=sorted(updates[sdn_count])[
                    len(updates[sdn_count]) // 2
                ],
            )
        )
    return points


@dataclass
class RecomputePoint:
    """Effect of one controller recompute-delay setting."""

    delay: float
    convergence: BoxplotStats
    recomputations: float  # mean per run
    flow_mods: float       # mean per run


def recompute_delay_sweep(
    *,
    n: int = 16,
    delays: Sequence[float] = (0.0, 0.5, 2.0, 5.0, 15.0),
    sdn_count: int = 8,
    runs: int = 5,
    mrai: float = 30.0,
    seed_base: int = 500,
) -> List[RecomputePoint]:
    """Withdrawal convergence + controller churn vs recompute delay."""
    points: List[RecomputePoint] = []
    for delay in delays:
        times: List[float] = []
        recomputes: List[int] = []
        flow_mods: List[int] = []
        for run_index in range(runs):
            scenario = WithdrawalScenario()
            topology = clique(n)
            members = sdn_set_for(topology, sdn_count, scenario.reserved_legacy)
            config = paper_config(
                seed=seed_base + run_index + int(delay * 100),
                mrai=mrai,
                recompute_delay=delay,
            )
            m = run_scenario_once(scenario, topology, members, config)
            times.append(m.convergence_time)
            recomputes.append(m.recomputations)
            flow_mods.append(m.extra.get("flow_mods", 0))
        points.append(
            RecomputePoint(
                delay=delay,
                convergence=boxplot_stats(times),
                recomputations=sum(recomputes) / len(recomputes),
                flow_mods=sum(flow_mods) / len(flow_mods),
            )
        )
    return points
