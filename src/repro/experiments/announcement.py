"""§4 experiment: route announcement convergence vs SDN deployment.

Announcing a new prefix converges fast in plain BGP — updates flood
outward with no path exploration, so the only MRAI cost is the second
round of longer-path advertisements most ASes ignore.  Centralization
therefore helps little here (and the controller's recompute delay adds
a small floor), the "smaller reductions" of §4.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .common import AnnouncementScenario, SweepResult, run_fraction_sweep

__all__ = ["announcement_sweep", "DEFAULT_SDN_COUNTS"]

DEFAULT_SDN_COUNTS = (0, 2, 4, 6, 8, 10, 12, 14, 15)


def announcement_sweep(
    *,
    n: int = 16,
    sdn_counts: Optional[Sequence[int]] = None,
    runs: int = 10,
    mrai: float = 30.0,
    recompute_delay: float = 0.5,
    seed_base: int = 300,
    workers: int = 1,
    cache=None,
    progress=None,
    timeout: Optional[float] = None,
    retries: int = 1,
    trace_level: str = "full",
    metrics: bool = False,
    profile: bool = False,
    registry=None,
    sample_hz: float = 0.0,
    anatomy: bool = False,
) -> SweepResult:
    """The announcement counterpart of Fig. 2 (text-only result in §4).

    Runner options as in :func:`repro.experiments.withdrawal_sweep`.
    """
    if sdn_counts is None:
        max_sdn = n - 1
        sdn_counts = sorted(
            {c for c in DEFAULT_SDN_COUNTS if c < max_sdn} | {max_sdn}
        )
    return run_fraction_sweep(
        AnnouncementScenario,
        n=n,
        sdn_counts=list(sdn_counts),
        runs=runs,
        mrai=mrai,
        recompute_delay=recompute_delay,
        seed_base=seed_base,
        workers=workers,
        cache=cache,
        progress=progress,
        timeout=timeout,
        retries=retries,
        trace_level=trace_level,
        metrics=metrics,
        profile=profile,
        registry=registry,
        sample_hz=sample_hz,
        anatomy=anatomy,
    )
