"""Shared machinery for the paper's experiment sweeps.

Every paper experiment has the same skeleton: build a topology, convert
a chosen fraction of ASes to centralized (SDN) control, converge, inject
a routing event, and measure convergence over several seeded runs.  The
:class:`Scenario` subclasses define the event; :func:`run_fraction_sweep`
is the Fig. 2-style harness that sweeps the SDN deployment fraction.

Paper-faithful defaults: MRAI 30 s with RFC jitter, Quagga-style pacing
of withdrawals (Quagga's per-peer advertisement-interval applies to its
whole output queue), controller recompute delay 0.5 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis.stats import BoxplotStats, LinearFit, boxplot_stats, linear_fit
from ..bgp.session import BGPTimers
from ..controller.idr import ControllerConfig
from ..faults.engine import FaultInjector
from ..faults.schedule import FaultSchedule
from ..framework.convergence import ConvergenceMeasurement, measure_event
from ..framework.experiment import Experiment, ExperimentConfig
from ..net.addr import Prefix
from ..runner import ParallelRunner, RunSpec, SweepTiming
from ..topology.builders import clique
from ..topology.model import Topology

__all__ = [
    "paper_timers",
    "paper_config",
    "Scenario",
    "WithdrawalScenario",
    "FailoverScenario",
    "AnnouncementScenario",
    "RunResult",
    "FailedRun",
    "SweepPoint",
    "SweepResult",
    "run_scenario_once",
    "run_scenario_instrumented",
    "run_scenario_full",
    "run_fraction_sweep",
    "sdn_set_for",
]


def paper_timers(mrai: float = 30.0) -> BGPTimers:
    """Quagga-like timers used by the paper's evaluation."""
    return BGPTimers(mrai=mrai, withdrawal_rate_limited=True)


def paper_config(
    *,
    seed: int = 0,
    mrai: float = 30.0,
    recompute_delay: float = 0.5,
    policy_mode: str = "flat",
    trace_level: str = "full",
    metrics: bool = False,
    spans: bool = False,
    compact: bool = False,
    batch_delivery: bool = False,
    lean: bool = False,
    scheduler: str = "heap",
) -> ExperimentConfig:
    """The configuration matching the paper's clique experiments.

    ``compact`` turns on the interned/incremental route machinery
    (result-identical, scale-oriented); ``batch_delivery`` coalesces
    same-instant link deliveries (NOT digest-preserving); ``lean``
    drops the baseline full-mesh originations and the route collector —
    the memory shape Internet-scale trials need, where per-AS /24s
    would mean O(n²) Adj-RIB entries; ``scheduler`` selects the event
    kernel's pending-set structure ("heap" or "calendar";
    digest-preserving either way).
    """
    return ExperimentConfig(
        seed=seed,
        policy_mode=policy_mode,
        timers=paper_timers(mrai),
        controller=ControllerConfig(recompute_delay=recompute_delay),
        trace_level=trace_level,
        metrics=metrics,
        spans=spans,
        compact=compact,
        batch_delivery=batch_delivery,
        with_collector=not lean,
        originate_all=not lean,
        scheduler=scheduler,
    )


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
@dataclass
class Scenario:
    """One injectable routing event on a prepared experiment.

    ``reserved_legacy`` ASes never convert to SDN in fraction sweeps —
    e.g. the withdrawing origin stays a legacy BGP router so the event
    itself is identical at every deployment fraction.
    """

    name: str = "scenario"
    reserved_legacy: frozenset = frozenset({1})

    def topology(self, n: int, base_factory=clique) -> Topology:
        """Build the scenario's topology (default: the plain base)."""
        return base_factory(n)

    def configure(self, exp: Experiment) -> None:
        """Hook between build() and start() (session policy tweaks)."""

    def prepare(self, exp: Experiment) -> None:
        """Bring the experiment to the pre-event steady state."""

    def event(self, exp: Experiment) -> None:
        """The measured routing event."""
        raise NotImplementedError

    def finish(self, exp: Experiment) -> None:
        """Hook after the event settled (fault scenarios finalize here)."""


@dataclass
class WithdrawalScenario(Scenario):
    """Fig. 2: the origin withdraws a previously announced prefix."""

    name: str = "withdrawal"
    origin: int = 1
    prefix: Optional[Prefix] = None

    def __post_init__(self) -> None:
        self.reserved_legacy = frozenset({self.origin})

    def prepare(self, exp: Experiment) -> None:
        """Bring the experiment to the pre-event steady state."""
        self.prefix = exp.announce(self.origin)
        exp.wait_converged()

    def event(self, exp: Experiment) -> None:
        """The measured routing event."""
        exp.withdraw(self.origin, self.prefix)


@dataclass
class FailoverScenario(Scenario):
    """§4: primary/backup fail-over to a longer alternate path.

    The classic operator setup: an origin AS dual-homes into the mesh
    via a primary gateway and a backup gateway whose session carries
    AS-path prepending, so backup paths are ``prepend`` hops longer.
    When the primary link fails, every AS must move from the short
    primary paths to the long backup paths — and plain BGP *explores*
    the length gap in MRAI-paced rounds (Labovitz's Tlong event), while
    the IDR controller jumps straight to the surviving egress.  The
    exploration depth is bounded by the gap (unlike a withdrawal, which
    explores everything), hence the paper's "smaller reductions".

    The origin is AS ``n + 1``, outside the clique; the gateways are
    AS 1 (primary) and AS 2 (backup); all three stay legacy.
    """

    name: str = "failover"
    primary_gw: int = 1
    backup_gw: int = 2
    prepend: int = 3
    origin: int = 0  # assigned in topology()
    prefix: Optional[Prefix] = None

    def __post_init__(self) -> None:
        # Origin and primary gateway stay legacy (the event's actors);
        # the *backup* gateway is convertible — it joins the cluster at
        # the top of the sweep, which is where the reduction appears,
        # because the backup gateway is the router whose MRAI-paced
        # exploration dominates fail-over convergence.
        self.reserved_legacy = frozenset({self.primary_gw})

    def topology(self, n: int, base_factory=clique) -> Topology:
        """Build the scenario's topology."""
        topo = base_factory(n)
        self.origin = max(topo.asns) + 1
        self.reserved_legacy = frozenset({self.origin, self.primary_gw})
        topo.add_as(self.origin, role="dual-homed origin")
        topo.add_link(self.primary_gw, self.origin)
        topo.add_link(self.backup_gw, self.origin)
        return topo

    def configure(self, exp: Experiment) -> None:
        """Hook between build() and start()."""
        exp.set_export_prepend(self.origin, toward=self.backup_gw,
                               count=self.prepend)

    def prepare(self, exp: Experiment) -> None:
        """Bring the experiment to the pre-event steady state."""
        self.prefix = exp.announce(self.origin)
        exp.wait_converged()

    def event(self, exp: Experiment) -> None:
        """The measured routing event, expressed as a fault schedule.

        A ``link_down`` at offset 0 is bit-identical to calling
        ``exp.fail_link`` synchronously — all protocol timing is
        delay-based — which the differential oracle tests pin down.
        """
        schedule = FaultSchedule().link_down(
            self.origin, self.primary_gw, at=0.0
        )
        FaultInjector(exp, schedule, check_invariants=False).inject()


@dataclass
class AnnouncementScenario(Scenario):
    """§4: a brand-new prefix is announced and must propagate."""

    name: str = "announcement"
    origin: int = 1

    def __post_init__(self) -> None:
        self.reserved_legacy = frozenset({self.origin})

    def event(self, exp: Experiment) -> None:
        """The measured routing event."""
        exp.announce(self.origin)


# ----------------------------------------------------------------------
# sweep harness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunResult:
    """One (sdn_count, seed) run.

    The trailing metadata fields describe *how* the run executed (they
    never affect the measured statistics): wall-clock seconds inside
    the worker, which worker ran it (``serial``/``pid-N``), whether it
    was served from the result cache, and how many attempts it took.
    """

    sdn_count: int
    fraction: float
    seed: int
    measurement: ConvergenceMeasurement
    wall_time: float = 0.0
    worker: str = ""
    cached: bool = False
    attempts: int = 1
    #: per-run metrics snapshot (sweeps launched with ``metrics=True``).
    metrics: Optional[dict] = None
    #: per-run provenance spans (sweeps launched with ``spans=True``).
    spans: Optional[list] = None
    #: per-run hot-function table (sweeps launched with ``profile=True``).
    profile: Optional[list] = None
    #: per-run convergence anatomy (sweeps launched with
    #: ``anatomy=True``): the critical-path delay attribution payload.
    anatomy: Optional[dict] = None

    @property
    def convergence_time(self) -> float:
        """Seconds from firing to the last routing activity."""
        return self.measurement.convergence_time


@dataclass(frozen=True)
class FailedRun:
    """A run that exhausted its retry budget (crash/timeout/exception)."""

    sdn_count: int
    fraction: float
    seed: int
    error: str
    attempts: int = 1


@dataclass
class SweepPoint:
    """All runs at one SDN deployment fraction."""

    sdn_count: int
    fraction: float
    runs: List[RunResult] = field(default_factory=list)
    failures: List[FailedRun] = field(default_factory=list)

    @property
    def times(self) -> List[float]:
        """Raw convergence times of all runs."""
        return [r.convergence_time for r in self.runs]

    @property
    def stats(self) -> BoxplotStats:
        """Boxplot summary over the runs."""
        return boxplot_stats(self.times)

    @property
    def median_updates(self) -> float:
        """Median per-run update count."""
        counts = sorted(r.measurement.updates_tx for r in self.runs)
        return counts[len(counts) // 2] if counts else 0


@dataclass
class SweepResult:
    """A full fraction sweep for one scenario."""

    scenario: str
    n_ases: int
    points: List[SweepPoint]
    #: how the sweep executed (elapsed, per-job wall-clock, cache hits);
    #: None for results assembled outside the runner.
    timing: Optional[SweepTiming] = None

    @property
    def failed_runs(self) -> List[FailedRun]:
        """Every run that failed for good, across all points."""
        return [f for p in self.points for f in p.failures]

    def medians(self) -> List[float]:
        """Median convergence times of all sweep points."""
        return [p.stats.median for p in self.points]

    def fractions(self) -> List[float]:
        """SDN fractions of all sweep points."""
        return [p.fraction for p in self.points]

    def fit(self) -> LinearFit:
        """Linear fit of median convergence time vs SDN fraction."""
        return linear_fit(self.fractions(), self.medians())

    def reduction_at_full(self) -> float:
        """Relative reduction from the 0% to the highest-fraction point."""
        base = self.points[0].stats.median
        last = self.points[-1].stats.median
        return (base - last) / base if base > 0 else 0.0

    def merged_metrics(self) -> Optional[dict]:
        """All per-run metric snapshots merged into one registry dump.

        None when the sweep ran without ``metrics=True``.
        """
        from ..eventsim import merge_snapshots

        snapshots = [
            r.metrics for p in self.points for r in p.runs
            if r.metrics is not None
        ]
        return merge_snapshots(snapshots) if snapshots else None

    def anatomy_by_fraction(self) -> List[Optional[dict]]:
        """Per-point aggregated delay attribution, sweep order.

        Each entry is :func:`repro.obs.anatomy.aggregate_anatomy` over
        the point's runs (median per-category critical-path waterfall),
        or None when no run at that fraction carried anatomy — the
        figure-2 axis answer to *which* delay category centralization
        removes.
        """
        from ..obs.anatomy import aggregate_anatomy

        return [
            aggregate_anatomy(r.anatomy for r in point.runs)
            for point in self.points
        ]


def sdn_set_for(
    topology: Topology, sdn_count: int, reserved_legacy: frozenset
) -> frozenset:
    """Pick which ASes convert to SDN: highest ASNs first, skipping the
    scenario's reserved legacy set, so every sweep point changes only the
    *number* of converted ASes, never the event's actors."""
    candidates = [a for a in reversed(topology.asns) if a not in reserved_legacy]
    if sdn_count > len(candidates):
        raise ValueError(
            f"cannot convert {sdn_count} of {len(topology)} ASes "
            f"({len(reserved_legacy)} reserved)"
        )
    return frozenset(candidates[:sdn_count])


def run_scenario_once(
    scenario: Scenario,
    topology: Topology,
    sdn_members: frozenset,
    config: ExperimentConfig,
    *,
    horizon: Optional[float] = None,
) -> ConvergenceMeasurement:
    """Build, configure, prepare, inject, measure — one full run."""
    measurement, _ = run_scenario_instrumented(
        scenario, topology, sdn_members, config, horizon=horizon
    )
    return measurement


def run_scenario_instrumented(
    scenario: Scenario,
    topology: Topology,
    sdn_members: frozenset,
    config: ExperimentConfig,
    *,
    horizon: Optional[float] = None,
) -> tuple:
    """One full run, returning ``(measurement, metrics_snapshot)``.

    The snapshot is ``None`` unless ``config.metrics`` is set, in which
    case it is the JSON-ready registry dump taken after the measured
    event settled.
    """
    measurement, metrics, _ = run_scenario_full(
        scenario, topology, sdn_members, config, horizon=horizon
    )
    return measurement, metrics


def run_scenario_full(
    scenario: Scenario,
    topology: Topology,
    sdn_members: frozenset,
    config: ExperimentConfig,
    *,
    horizon: Optional[float] = None,
    info: Optional[dict] = None,
) -> tuple:
    """One full run, returning ``(measurement, metrics, spans)``.

    ``metrics`` is None unless ``config.metrics``; ``spans`` (JSON-ready
    provenance span dicts) is None unless ``config.spans``.  The
    measurement's ``extra`` dict also carries ``event_root_span`` — the
    span id of the measured event's root cause — when spans are on, so
    downstream reports can find the event's causal tree without
    heuristics.  ``info``, when given, receives execution facts that
    are not part of the result (``events_processed``) so worker-side
    resource accounting can report events/s without touching the
    measurement.
    """
    exp = Experiment(
        topology, sdn_members=sdn_members, config=config,
        name=scenario.name,
    ).build()
    scenario.configure(exp)
    exp.start()
    scenario.prepare(exp)
    spans_before = len(exp.spans.spans) if exp.spans is not None else 0
    measurement = measure_event(
        exp, lambda: scenario.event(exp), horizon=horizon
    )
    scenario.finish(exp)
    spans = exp.spans_snapshot()
    if spans is not None:
        # The event's root is the first new root-cause span created at
        # or after injection (scenario events fire outside any message
        # context, so the event always opens a fresh causal tree).
        for span in spans[spans_before:]:
            if span["parent_id"] is None and span["t_end"] >= measurement.t_event:
                measurement.extra["event_root_span"] = span["span_id"]
                break
    if info is not None:
        info["events_processed"] = exp.net.sim.events_processed
    return measurement, exp.metrics_snapshot(), spans


def run_fraction_sweep(
    scenario_factory,
    *,
    n: int = 16,
    sdn_counts: Optional[Sequence[int]] = None,
    runs: int = 10,
    mrai: float = 30.0,
    recompute_delay: float = 0.5,
    seed_base: int = 100,
    topology_factory=clique,
    workers: int = 1,
    cache=None,
    progress=None,
    timeout: Optional[float] = None,
    retries: int = 1,
    trace_level: str = "full",
    metrics: bool = False,
    spans: bool = False,
    anatomy: bool = False,
    profile: bool = False,
    sample_hz: float = 0.0,
    faults=None,
    registry=None,
) -> SweepResult:
    """The Fig. 2 harness: sweep SDN deployment over seeded runs.

    ``scenario_factory`` must return a *fresh* scenario per run (scenarios
    carry per-run state such as the announced prefix) and must be a
    module-level callable (it is pickled to workers and digested for the
    cache — see ``docs/runner.md``).

    The trials are independent, so the grid routes through
    :class:`~repro.runner.ParallelRunner`: ``workers`` processes,
    ``cache`` (a directory path or :class:`~repro.runner.ResultCache`)
    to skip already-computed trials, ``progress`` (``'log'``, a
    callable, or a sink) for reporting, and ``timeout``/``retries`` for
    fault tolerance.  ``trace_level`` bounds per-run trace memory
    (``"off"`` retains zero records while measuring identically),
    ``metrics=True`` attaches a per-run metrics snapshot to every
    :class:`RunResult`, ``spans=True`` attaches the run's causal
    provenance spans, ``anatomy=True`` additionally derives each run's
    critical-path delay attribution from those spans (implies
    ``spans=True``; digest-neutral, so cached span-collecting trials
    are reused as-is), ``profile=True`` wraps each trial in cProfile
    and attaches its hottest functions, and ``sample_hz > 0`` runs the
    sampling wall-clock profiler alongside each trial and attaches its
    flamegraph collapsed stacks (results stay bit-identical in every
    case).  ``registry`` (a
    :class:`~repro.obs.registry.RunRegistry`, a path, or a prepared
    :class:`~repro.obs.registry.RegistrySink`) records every trial —
    including cache hits and failures — into the cross-run telemetry
    store (see ``docs/telemetry.md``).  ``faults`` (a
    :class:`~repro.faults.FaultSchedule` or its canonical tuple) is
    embedded in every spec — scenarios that understand fault schedules
    (``FaultSuiteScenario``) read it back from ``scenario.faults``.  Results are bit-identical across worker counts:
    every run is seeded from the spec alone and ``SweepPoint.runs``
    keeps the serial ordering.  Runs that fail for good land in
    ``SweepPoint.failures`` instead of aborting the sweep.
    """
    probe = scenario_factory()
    if anatomy:
        spans = True  # anatomy is derived from the span payload
    if sdn_counts is None:
        max_sdn = n - len(probe.reserved_legacy)
        sdn_counts = list(range(0, max_sdn + 1))
    if isinstance(faults, FaultSchedule):
        faults = faults.canonical()
    specs: List[RunSpec] = []
    for sdn_count in sdn_counts:
        for run_index in range(runs):
            seed = seed_base + 1000 * sdn_count + run_index
            specs.append(
                RunSpec(
                    scenario_factory=scenario_factory,
                    topology_factory=topology_factory,
                    n=n,
                    sdn_count=sdn_count,
                    seed=seed,
                    mrai=mrai,
                    recompute_delay=recompute_delay,
                    trace_level=trace_level,
                    metrics=metrics,
                    spans=spans,
                    anatomy=anatomy,
                    profile=profile,
                    sample_hz=sample_hz,
                    faults=faults,
                    label=f"{probe.name} sdn={sdn_count} seed={seed}",
                )
            )
    runner = ParallelRunner(
        workers, timeout=timeout, retries=retries,
        cache=cache, progress=progress, registry=registry,
    )
    records = runner.run(specs)

    points: List[SweepPoint] = []
    by_spec = iter(zip(specs, records))
    for sdn_count in sdn_counts:
        point = SweepPoint(sdn_count=sdn_count, fraction=sdn_count / n)
        for _ in range(runs):
            spec, record = next(by_spec)
            if record.ok:
                point.runs.append(
                    RunResult(
                        sdn_count=sdn_count,
                        fraction=sdn_count / n,
                        seed=spec.seed,
                        measurement=record.measurement,
                        wall_time=record.wall_time,
                        worker=record.worker,
                        cached=record.cached,
                        attempts=record.attempts,
                        metrics=record.metrics,
                        spans=record.spans,
                        profile=record.profile,
                        anatomy=record.anatomy,
                    )
                )
            else:
                point.failures.append(
                    FailedRun(
                        sdn_count=sdn_count,
                        fraction=sdn_count / n,
                        seed=spec.seed,
                        error=record.error or "unknown failure",
                        attempts=record.attempts,
                    )
                )
        points.append(point)
    return SweepResult(
        scenario=probe.name, n_ases=n, points=points,
        timing=runner.last_timing,
    )
