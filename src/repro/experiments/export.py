"""Export sweep results to CSV / JSON.

Benchmarks archive plain-text reports; these helpers give downstream
users machine-readable versions of the same data (one row per run and a
per-point summary), so results plot directly in pandas/gnuplot/R.
"""

from __future__ import annotations

import csv
import io
import json
from typing import List

from .common import SweepResult

__all__ = ["sweep_to_csv", "sweep_to_json", "sweep_rows"]


def sweep_rows(
    result: SweepResult,
    *,
    include_metrics: bool = False,
    include_spans: bool = False,
    include_profile: bool = False,
    include_anatomy: bool = False,
) -> List[dict]:
    """One dict per individual run (long/tidy format).

    ``include_metrics`` attaches the per-run metrics snapshot as a
    ``run_metrics`` dict column; ``include_spans`` attaches the run's
    provenance spans as a ``run_spans`` list column; ``include_profile``
    attaches the cProfile hot-function table as a ``run_profile`` list
    column; ``include_anatomy`` attaches the run's critical-path delay
    attribution as a ``run_anatomy`` dict column — all kept out of the
    CSV path, where a nested value would not be a scalar cell.
    """
    rows: List[dict] = []
    for point in result.points:
        for run in point.runs:
            m = run.measurement
            row = {
                "scenario": result.scenario,
                "n_ases": result.n_ases,
                "sdn_count": point.sdn_count,
                "fraction": round(point.fraction, 6),
                "seed": run.seed,
                "convergence_time": m.convergence_time,
                "state_convergence_time": m.state_convergence_time,
                "updates_tx": m.updates_tx,
                "decision_changes": m.decision_changes,
                "fib_changes": m.fib_changes,
                "recomputations": m.recomputations,
                # execution metadata (default-populated via getattr
                # so pre-runner RunResult-like objects still export)
                "wall_time": round(getattr(run, "wall_time", 0.0), 6),
                "worker": getattr(run, "worker", ""),
                "cached": bool(getattr(run, "cached", False)),
                "attempts": getattr(run, "attempts", 1),
            }
            if include_metrics:
                row["run_metrics"] = getattr(run, "metrics", None)
            if include_spans:
                row["run_spans"] = getattr(run, "spans", None)
            if include_profile:
                row["run_profile"] = getattr(run, "profile", None)
            if include_anatomy:
                row["run_anatomy"] = getattr(run, "anatomy", None)
            rows.append(row)
    return rows


def sweep_to_csv(result: SweepResult) -> str:
    """Long-format CSV text (header + one row per run)."""
    rows = sweep_rows(result)
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def sweep_to_json(result: SweepResult, *, indent: int = 2) -> str:
    """JSON with per-point boxplot summaries plus the raw runs."""
    fit = result.fit()
    timing = getattr(result, "timing", None)
    failures = [
        {
            "sdn_count": f.sdn_count,
            "fraction": round(f.fraction, 6),
            "seed": f.seed,
            "attempts": f.attempts,
            "error": f.error,
        }
        for point in result.points
        for f in getattr(point, "failures", [])
    ]
    payload = {
        "scenario": result.scenario,
        "n_ases": result.n_ases,
        "fit": {
            "slope": fit.slope,
            "intercept": fit.intercept,
            "r_squared": fit.r_squared,
        },
        "timing": (
            {
                "elapsed": timing.elapsed,
                "jobs": timing.jobs,
                "cached": timing.cached,
                "failed": timing.failed,
                "total_job_wall": timing.total_job_wall,
                "max_job_wall": timing.max_job_wall,
                "mean_job_wall": timing.mean_job_wall,
                "workers": timing.workers,
                "cache_hits": getattr(timing, "cache_hits", 0),
                "cache_misses": getattr(timing, "cache_misses", 0),
                "cache_entries": getattr(timing, "cache_entries", 0),
                "cache_bytes": getattr(timing, "cache_bytes", 0),
            }
            if timing is not None else None
        ),
        "failures": failures,
        # merged per-run metric snapshots (None without metrics=True);
        # per-run snapshots ride on the "runs" rows via run_metrics.
        "metrics": result.merged_metrics()
        if hasattr(result, "merged_metrics") else None,
        # per-point aggregated delay attribution (None entries without
        # anatomy=True); per-run payloads ride on "runs" via run_anatomy.
        "anatomy": result.anatomy_by_fraction()
        if hasattr(result, "anatomy_by_fraction") else None,
        "points": [
            {
                "sdn_count": point.sdn_count,
                "fraction": point.fraction,
                "median": point.stats.median,
                "q1": point.stats.q1,
                "q3": point.stats.q3,
                "min": point.stats.minimum,
                "max": point.stats.maximum,
                "median_updates": point.median_updates,
                "times": point.times,
            }
            for point in result.points
        ],
        "runs": sweep_rows(
            result,
            include_metrics=True,
            include_spans=True,
            include_profile=True,
            include_anatomy=True,
        ),
    }
    return json.dumps(payload, indent=indent)
