"""§4 experiment: route fail-over convergence vs SDN deployment.

"On the other hand, route fail-over and announcement experiments did not
show this linear improvement, but smaller reductions."

On a clique, failing the victim's direct link to the origin leaves many
equal-length (2-hop) alternatives immediately available, so BGP
exploration is shallow — there is far less serialized MRAI work for
centralization to remove, hence the smaller reduction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .common import FailoverScenario, SweepResult, run_fraction_sweep

__all__ = ["failover_sweep", "DEFAULT_SDN_COUNTS"]

#: Origin and victim stay legacy, so 14 is the max on a 16-clique.
DEFAULT_SDN_COUNTS = (0, 2, 4, 6, 8, 10, 12, 14)


def failover_sweep(
    *,
    n: int = 16,
    sdn_counts: Optional[Sequence[int]] = None,
    runs: int = 10,
    mrai: float = 30.0,
    recompute_delay: float = 0.5,
    seed_base: int = 200,
    workers: int = 1,
    cache=None,
    progress=None,
    timeout: Optional[float] = None,
    retries: int = 1,
    trace_level: str = "full",
    metrics: bool = False,
    profile: bool = False,
    registry=None,
    sample_hz: float = 0.0,
    anatomy: bool = False,
) -> SweepResult:
    """The fail-over counterpart of Fig. 2 (text-only result in §4).

    Runner options as in :func:`repro.experiments.withdrawal_sweep`.
    """
    if sdn_counts is None:
        # origin + primary gateway reserved; the backup gateway is the
        # last convertible AS (n - 1 total candidates).
        max_sdn = n - 1
        sdn_counts = sorted(
            {c for c in DEFAULT_SDN_COUNTS if c < max_sdn} | {max_sdn}
        )
    return run_fraction_sweep(
        FailoverScenario,
        n=n,
        sdn_counts=list(sdn_counts),
        runs=runs,
        mrai=mrai,
        recompute_delay=recompute_delay,
        seed_base=seed_base,
        workers=workers,
        cache=cache,
        progress=progress,
        timeout=timeout,
        retries=retries,
        trace_level=trace_level,
        metrics=metrics,
        profile=profile,
        registry=registry,
        sample_hz=sample_hz,
        anatomy=anatomy,
    )
