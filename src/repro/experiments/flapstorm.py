"""Flap-storm experiment: bursty external input vs the controller.

§3's second design insight is the *delayed recomputation* that
"rate-limit[s] route flaps due to bursts in external BGP input".  This
experiment generates the burst: an origin AS flaps a prefix (announce/
withdraw) ``flaps`` times at a given interval, and we measure how the
cluster's controller rides it out — recomputations performed, flow-mod
churn, and time to final convergence — for both debounce disciplines
(rate-limit style vs extend-on-burst) and a range of delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..controller.idr import ControllerConfig
from ..faults.engine import FaultInjector
from ..faults.schedule import FaultSchedule
from ..framework.convergence import measure_event
from ..framework.experiment import Experiment
from ..topology.builders import clique
from .common import paper_config

__all__ = ["FlapStormResult", "run_flap_storm", "flap_storm_sweep"]


@dataclass
class FlapStormResult:
    """Outcome of one storm run."""

    recompute_delay: float
    extend_on_burst: bool
    flaps: int
    #: controller recomputation rounds consumed by the storm.
    recomputations: int
    #: FlowMod/FlowRemove messages pushed to switches.
    flow_mods: int
    #: BGP updates the cluster re-advertised outward.
    speaker_updates: int
    #: time from the last flap to full convergence.
    settle_after_storm: float
    #: the prefix ends announced; True if everyone has the route.
    final_state_correct: bool

    @property
    def coalescing_ratio(self) -> float:
        """Storm events per recomputation (higher = better coalescing)."""
        if self.recomputations == 0:
            return float(self.flaps)
        return self.flaps / self.recomputations


def run_flap_storm(
    *,
    n: int = 8,
    sdn_count: int = 4,
    flaps: int = 10,
    flap_interval: float = 0.2,
    recompute_delay: float = 0.5,
    extend_on_burst: bool = False,
    mrai: float = 5.0,
    seed: int = 0,
    compact: bool = False,
    scheduler: str = "heap",
) -> FlapStormResult:
    """Flap a prefix from AS1 and measure the controller's churn.

    ``compact`` runs the legacy routers in the interned/incremental
    route machinery; ``scheduler`` picks the event kernel's pending-set
    structure — results must be (and are, per the differential oracle
    suites) bit-identical to the default either way.
    """
    topology = clique(n)
    members = set(range(n - sdn_count + 1, n + 1))
    config = paper_config(seed=seed, mrai=mrai,
                          recompute_delay=recompute_delay,
                          compact=compact, scheduler=scheduler)
    config.controller = ControllerConfig(
        recompute_delay=recompute_delay, extend_on_burst=extend_on_burst
    )
    exp = Experiment(topology, sdn_members=members, config=config).start()
    controller = exp.controller
    trace = exp.net.trace

    prefix = exp.announce(1)
    exp.wait_converged()

    recomputes_before = controller.recomputations
    flow_mods_before = controller.flow_mods_sent
    speaker_tx_before = len(trace.filter(category="bgp.update.tx",
                                         node="speaker"))

    # The burst is a prefix_flap fault schedule: withdraw first, one
    # flip every ``flap_interval`` — bit-identical to the hand-scheduled
    # loop this replaced (pinned by the differential oracle tests).
    storm_schedule = FaultSchedule().prefix_flap(
        1, at=0.0, count=flaps, interval=flap_interval,
        prefix=str(prefix), first="withdraw",
    )

    def storm() -> None:
        FaultInjector(exp, storm_schedule, check_invariants=False).inject()

    t_last_flap_offset = (flaps - 1) * flap_interval
    measurement = measure_event(exp, storm)
    settle_after_storm = max(
        0.0, measurement.convergence_time - t_last_flap_offset
    )

    # Even flap count ends with an announce (last flip index is odd),
    # odd count ends withdrawn; verify the data plane agrees either way.
    ends_announced = flaps % 2 == 0
    target = prefix.host(0)
    walks = [
        exp.net.trace_path(exp.node(asn), target).reached
        for asn in exp.topology.asns
        if asn != 1
    ]
    final_ok = all(walks) if ends_announced else not any(walks)
    return FlapStormResult(
        recompute_delay=recompute_delay,
        extend_on_burst=extend_on_burst,
        flaps=flaps,
        recomputations=controller.recomputations - recomputes_before,
        flow_mods=controller.flow_mods_sent - flow_mods_before,
        speaker_updates=(
            len(trace.filter(category="bgp.update.tx", node="speaker"))
            - speaker_tx_before
        ),
        settle_after_storm=settle_after_storm,
        final_state_correct=final_ok,
    )


def flap_storm_sweep(
    *,
    n: int = 8,
    sdn_count: int = 4,
    flaps: int = 10,
    flap_interval: float = 0.2,
    delays=(0.1, 0.5, 2.0),
    seed: int = 0,
) -> List[FlapStormResult]:
    """Storm the cluster across delays and both debounce disciplines."""
    results: List[FlapStormResult] = []
    for extend in (False, True):
        for delay in delays:
            results.append(
                run_flap_storm(
                    n=n, sdn_count=sdn_count, flaps=flaps,
                    flap_interval=flap_interval,
                    recompute_delay=delay, extend_on_burst=extend,
                    seed=seed,
                )
            )
    return results
