"""Deployment-placement experiment: *which* ASes should centralize?

The paper sweeps *how many* ASes join the cluster on a clique, where
every AS is interchangeable.  On realistic, degree-skewed topologies
(Barabási–Albert, CAIDA-style), the *choice* of members matters: a
high-degree transit AS participates in far more path exploration than a
stub.  This experiment fixes the deployment budget and compares
placement strategies — the question an operator deploying the paper's
system incrementally would actually ask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.stats import BoxplotStats, boxplot_stats
from ..runner import ParallelRunner, RunSpec
from ..topology.builders import barabasi_albert
from ..topology.model import Topology
from .common import WithdrawalScenario

__all__ = ["PlacementResult", "placement_sweep", "STRATEGIES", "pick_members"]


def _by_degree(topology: Topology, k: int, excluded: frozenset) -> frozenset:
    """Highest-degree ASes first (hub placement)."""
    ranked = sorted(
        (a for a in topology.asns if a not in excluded),
        key=lambda a: (-topology.degree(a), a),
    )
    return frozenset(ranked[:k])


def _by_low_degree(topology: Topology, k: int, excluded: frozenset) -> frozenset:
    """Lowest-degree ASes first (edge placement — the control)."""
    ranked = sorted(
        (a for a in topology.asns if a not in excluded),
        key=lambda a: (topology.degree(a), a),
    )
    return frozenset(ranked[:k])


def _spread(topology: Topology, k: int, excluded: frozenset) -> frozenset:
    """Deterministic arbitrary spread (every third AS): placement chosen
    with no topology knowledge at all."""
    candidates = [a for a in topology.asns if a not in excluded]
    return frozenset(candidates[::3][:k] + candidates[1::3][: max(0, k - len(candidates[::3]))])


#: name -> picker(topology, k, excluded_asns) -> member set
STRATEGIES: Dict[str, Callable] = {
    "hubs-first": _by_degree,
    "stubs-first": _by_low_degree,
    "spread": _spread,
}


def pick_members(
    strategy: str, topology: Topology, k: int, excluded: frozenset
) -> frozenset:
    try:
        picker = STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    members = picker(topology, k, excluded)
    if len(members) < k:
        raise ValueError(
            f"cannot place {k} members with {len(members)} candidates"
        )
    return members


@dataclass
class PlacementResult:
    """Withdrawal convergence for one placement strategy."""

    strategy: str
    sdn_count: int
    members: frozenset
    convergence: BoxplotStats
    mean_member_degree: float


def _ba_seed11(n: int) -> Topology:
    # module-level (not a lambda) so sweep specs can pickle it to
    # worker processes and digest it for the result cache.
    return barabasi_albert(n, 2, seed=11)


def placement_sweep(
    *,
    n: int = 16,
    sdn_count: int = 5,
    runs: int = 5,
    mrai: float = 30.0,
    seed_base: int = 800,
    topology_factory: Callable[[int], Topology] = _ba_seed11,
    strategies: Sequence[str] = ("hubs-first", "stubs-first", "spread"),
    workers: int = 1,
    cache=None,
    progress=None,
    timeout: Optional[float] = None,
    retries: int = 1,
) -> List[PlacementResult]:
    """Same budget, different member choices, same withdrawal event.

    Member sets are picked up front (the topology factory is
    deterministic) and carried in each spec explicitly; the grid then
    runs through :class:`~repro.runner.ParallelRunner`.
    """
    sample = topology_factory(n)
    chosen: Dict[str, frozenset] = {
        strategy: pick_members(
            strategy, sample, sdn_count,
            WithdrawalScenario().reserved_legacy,
        )
        for strategy in strategies
    }
    specs: List[RunSpec] = []
    for strategy in strategies:
        for run_index in range(runs):
            specs.append(
                RunSpec(
                    scenario_factory=WithdrawalScenario,
                    topology_factory=topology_factory,
                    n=n,
                    sdn_count=sdn_count,
                    seed=seed_base + run_index,
                    mrai=mrai,
                    sdn_members=tuple(sorted(chosen[strategy])),
                    label=f"placement-{strategy} run={run_index}",
                )
            )
    runner = ParallelRunner(
        workers, timeout=timeout, retries=retries,
        cache=cache, progress=progress,
    )
    records = iter(runner.run(specs))

    results: List[PlacementResult] = []
    for strategy in strategies:
        members = chosen[strategy]
        times = [
            record.measurement.convergence_time
            for record in (next(records) for _ in range(runs))
            if record.ok
        ]
        degree_sum = sum(sample.degree(a) for a in members)
        results.append(
            PlacementResult(
                strategy=strategy,
                sdn_count=sdn_count,
                members=members,
                convergence=boxplot_stats(times),
                mean_member_degree=degree_sum / max(len(members), 1),
            )
        )
    return results
