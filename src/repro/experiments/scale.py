"""Forked scale trials: peak-RSS-honest measurement of one big run.

``benchmarks/bench_scale.py`` draws the scaling curve; the machinery it
needs — build a :class:`~repro.runner.jobs.RunSpec` for one
withdrawal-storm trial on the synthetic CAIDA hierarchy, execute it in
a **forked child process**, and read back wall times, kernel event
counts and ``ru_maxrss`` — lives here so tests (the 10k-AS memory
smoke) can reuse it without importing benchmark collection code.

The fork is what makes peak RSS honest: ``getrusage(RUSAGE_SELF).
ru_maxrss`` is a process-lifetime high-water mark that never goes down,
so trials sharing a process would all inherit the largest footprint
seen so far.
"""

from __future__ import annotations

import multiprocessing
import resource
import time
import traceback
from typing import Any, Dict, List

from ..bgp.attrs import intern_stats
from ..framework.convergence import measure_event
from ..framework.experiment import Experiment
from ..runner.jobs import RunRecord, RunSpec
from ..topology import caida_hierarchy
from .common import WithdrawalScenario, paper_config, sdn_set_for

__all__ = [
    "SCALE_MRAI",
    "scale_spec",
    "run_scale_trial",
    "record_trial",
    "check_rss_sublinear",
]

#: storm MRAI — small so a trial is one tight exploration burst, not
#: paper-scale 30 s pacing stretched over thousands of routers.
SCALE_MRAI = 2.0


def scale_spec(n: int, seed: int = 0, *, scheduler: str = "heap") -> RunSpec:
    """The one-trial spec at size ``n`` — a real RunSpec, so registry
    rows carry the same digests any sweep of it would."""
    return RunSpec(
        scenario_factory=WithdrawalScenario,
        topology_factory=caida_hierarchy,
        n=n,
        sdn_count=0,
        seed=seed,
        mrai=SCALE_MRAI,
        policy_mode="gao_rexford",
        trace_level="off",
        compact=True,
        lean=True,
        scheduler=scheduler,
        label=f"scale n={n}",
    )


def _measure_trial(spec: RunSpec) -> Dict[str, Any]:
    """Mirror of ``run_trial_full`` that keeps the live experiment in
    scope, so kernel counters and intern pools can be read directly."""
    scenario = spec.scenario_factory()
    topology = scenario.topology(spec.n, spec.topology_factory)
    members = sdn_set_for(topology, spec.sdn_count, scenario.reserved_legacy)
    config = paper_config(
        seed=spec.seed,
        mrai=spec.mrai,
        recompute_delay=spec.recompute_delay,
        policy_mode=spec.policy_mode,
        trace_level=spec.trace_level,
        compact=spec.compact,
        batch_delivery=spec.batch_delivery,
        lean=spec.lean,
        scheduler=spec.scheduler,
    )
    t_start = time.perf_counter()
    exp = Experiment(
        topology, sdn_members=members, config=config, name=scenario.name
    ).build()
    scenario.configure(exp)
    exp.start()
    scenario.prepare(exp)
    t_ready = time.perf_counter()
    # Sample the pools at the converged pre-storm state: the storm is a
    # withdrawal, and withdrawn routes release their (weakly held)
    # interned attributes, so the end-of-trial pools would be empty.
    pools = intern_stats()
    events_before = exp.net.sim.events_processed
    measurement = measure_event(
        exp, lambda: scenario.event(exp), horizon=spec.horizon
    )
    scenario.finish(exp)
    t_done = time.perf_counter()
    storm_events = exp.net.sim.events_processed - events_before
    storm_wall = t_done - t_ready
    return {
        "n": spec.n,
        "links": len(topology.links),
        "measurement": measurement,
        "build_wall_s": round(t_ready - t_start, 3),
        "storm_wall_s": round(storm_wall, 3),
        "total_wall_s": round(t_done - t_start, 3),
        "events_total": exp.net.sim.events_processed,
        "storm_events": storm_events,
        "events_per_s": round(storm_events / storm_wall) if storm_wall > 0 else 0,
        # Linux reports ru_maxrss in KiB.
        "peak_rss_mib": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
        ),
        "intern_pools": pools,
    }


def _child_entry(spec: RunSpec, conn) -> None:
    try:
        conn.send(("ok", _measure_trial(spec)))
    except Exception:
        conn.send(("error", traceback.format_exc(limit=20)))
    finally:
        conn.close()


def run_scale_trial(spec: RunSpec) -> Dict[str, Any]:
    """Run one trial in a forked child and return its result dict."""
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_child_entry, args=(spec, child_conn))
    proc.start()
    child_conn.close()
    try:
        status, payload = parent_conn.recv()
    except EOFError:
        proc.join()
        raise RuntimeError(
            f"scale trial n={spec.n} died without reporting "
            f"(exitcode {proc.exitcode})"
        )
    proc.join()
    if status != "ok":
        raise RuntimeError(f"scale trial n={spec.n} failed:\n{payload}")
    return payload


def record_trial(registry, spec: RunSpec, result: Dict[str, Any]):
    """Append the trial to the telemetry registry.

    The measurement goes in the standard column; the scale numbers ride
    in the metrics payload under ``"scale"`` so dashboards and the
    regression gate can query them like any other per-run metric.
    """
    measurement = result["measurement"]
    record = RunRecord(
        digest=spec.digest(),
        ok=True,
        measurement=measurement,
        metrics={
            "scale": {
                key: result[key]
                for key in (
                    "n", "links", "build_wall_s", "storm_wall_s",
                    "total_wall_s", "events_total", "storm_events",
                    "events_per_s", "peak_rss_mib", "intern_pools",
                )
            }
        },
        wall_time=result["total_wall_s"],
        worker="bench-scale",
    )
    return registry.record(spec, record)


def check_rss_sublinear(
    rows: List[Dict[str, Any]], *, factor: float = 1.6
) -> None:
    """Assert peak RSS grew sub-linearly across the trial rows.

    "Topology size" is nodes *plus* edges: route storage scales with
    routes, and routes scale with links — on the synthetic CAIDA
    hierarchy the lateral-peering mesh makes links grow faster than n
    (10k ASes carry ~16x the links of 2k), so gating on n alone would
    flag honest per-link growth.  Memory must stay sub-quadratic in
    that measure: a size step of R may cost at most ``R * factor`` in
    RSS; anything above flags an O(size^2) route-storage blowup.
    """
    if len(rows) < 2:
        return
    first, last = rows[0], rows[-1]
    size_ratio = (last["n"] + last["links"]) / (first["n"] + first["links"])
    rss_ratio = last["peak_rss_mib"] / first["peak_rss_mib"]
    assert rss_ratio < size_ratio * factor, (
        f"peak RSS grew {rss_ratio:.1f}x over a {size_ratio:.1f}x "
        "size step — super-linear route storage"
    )
