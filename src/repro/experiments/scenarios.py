"""Fault-suite sweeps: canned fault scenarios vs SDN deployment fraction.

The paper's sweeps measure one clean routing event; this experiment
asks the same question under *dirty* conditions — a whole fault suite
(link outages, crashes, controller failures) plays out against each
deployment fraction, with the invariant checker validating routing
state at every quiet boundary.  Runs are strict by default: an
invariant violation fails the run, so broken state shows up in
``SweepPoint.failures`` instead of silently skewing medians.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..faults.engine import FaultInjector, ScenarioResult
from ..faults.invariants import InvariantError
from ..faults.scenarios import canned_names, get_canned
from ..faults.schedule import FaultSchedule
from ..framework.experiment import Experiment
from ..topology.builders import clique
from .common import Scenario, SweepResult, run_fraction_sweep

__all__ = [
    "FaultSuiteScenario",
    "DEFAULT_FRACTIONS",
    "fault_suite_scenario",
    "sdn_counts_for_fractions",
    "scenarios_sweep",
]

#: the comparison the paper's framing suggests: none / half / full SDN.
DEFAULT_FRACTIONS: Tuple[float, ...] = (0.0, 0.5, 1.0)


@dataclass
class FaultSuiteScenario(Scenario):
    """A canned fault suite as a sweepable scenario.

    The measured "event" is the whole suite: every fault is injected on
    schedule, each gets its own measurement window, and the invariant
    checker runs at quiet boundaries plus once after the final settle.
    ``faults`` (a canonical schedule tuple) overrides the canned
    schedule — it is populated automatically when a sweep embeds a
    schedule in its :class:`~repro.runner.RunSpec`.
    """

    name: str = "faults"
    suite: str = "gateway-outage"
    fault_seed: int = 0
    faults: Optional[tuple] = None
    check_invariants: bool = True
    #: raise on violations so sweep runs fail loudly (the runner turns
    #: the raise into a FailedRun rather than aborting the sweep).
    strict: bool = True
    #: the last run's full result (reports, violations, trace digest).
    result: Optional[ScenarioResult] = None

    def __post_init__(self) -> None:
        canned = get_canned(self.suite)
        self.name = f"faults:{self.suite}"
        self.reserved_legacy = frozenset(canned.reserved)

    def schedule(self) -> FaultSchedule:
        if self.faults is not None:
            return FaultSchedule.from_canonical(self.faults)
        return get_canned(self.suite).schedule(self.fault_seed)

    def prepare(self, exp: Experiment) -> None:
        """Give the checker real state: each origin announces its /24."""
        for asn in get_canned(self.suite).origins:
            exp.announce(asn, exp.as_prefix(asn))
        exp.wait_converged()

    def event(self, exp: Experiment) -> None:
        self._injector = FaultInjector(
            exp, self.schedule(), check_invariants=self.check_invariants
        )
        self._injector.inject()

    def finish(self, exp: Experiment) -> None:
        self.result = self._injector.finalize()
        if self.strict and not self.result.ok:
            raise InvariantError(self.result.violations)


def fault_suite_scenario(
    suite: str = "gateway-outage", fault_seed: int = 0
) -> FaultSuiteScenario:
    """Module-level factory (picklable/digestable) for sweep specs."""
    return FaultSuiteScenario(suite=suite, fault_seed=fault_seed)


def sdn_counts_for_fractions(
    n: int, fractions: Sequence[float], reserved: frozenset
) -> list:
    """Fractions -> distinct convertible counts; 1.0 means "every
    convertible AS" (the reserved actors never convert)."""
    max_sdn = n - len(reserved)
    counts = []
    for fraction in fractions:
        count = min(round(fraction * n), max_sdn)
        if count not in counts:
            counts.append(count)
    return counts


def scenarios_sweep(
    *,
    n: int = 16,
    suites: Optional[Sequence[str]] = None,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    runs: int = 3,
    fault_seed: int = 0,
    mrai: float = 5.0,
    recompute_delay: float = 0.5,
    seed_base: int = 100,
    topology_factory=clique,
    workers: int = 1,
    cache=None,
    progress=None,
    trace_level: str = "full",
) -> Dict[str, SweepResult]:
    """Every canned suite (or a chosen subset) against each fraction.

    Defaults to MRAI 5 s rather than the paper's 30 s: fault suites pack
    several events a few seconds apart, and the shorter MRAI keeps
    consecutive faults from trivially overlapping (overlap still works,
    it just measures the composite instead of each fault).
    """
    results: Dict[str, SweepResult] = {}
    for suite in suites if suites is not None else canned_names():
        factory = functools.partial(
            fault_suite_scenario, suite=suite, fault_seed=fault_seed
        )
        probe = factory()
        results[suite] = run_fraction_sweep(
            factory,
            n=n,
            sdn_counts=sdn_counts_for_fractions(
                n, fractions, probe.reserved_legacy
            ),
            runs=runs,
            mrai=mrai,
            recompute_delay=recompute_delay,
            seed_base=seed_base,
            topology_factory=topology_factory,
            workers=workers,
            cache=cache,
            progress=progress,
            trace_level=trace_level,
        )
    return results
