"""Sub-cluster resilience experiment (design goal §2).

"We want to support disjoint AS sub-clusters controlled by the same
controller, so that an intra-cluster link failure does not isolate the
controlled ASes: paths over the legacy Internet could still connect the
sub-clusters."

Topology: a bar-bell — two SDN members on each side joined by a single
intra-cluster link, with legacy ASes attached to both sides.  Failing
the middle link splits the cluster into two sub-clusters; the controller
must reroute cross-side traffic over the legacy world, and connectivity
must survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..framework.convergence import ConvergenceMeasurement, measure_event
from ..framework.experiment import Experiment
from ..topology.model import Topology
from .common import paper_config

__all__ = ["SubClusterResult", "barbell_topology", "run_subcluster_experiment"]

#: ASNs in the bar-bell: 1-2 left members, 3-4 right members, 5-8 legacy.
LEFT_MEMBERS = (1, 2)
RIGHT_MEMBERS = (3, 4)
LEGACY = (5, 6, 7, 8)
BRIDGE = (2, 3)


def barbell_topology() -> Topology:
    """Two 2-member SDN sides bridged by one intra-cluster link.

    Legacy AS5/AS6 attach to the left side, AS7/AS8 to the right, and a
    legacy backbone 5-6-7-8 provides the detour path that must carry
    traffic when the bridge fails.
    """
    topo = Topology(name="barbell")
    for asn in (*LEFT_MEMBERS, *RIGHT_MEMBERS, *LEGACY):
        topo.add_as(asn)
    topo.add_link(1, 2)           # left intra-cluster
    topo.add_link(3, 4)           # right intra-cluster
    topo.add_link(*BRIDGE)        # the bridge that will fail
    topo.add_link(1, 5)
    topo.add_link(2, 6)
    topo.add_link(3, 7)
    topo.add_link(4, 8)
    topo.add_link(5, 6)
    topo.add_link(6, 7)           # legacy detour across the middle
    topo.add_link(7, 8)
    return topo


@dataclass
class SubClusterResult:
    """Outcome of the split experiment."""

    measurement: ConvergenceMeasurement
    sub_clusters_before: List[Tuple[str, ...]]
    sub_clusters_after: List[Tuple[str, ...]]
    reachable_before: bool
    reachable_after: bool
    #: data-plane path of left-member -> right-member traffic post-split.
    cross_path_after: List[str]


def run_subcluster_experiment(
    *, seed: int = 0, mrai: float = 5.0, recompute_delay: float = 0.2
) -> SubClusterResult:
    """Fail the bridge link and verify the legacy detour carries traffic."""
    topology = barbell_topology()
    config = paper_config(
        seed=seed, mrai=mrai, recompute_delay=recompute_delay
    )
    exp = Experiment(
        topology,
        sdn_members=(*LEFT_MEMBERS, *RIGHT_MEMBERS),
        config=config,
        name="subcluster",
    ).start()
    controller = exp.controller
    before = [tuple(sorted(c)) for c in controller.switch_graph.sub_clusters()]
    reachable_before = exp.all_reachable()
    measurement = measure_event(exp, lambda: exp.fail_link(*BRIDGE))
    after = [tuple(sorted(c)) for c in controller.switch_graph.sub_clusters()]
    reachable_after = exp.all_reachable()
    cross = exp.reachable(LEFT_MEMBERS[0], RIGHT_MEMBERS[1])
    return SubClusterResult(
        measurement=measurement,
        sub_clusters_before=before,
        sub_clusters_after=after,
        reachable_before=reachable_before,
        reachable_after=reachable_after,
        cross_path_after=cross.hops if cross.reached else [],
    )
