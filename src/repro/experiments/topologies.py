"""Topology-family experiment (§3: data-driven and model topologies).

The paper's framework builds topologies "from the iPlane Inter-PoP links
and the CAIDA AS Relationship datasets" as well as theoretical models.
This experiment runs the same withdrawal event across topology families
— clique, Barabási–Albert, synthetic CAIDA (with Gao-Rexford policies),
synthetic iPlane — comparing how much path exploration each admits and
how much centralizing a fixed fraction of ASes helps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.stats import BoxplotStats, boxplot_stats
from ..framework.convergence import measure_event
from ..framework.experiment import Experiment
from ..topology.builders import barabasi_albert, clique
from ..topology.caida import synthetic_caida_topology
from ..topology.iplane import synthetic_iplane_topology
from ..topology.model import Topology
from .common import paper_config, sdn_set_for

__all__ = ["TopologyFamilyResult", "topology_family_sweep", "FAMILIES"]


def _caida(n_unused: int) -> Topology:
    return synthetic_caida_topology(tier1=3, transit=5, stubs=8, seed=7)


def _iplane(n: int) -> Topology:
    return synthetic_iplane_topology(n_as=n, seed=7)


#: name -> (topology factory(n), policy_mode)
FAMILIES: Dict[str, tuple] = {
    "clique": (clique, "flat"),
    "barabasi-albert": (lambda n: barabasi_albert(n, 2, seed=7), "flat"),
    "caida-synth": (_caida, "gao_rexford"),
    "iplane-synth": (_iplane, "flat"),
}


@dataclass
class TopologyFamilyResult:
    """Withdrawal convergence on one topology family."""

    family: str
    n_ases: int
    n_links: int
    pure_bgp: BoxplotStats
    hybrid: BoxplotStats
    sdn_count: int

    @property
    def reduction(self) -> float:
        """Relative improvement of hybrid over pure BGP."""
        base = self.pure_bgp.median
        return (base - self.hybrid.median) / base if base > 0 else 0.0


def topology_family_sweep(
    *,
    n: int = 16,
    sdn_fraction: float = 0.5,
    runs: int = 5,
    mrai: float = 30.0,
    seed_base: int = 600,
    families: Optional[Dict[str, tuple]] = None,
) -> List[TopologyFamilyResult]:
    """Withdrawal convergence per family, 0% vs ``sdn_fraction`` SDN."""
    results: List[TopologyFamilyResult] = []
    for family, (factory, policy_mode) in (families or FAMILIES).items():
        sample = factory(n)
        origin = sample.asns[0]
        sdn_count = int(len(sample) * sdn_fraction)
        times: Dict[int, List[float]] = {0: [], sdn_count: []}
        for k in (0, sdn_count):
            for run_index in range(runs):
                topology = factory(n)
                members = sdn_set_for(topology, k, frozenset({origin}))
                config = paper_config(
                    seed=seed_base + run_index + k,
                    mrai=mrai,
                    policy_mode=policy_mode,
                )
                exp = Experiment(
                    topology, sdn_members=members, config=config,
                    name=f"family-{family}",
                ).start()
                prefix = exp.announce(origin)
                exp.wait_converged()
                m = measure_event(exp, lambda: exp.withdraw(origin, prefix))
                times[k].append(m.convergence_time)
        results.append(
            TopologyFamilyResult(
                family=family,
                n_ases=len(sample),
                n_links=len(sample.links),
                pure_bgp=boxplot_stats(times[0]),
                hybrid=boxplot_stats(times[sdn_count]),
                sdn_count=sdn_count,
            )
        )
    return results
