"""Topology-family experiment (§3: data-driven and model topologies).

The paper's framework builds topologies "from the iPlane Inter-PoP links
and the CAIDA AS Relationship datasets" as well as theoretical models.
This experiment runs the same withdrawal event across topology families
— clique, Barabási–Albert, synthetic CAIDA (with Gao-Rexford policies),
synthetic iPlane — comparing how much path exploration each admits and
how much centralizing a fixed fraction of ASes helps.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.stats import BoxplotStats, boxplot_stats
from ..runner import ParallelRunner, RunSpec
from ..topology.builders import barabasi_albert, clique
from ..topology.caida import synthetic_caida_topology
from ..topology.iplane import synthetic_iplane_topology
from ..topology.model import Topology
from .common import WithdrawalScenario

__all__ = ["TopologyFamilyResult", "topology_family_sweep", "FAMILIES"]


def _ba(n: int) -> Topology:
    # module-level (not a lambda) so sweep specs can pickle it to
    # worker processes and digest it for the result cache.
    return barabasi_albert(n, 2, seed=7)


def _caida(n_unused: int) -> Topology:
    return synthetic_caida_topology(tier1=3, transit=5, stubs=8, seed=7)


def _iplane(n: int) -> Topology:
    return synthetic_iplane_topology(n_as=n, seed=7)


#: name -> (topology factory(n), policy_mode)
FAMILIES: Dict[str, tuple] = {
    "clique": (clique, "flat"),
    "barabasi-albert": (_ba, "flat"),
    "caida-synth": (_caida, "gao_rexford"),
    "iplane-synth": (_iplane, "flat"),
}


@dataclass
class TopologyFamilyResult:
    """Withdrawal convergence on one topology family."""

    family: str
    n_ases: int
    n_links: int
    pure_bgp: BoxplotStats
    hybrid: BoxplotStats
    sdn_count: int

    @property
    def reduction(self) -> float:
        """Relative improvement of hybrid over pure BGP."""
        base = self.pure_bgp.median
        return (base - self.hybrid.median) / base if base > 0 else 0.0


def topology_family_sweep(
    *,
    n: int = 16,
    sdn_fraction: float = 0.5,
    runs: int = 5,
    mrai: float = 30.0,
    seed_base: int = 600,
    families: Optional[Dict[str, tuple]] = None,
    workers: int = 1,
    cache=None,
    progress=None,
    timeout: Optional[float] = None,
    retries: int = 1,
) -> List[TopologyFamilyResult]:
    """Withdrawal convergence per family, 0% vs ``sdn_fraction`` SDN.

    The whole grid (all families x both deployments x runs) is one
    declarative job matrix executed by
    :class:`~repro.runner.ParallelRunner` (see ``docs/runner.md``).
    """
    grid: List[tuple] = []  # (family, sample, sdn_count)
    specs: List[RunSpec] = []
    for family, (factory, policy_mode) in (families or FAMILIES).items():
        sample = factory(n)
        origin = sample.asns[0]
        sdn_count = int(len(sample) * sdn_fraction)
        grid.append((family, sample, sdn_count))
        for k in (0, sdn_count):
            for run_index in range(runs):
                specs.append(
                    RunSpec(
                        scenario_factory=functools.partial(
                            WithdrawalScenario, origin=origin
                        ),
                        topology_factory=factory,
                        n=n,
                        sdn_count=k,
                        seed=seed_base + run_index + k,
                        mrai=mrai,
                        policy_mode=policy_mode,
                        label=f"family-{family} sdn={k} run={run_index}",
                    )
                )
    runner = ParallelRunner(
        workers, timeout=timeout, retries=retries,
        cache=cache, progress=progress,
    )
    records = iter(runner.run(specs))

    results: List[TopologyFamilyResult] = []
    for family, sample, sdn_count in grid:
        times: Dict[int, List[float]] = {0: [], sdn_count: []}
        for k in (0, sdn_count):
            for _ in range(runs):
                record = next(records)
                if record.ok:
                    times[k].append(record.measurement.convergence_time)
        results.append(
            TopologyFamilyResult(
                family=family,
                n_ases=len(sample),
                n_links=len(sample.links),
                pure_bgp=boxplot_stats(times[0]),
                hybrid=boxplot_stats(times[sdn_count]),
                sdn_count=sdn_count,
            )
        )
    return results
