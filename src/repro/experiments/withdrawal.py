"""Fig. 2 experiment: route withdrawal convergence vs SDN deployment.

"In Fig. 2 we show how the convergence time can be linearly reduced in a
route withdrawal experiment with different percentages of SDN deployment
in a 16-node clique ... boxplots over 10 runs."

Mechanism being measured: a withdrawal on a transit-all clique triggers
BGP path exploration — every legacy AS serially walks ever-longer stale
alternatives, each step paced by MRAI.  Every AS moved under the IDR
controller stops exploring (the controller recomputes Dijkstra once), so
convergence time falls roughly linearly in the converted fraction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .common import SweepResult, WithdrawalScenario, run_fraction_sweep

__all__ = ["withdrawal_sweep", "DEFAULT_SDN_COUNTS"]

#: Even steps over the 16-AS clique (origin stays legacy, so 15 is max).
DEFAULT_SDN_COUNTS = (0, 2, 4, 6, 8, 10, 12, 14, 15)


def withdrawal_sweep(
    *,
    n: int = 16,
    sdn_counts: Optional[Sequence[int]] = None,
    runs: int = 10,
    mrai: float = 30.0,
    recompute_delay: float = 0.5,
    seed_base: int = 100,
    workers: int = 1,
    cache=None,
    progress=None,
    timeout: Optional[float] = None,
    retries: int = 1,
    trace_level: str = "full",
    metrics: bool = False,
    profile: bool = False,
    registry=None,
    sample_hz: float = 0.0,
    anatomy: bool = False,
) -> SweepResult:
    """Reproduce Fig. 2; returns per-fraction convergence boxplot data.

    ``workers``/``cache``/``progress``/``timeout``/``retries`` route the
    grid through :class:`~repro.runner.ParallelRunner` (results are
    bit-identical at any worker count; see ``docs/runner.md``).
    ``profile`` attaches per-trial cProfile tables; ``registry`` records
    every trial into the cross-run telemetry store
    (``docs/telemetry.md``).
    """
    if sdn_counts is None:
        max_sdn = n - 1
        sdn_counts = sorted(
            {c for c in DEFAULT_SDN_COUNTS if c < max_sdn} | {max_sdn}
        )
    return run_fraction_sweep(
        WithdrawalScenario,
        n=n,
        sdn_counts=list(sdn_counts),
        runs=runs,
        mrai=mrai,
        recompute_delay=recompute_delay,
        seed_base=seed_base,
        workers=workers,
        cache=cache,
        progress=progress,
        timeout=timeout,
        retries=retries,
        trace_level=trace_level,
        metrics=metrics,
        profile=profile,
        registry=registry,
        sample_hz=sample_hz,
        anatomy=anatomy,
    )
