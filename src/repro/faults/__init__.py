"""Declarative fault injection with invariant checking.

Three layers:

- :mod:`~repro.faults.schedule` — what breaks and when
  (:class:`FaultSchedule`: builder / JSON spec / canonical tuple);
- :mod:`~repro.faults.engine` — the :class:`FaultInjector` that turns a
  schedule into simulator events, opens a per-fault measurement window,
  and runs the checker at quiet boundaries;
- :mod:`~repro.faults.invariants` — the :class:`InvariantChecker`
  (no forwarding loops, no stale Loc-RIB state, controller/switch sync,
  per-fault time ordering).

:mod:`~repro.faults.scenarios` registers canned, named suites for the
CLI (``repro faults run --scenario gateway-outage``) and sweeps.
"""

from .engine import FaultError, FaultInjector, FaultReport, ScenarioResult
from .invariants import InvariantChecker, InvariantError, InvariantViolation
from .scenarios import (
    CANNED_SCENARIOS,
    CannedScenario,
    canned_names,
    canned_schedule,
    get_canned,
)
from .schedule import FAULT_KINDS, FaultEvent, FaultSchedule, FaultSpecError

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FaultSpecError",
    "FaultError",
    "FaultInjector",
    "FaultReport",
    "ScenarioResult",
    "InvariantChecker",
    "InvariantError",
    "InvariantViolation",
    "CANNED_SCENARIOS",
    "CannedScenario",
    "canned_names",
    "canned_schedule",
    "get_canned",
]
