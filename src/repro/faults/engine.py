"""The fault injector: turns a schedule into first-class simulator events.

Every :class:`~repro.faults.schedule.FaultEvent` is pre-scheduled on the
experiment's :class:`~repro.eventsim.Simulator` at inject time, so fault
application interleaves with routing work under the exact same virtual
clock — a fault at offset 0 is bit-identical to calling the experiment
command synchronously, because all protocol timing is delay-based.

Per fault the engine:

1. at a *quiet* boundary (no foreground work pending and no heal
   outstanding) closes earlier measurement windows and runs the
   :class:`~repro.faults.invariants.InvariantChecker`;
2. records ``fault.inject`` on the bus (a non-route-affecting category,
   so measurements are unperturbed) and opens a
   :class:`~repro.framework.convergence.MeasurementWindow`;
3. applies the fault through the experiment's fault commands;
4. schedules the *heal* (flap toggles, degradation restore, router
   restart, controller recovery, partition heal), recording
   ``fault.heal`` when it completes.

Windows may overlap when a fault fires mid-convergence of an earlier
one; each report still satisfies ``t_settled >= t_converged >=
t_state_converged >= t_event``.

Determinism: flap jitter draws from the named random stream
``fault.jitter.<fault_seed>``, so (a) it never perturbs the streams
existing components use, and (b) the same schedule + seeds reproduce
the identical event trace — ``ScenarioResult.trace_digest`` makes that
checkable from the CLI.
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..framework.convergence import ConvergenceMeasurement, MeasurementWindow
from ..net.addr import Prefix
from .invariants import InvariantChecker, InvariantError, InvariantViolation
from .schedule import FaultEvent, FaultSchedule

__all__ = ["FaultInjector", "FaultReport", "ScenarioResult", "FaultError"]


class FaultError(RuntimeError):
    """Engine misuse (double inject, fault on an impossible target)."""


@dataclass
class FaultReport:
    """Outcome of one injected fault."""

    index: int
    kind: str
    at: float
    #: absolute virtual time the fault fired.
    t_fired: float = 0.0
    #: True when the fault was a no-op on this deployment (e.g. a
    #: controller fault in a pure-BGP run).
    skipped: bool = False
    measurement: Optional[ConvergenceMeasurement] = None
    violations: List[InvariantViolation] = field(default_factory=list)

    def describe(self) -> str:
        if self.skipped:
            return f"#{self.index} {self.kind} @ t={self.t_fired:.3f} (skipped)"
        conv = (
            f"conv={self.measurement.convergence_time:.3f}s"
            if self.measurement is not None
            else "conv=?"
        )
        return f"#{self.index} {self.kind} @ t={self.t_fired:.3f} {conv}"


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    reports: List[FaultReport]
    violations: List[InvariantViolation]
    t_start: float
    t_end: float
    #: sha256 over the retained event trace (falls back to the bus's
    #: per-category counts when capture is off) — equal digests mean
    #: bit-identical runs.
    trace_digest: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def convergence_times(self) -> List[float]:
        """Per-fault convergence times, skipped faults as 0.0."""
        return [
            r.measurement.convergence_time if r.measurement is not None else 0.0
            for r in self.reports
        ]


class FaultInjector:
    """Schedules a :class:`FaultSchedule` onto a started experiment."""

    def __init__(
        self,
        experiment,
        schedule: FaultSchedule,
        *,
        check_invariants: bool = True,
        strict: bool = False,
    ) -> None:
        self.experiment = experiment
        self.schedule = schedule
        self.checker = (
            InvariantChecker(experiment) if check_invariants else None
        )
        self.strict = strict
        self.reports: List[FaultReport] = []
        self.violations: List[InvariantViolation] = []
        self._open: List[tuple] = []  # (report, MeasurementWindow | None)
        self._unhealed = 0
        self._injected = False
        self._finalized = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def inject(self) -> None:
        """Pre-schedule every fault relative to the current instant."""
        if self._injected:
            raise FaultError("schedule already injected")
        self._injected = True
        sim = self.experiment.net.sim
        for index, event in enumerate(self.schedule.events):
            sim.schedule(
                event.at,
                functools.partial(self._fire, index, event),
                label=f"fault:{event.kind}",
            )

    def run(self, *, horizon: Optional[float] = None) -> ScenarioResult:
        """Inject, settle, and finalize in one call."""
        t_start = self.experiment.now
        self.inject()
        t_end = self.experiment.wait_converged(horizon)
        return self.finalize(t_start=t_start, t_end=t_end)

    def finalize(
        self,
        *,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
    ) -> ScenarioResult:
        """Close remaining windows, run the final checks, build the result."""
        if self._finalized:
            raise FaultError("scenario already finalized")
        self._finalized = True
        now = self.experiment.now
        self._close_open_windows()
        self._run_checks()
        for report in self.reports:
            if report.measurement is None:
                continue
            ordering = InvariantChecker.check_measurement(
                report.measurement, fault=f"#{report.index} {report.kind}"
            )
            report.violations.extend(ordering)
            self.violations.extend(ordering)
        result = ScenarioResult(
            reports=self.reports,
            violations=self.violations,
            t_start=t_start if t_start is not None else now,
            t_end=t_end if t_end is not None else now,
            trace_digest=self.trace_digest(),
        )
        if self.strict and not result.ok:
            raise InvariantError(result.violations)
        return result

    def trace_digest(self) -> str:
        """Digest of the run's observable behaviour (for reproducibility
        checks): retained trace records, or bus counts when capture is
        off."""
        hasher = hashlib.sha256()
        trace = self.experiment.net.trace
        records = list(trace)
        if records:
            for record in records:
                hasher.update(
                    f"{record.time!r}|{record.category}|{record.node}\n".encode()
                )
        else:
            for category in sorted(self.experiment.net.bus.counts):
                count = self.experiment.net.bus.counts[category]
                hasher.update(f"{category}={count}\n".encode())
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def _fire(self, index: int, event: FaultEvent) -> None:
        exp = self.experiment
        sim = exp.net.sim
        if sim.pending_foreground() == 0:
            # Quiet boundary: everything before this fault has converged.
            self._close_open_windows()
            self._run_checks()
        exp.net.bus.record(
            "fault.inject", "faults",
            kind=event.kind, index=index, at=event.at,
        )
        report = FaultReport(
            index=index, kind=event.kind, at=event.at, t_fired=sim.now
        )
        self.reports.append(report)
        window = (
            MeasurementWindow(exp, label=f"{index}:{event.kind}")
            if exp.tracker is not None
            else None
        )
        self._open.append((report, window))
        applier = getattr(self, f"_apply_{event.kind}")
        applier(index, event, dict(event.params))

    def _close_open_windows(self) -> None:
        now = self.experiment.now
        for report, window in self._open:
            if window is not None and not window.closed:
                report.measurement = window.close(now)
        self._open = []

    def _run_checks(self) -> None:
        if self.checker is None or self._unhealed > 0:
            return
        found = self.checker.check()
        if not found:
            return
        self.violations.extend(found)
        if self.reports:
            self.reports[-1].violations.extend(found)

    def _heal(self, index: int, kind: str, action) -> None:
        action()
        self._unhealed -= 1
        self.experiment.net.bus.record(
            "fault.heal", "faults", kind=kind, index=index
        )

    def _schedule_heal(self, delay: float, index: int, kind: str, action):
        self._unhealed += 1
        self.experiment.net.sim.schedule(
            delay,
            functools.partial(self._heal, index, kind, action),
            label=f"fault:{kind}:heal",
        )

    def _skip(self, index: int, kind: str, why: str) -> None:
        self.reports[-1].skipped = True
        self.experiment.net.bus.record(
            "fault.skipped", "faults", kind=kind, index=index, reason=why
        )

    # ------------------------------------------------------------------
    # per-kind application
    # ------------------------------------------------------------------
    def _apply_link_down(self, index, event, p) -> None:
        self.experiment.fail_link(p["a"], p["b"])

    def _apply_link_up(self, index, event, p) -> None:
        self.experiment.restore_link(p["a"], p["b"])

    def _apply_link_flap(self, index, event, p) -> None:
        link = self.experiment.phys_link(p["a"], p["b"])
        count = p.get("count", 3)
        interval = p.get("interval", 1.0)
        jitter = p.get("jitter", 0.0)
        rng = self.experiment.net.sim.rng(
            f"fault.jitter.{self.schedule.fault_seed}"
        )
        # 2*count toggles (down at even steps, up at odd), jittered but
        # kept monotonic so a large jitter cannot reorder the sequence.
        offsets: List[float] = []
        last = 0.0
        for step in range(2 * count):
            base = step * interval
            wobble = rng.uniform(0.0, jitter) if jitter > 0 else 0.0
            last = max(last, base + wobble)
            offsets.append(last)
        sim = self.experiment.net.sim
        link.set_up(False)  # first toggle fires with the fault itself
        for step in range(1, 2 * count - 1):
            sim.schedule(
                offsets[step] - offsets[0],
                functools.partial(link.set_up, step % 2 == 1),
                label="fault:link_flap:toggle",
            )
        final_delay = (
            offsets[2 * count - 1] - offsets[0] if count > 0 else 0.0
        )
        self._schedule_heal(
            final_delay, index, "link_flap",
            functools.partial(link.set_up, True),
        )

    def _apply_link_degrade(self, index, event, p) -> None:
        previous = self.experiment.degrade_link(
            p["a"], p["b"],
            latency=p.get("latency"), loss=p.get("loss"),
        )

        def restore() -> None:
            self.experiment.net.set_link_quality(
                self.experiment.phys_link(p["a"], p["b"]), **previous
            )

        self._schedule_heal(p["duration"], index, "link_degrade", restore)

    def _apply_session_reset(self, index, event, p) -> None:
        self.experiment.reset_session(p["asn"], p["peer"])

    def _apply_router_crash(self, index, event, p) -> None:
        asn = p["asn"]
        self.experiment.crash_router(asn)
        self._schedule_heal(
            p.get("down_for", 5.0), index, "router_crash",
            functools.partial(self.experiment.restart_router, asn),
        )

    def _apply_controller_fail(self, index, event, p) -> None:
        if self.experiment.controller is None:
            self._skip(index, "controller_fail", "no controller deployed")
            return
        self.experiment.fail_controller()
        self._schedule_heal(
            p.get("outage", 5.0), index, "controller_fail",
            self.experiment.recover_controller,
        )

    def _apply_controller_partition(self, index, event, p) -> None:
        if self.experiment.speaker is None:
            self._skip(index, "controller_partition", "no speaker deployed")
            return
        self.experiment.partition_controller()
        self._schedule_heal(
            p.get("duration", 5.0), index, "controller_partition",
            self.experiment.heal_controller_partition,
        )

    def _resolve_prefix(self, p: Dict) -> Prefix:
        raw = p.get("prefix")
        if raw is not None:
            return Prefix.parse(raw)
        return self.experiment.as_prefix(p["asn"])

    def _is_originated(self, asn: int, prefix) -> bool:
        node = self.experiment.node(asn)
        if hasattr(node, "originated"):  # legacy BGP router
            return prefix in node.originated
        # SDN member: the controller tracks cluster originations
        members = self.experiment.controller.originations.get(prefix, set())
        return node.name in members

    def _set_origination(self, asn: int, prefix, withdrawing: bool) -> None:
        """Idempotent announce/withdraw: composed schedules may flip a
        prefix that another fault already left in the target state."""
        originated = self._is_originated(asn, prefix)
        if withdrawing and originated:
            self.experiment.withdraw(asn, prefix)
        elif not withdrawing and not originated:
            self.experiment.announce(asn, prefix)

    def _apply_announce(self, index, event, p) -> None:
        self._set_origination(p["asn"], self._resolve_prefix(p), False)

    def _apply_withdraw(self, index, event, p) -> None:
        self._set_origination(p["asn"], self._resolve_prefix(p), True)

    def _apply_prefix_flap(self, index, event, p) -> None:
        asn = p["asn"]
        prefix = self._resolve_prefix(p)
        count = p.get("count", 2)
        interval = p.get("interval", 1.0)
        first = p.get("first", "withdraw")
        sim = self.experiment.net.sim

        def flip(step: int) -> None:
            withdrawing = (step % 2 == 0) == (first == "withdraw")
            self._set_origination(asn, prefix, withdrawing)

        flip(0)
        for step in range(1, count):
            sim.schedule(
                step * interval,
                functools.partial(flip, step),
                label="fault:prefix_flap:flip",
            )
