"""Runtime invariant checking for fault scenarios.

The checker inspects a quiescent experiment — the fault engine calls it
at quiet instants (no foreground work pending, no heal outstanding) and
once more after the final settle — and reports violations of:

1. **No forwarding loops**: no ordered AS pair's data-plane walk revisits
   a node.  Unreachability is *not* a violation (links may legitimately
   be down); a loop always is.
2. **No stale Loc-RIB entries after silence**: every best route is backed
   by live state — locally originated routes by the origination config,
   learned routes by an ESTABLISHED session whose Adj-RIB-In still holds
   the same attributes — and every BGP-sourced FIB entry has a Loc-RIB
   best (and vice versa).
3. **Controller/switch sync**: when the controller is active and
   reachable, its compiled state matches the switches' flow tables
   (:meth:`~repro.controller.idr.IDRController.audit`).
4. **Measurement ordering** per fault:
   ``t_settled >= t_converged >= t_state_converged >= t_event``.

Violations are data (:class:`InvariantViolation`), not exceptions;
strict callers raise :class:`InvariantError` from the collected list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..bgp.router import BGPRouter

__all__ = ["InvariantChecker", "InvariantViolation", "InvariantError"]


@dataclass(frozen=True)
class InvariantViolation:
    """One observed invariant breach at one instant."""

    time: float
    check: str
    node: str
    detail: str

    def __str__(self) -> str:
        return f"[t={self.time:.3f}] {self.check} @ {self.node}: {self.detail}"


class InvariantError(AssertionError):
    """Raised in strict mode when any invariant was violated."""

    def __init__(self, violations: List[InvariantViolation]) -> None:
        self.violations = list(violations)
        lines = "\n".join(str(v) for v in self.violations)
        super().__init__(
            f"{len(self.violations)} invariant violation(s):\n{lines}"
        )


class InvariantChecker:
    """Checks routing-state invariants on a quiescent experiment."""

    def __init__(self, experiment) -> None:
        self.experiment = experiment

    # ------------------------------------------------------------------
    def check(self) -> List[InvariantViolation]:
        """Run every state check; returns violations (empty = clean)."""
        out: List[InvariantViolation] = []
        out.extend(self.check_forwarding_loops())
        out.extend(self.check_loc_rib_consistency())
        out.extend(self.check_controller_sync())
        return out

    # ------------------------------------------------------------------
    def check_forwarding_loops(self) -> List[InvariantViolation]:
        """No data-plane walk between any AS pair may revisit a node."""
        exp = self.experiment
        now = exp.now
        out: List[InvariantViolation] = []
        for (src, dst), trace in exp.connectivity_matrix().items():
            if not trace.reached and trace.reason.startswith("loop"):
                out.append(
                    InvariantViolation(
                        time=now,
                        check="forwarding_loop",
                        node=exp.node(src).name,
                        detail=(
                            f"AS{src}->AS{dst}: {trace.reason} "
                            f"(path {' > '.join(trace.hops)})"
                        ),
                    )
                )
        return out

    # ------------------------------------------------------------------
    def check_loc_rib_consistency(self) -> List[InvariantViolation]:
        """Every Loc-RIB best is backed by live state, and FIB matches."""
        exp = self.experiment
        now = exp.now
        out: List[InvariantViolation] = []
        for node in exp.net.nodes_of_type(BGPRouter):
            for route in node.loc_rib.routes():
                if route.is_local:
                    if route.prefix not in node.originated:
                        out.append(
                            InvariantViolation(
                                time=now, check="stale_loc_rib",
                                node=node.name,
                                detail=(
                                    f"local best for {route.prefix} but the "
                                    f"prefix is no longer originated"
                                ),
                            )
                        )
                    continue
                session = node._session_for_peer(route)
                if session is None:
                    out.append(
                        InvariantViolation(
                            time=now, check="stale_loc_rib", node=node.name,
                            detail=(
                                f"best for {route.prefix} learned from "
                                f"AS{route.peer_asn}/{route.peer_name} but no "
                                f"established session with that peer remains"
                            ),
                        )
                    )
                    continue
                held = node.adj_rib_in(session).get(route.prefix)
                if held is None or held.attrs != route.attrs:
                    out.append(
                        InvariantViolation(
                            time=now, check="stale_loc_rib", node=node.name,
                            detail=(
                                f"best for {route.prefix} diverges from the "
                                f"Adj-RIB-In of {route.peer_name}"
                            ),
                        )
                    )
            out.extend(self._check_fib_sync(node, now))
        return out

    def _check_fib_sync(self, node: BGPRouter, now: float):
        out: List[InvariantViolation] = []
        fib_prefixes = set()
        for entry in node.fib:
            if not entry.source.startswith("bgp"):
                continue
            fib_prefixes.add(entry.prefix)
            if node.loc_rib.get(entry.prefix) is None:
                out.append(
                    InvariantViolation(
                        time=now, check="fib_sync", node=node.name,
                        detail=(
                            f"FIB holds {entry.prefix} (via {entry.via}) "
                            f"with no Loc-RIB best behind it"
                        ),
                    )
                )
        for route in node.loc_rib.routes():
            if route.prefix in fib_prefixes:
                continue
            # A best without a FIB entry is legal only when the backing
            # session vanished mid-install; at quiet instants that state
            # must have been re-decided away.
            out.append(
                InvariantViolation(
                    time=now, check="fib_sync", node=node.name,
                    detail=f"Loc-RIB best for {route.prefix} missing from FIB",
                )
            )
        return out

    # ------------------------------------------------------------------
    def check_controller_sync(self) -> List[InvariantViolation]:
        """Controller-compiled rules match switch flow tables."""
        exp = self.experiment
        controller = exp.controller
        if controller is None or not controller.active:
            return []
        if exp.speaker is not None and not exp.speaker.controller_reachable:
            return []
        now = exp.now
        return [
            InvariantViolation(
                time=now, check="controller_audit",
                node=controller.name, detail=problem,
            )
            for problem in controller.audit()
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def check_measurement(measurement, *, fault: str = "") -> List[
        InvariantViolation
    ]:
        """Per-fault time-ordering chain (holds even for overlapping
        windows — see ``framework.convergence._finalize_instants``)."""
        out: List[InvariantViolation] = []
        label = f"fault {fault}" if fault else "fault"
        chain = (
            ("t_settled", measurement.t_settled, "t_converged",
             measurement.t_converged),
            ("t_converged", measurement.t_converged, "t_state_converged",
             measurement.t_state_converged),
            ("t_state_converged", measurement.t_state_converged, "t_event",
             measurement.t_event),
        )
        for hi_name, hi, lo_name, lo in chain:
            if hi < lo:
                out.append(
                    InvariantViolation(
                        time=measurement.t_event,
                        check="measurement_order",
                        node=label,
                        detail=f"{hi_name}={hi!r} < {lo_name}={lo!r}",
                    )
                )
        return out
