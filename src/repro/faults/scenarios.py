"""Canned fault suites — named, curated schedules for sweeps and the CLI.

Each :class:`CannedScenario` pairs a :class:`~repro.faults.schedule.FaultSchedule`
builder with the metadata a fraction sweep needs:

- ``reserved`` — ASNs that stay legacy BGP routers at every SDN
  deployment fraction, so the fault's actors are identical across the
  sweep and only the *surrounding* deployment varies (the same rule
  :class:`~repro.experiments.common.Scenario` uses for its event actors);
- ``origins`` — ASNs that announce their own /24 during preparation, so
  the invariant checker has real routing state to validate.

All canned suites keep every schedule parameter explicit so two
processes building the same suite produce canonically equal schedules.
The suites that degrade links are latency-only: the loss process drops
*any* message including BGP (there is no TCP retransmission model), so
a lossy window can legitimately leave sessions in flux — fine for
stress runs, wrong for invariant-checked canned suites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .schedule import FaultSchedule

__all__ = [
    "CannedScenario",
    "CANNED_SCENARIOS",
    "canned_names",
    "get_canned",
    "canned_schedule",
]


@dataclass(frozen=True)
class CannedScenario:
    """One named fault suite."""

    name: str
    summary: str
    #: ASNs pinned to legacy BGP in fraction sweeps (the fault's actors).
    reserved: Tuple[int, ...]
    #: ASNs announcing their own /24 before the faults start.
    origins: Tuple[int, ...]
    build: Callable[[int], FaultSchedule]

    def schedule(self, fault_seed: int = 0) -> FaultSchedule:
        return self.build(fault_seed)


def _gateway_flap(fault_seed: int) -> FaultSchedule:
    return FaultSchedule(fault_seed=fault_seed).link_flap(
        1, 2, at=1.0, count=3, interval=1.0, jitter=0.25
    )


def _gateway_outage(fault_seed: int) -> FaultSchedule:
    return (
        FaultSchedule(fault_seed=fault_seed)
        .link_down(1, 2, at=1.0)
        .link_up(1, 2, at=6.0)
    )


def _session_reset(fault_seed: int) -> FaultSchedule:
    return FaultSchedule(fault_seed=fault_seed).session_reset(1, 2, at=1.0)


def _router_crash(fault_seed: int) -> FaultSchedule:
    return FaultSchedule(fault_seed=fault_seed).router_crash(
        2, at=1.0, down_for=5.0
    )


def _controller_blackout(fault_seed: int) -> FaultSchedule:
    # The withdraw lands mid-outage: the controller must defer the
    # recompute and reconcile on recovery.
    return (
        FaultSchedule(fault_seed=fault_seed)
        .controller_fail(at=1.0, outage=4.0)
        .withdraw(1, at=2.0)
        .announce(1, at=8.0)
    )


def _speaker_partition(fault_seed: int) -> FaultSchedule:
    return (
        FaultSchedule(fault_seed=fault_seed)
        .controller_partition(at=1.0, duration=4.0)
        .withdraw(1, at=2.0)
        .announce(1, at=8.0)
    )


def _flap_burst(fault_seed: int) -> FaultSchedule:
    return FaultSchedule(fault_seed=fault_seed).prefix_flap(
        1, at=1.0, count=6, interval=0.3, first="withdraw"
    )


def _degraded_gateway(fault_seed: int) -> FaultSchedule:
    return FaultSchedule(fault_seed=fault_seed).link_degrade(
        1, 2, at=1.0, duration=5.0, latency=0.5
    )


def _stress_composite(fault_seed: int) -> FaultSchedule:
    # Deliberately overlapping: the withdraw fires while the link outage
    # is still converging, and the session reset lands right after the
    # link heals — measurement windows overlap.
    return (
        FaultSchedule(fault_seed=fault_seed)
        .link_down(1, 2, at=1.0)
        .withdraw(3, at=1.2)
        .link_up(1, 2, at=6.0)
        .session_reset(2, 1, at=6.5)
        .announce(3, at=10.0)
    )


CANNED_SCENARIOS: Dict[str, CannedScenario] = {
    s.name: s
    for s in (
        CannedScenario(
            name="gateway-outage",
            summary="gateway link fails, heals 5s later",
            reserved=(1, 2),
            origins=(1, 2),
            build=_gateway_outage,
        ),
        CannedScenario(
            name="gateway-flap",
            summary="gateway link flaps 3x with jittered timing",
            reserved=(1, 2),
            origins=(1, 2),
            build=_gateway_flap,
        ),
        CannedScenario(
            name="session-reset",
            summary="admin reset of the AS1-AS2 BGP session",
            reserved=(1, 2),
            origins=(1, 2),
            build=_session_reset,
        ),
        CannedScenario(
            name="router-crash",
            summary="AS2 crashes (RIB loss), restarts after 5s",
            reserved=(2,),
            origins=(1, 2),
            build=_router_crash,
        ),
        CannedScenario(
            name="controller-blackout",
            summary="controller outage with a withdrawal mid-outage",
            reserved=(1,),
            origins=(1,),
            build=_controller_blackout,
        ),
        CannedScenario(
            name="speaker-partition",
            summary="controller-speaker partition with a mid-partition withdraw",
            reserved=(1,),
            origins=(1,),
            build=_speaker_partition,
        ),
        CannedScenario(
            name="flap-burst",
            summary="AS1 flaps its prefix 6x at 0.3s intervals",
            reserved=(1,),
            origins=(1,),
            build=_flap_burst,
        ),
        CannedScenario(
            name="degraded-gateway",
            summary="gateway link latency degraded 10x for 5s",
            reserved=(1, 2),
            origins=(1, 2),
            build=_degraded_gateway,
        ),
        CannedScenario(
            name="stress-composite",
            summary="overlapping link outage, withdraw, and session reset",
            reserved=(1, 2, 3),
            origins=(1, 2, 3),
            build=_stress_composite,
        ),
    )
}


def canned_names() -> List[str]:
    """All registered suite names, sorted."""
    return sorted(CANNED_SCENARIOS)


def get_canned(name: str) -> CannedScenario:
    try:
        return CANNED_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault scenario {name!r}; choose from {canned_names()}"
        ) from None


def canned_schedule(name: str, *, fault_seed: int = 0) -> FaultSchedule:
    """Build one canned suite's schedule."""
    return get_canned(name).schedule(fault_seed)
