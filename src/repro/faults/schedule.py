"""Declarative fault schedules: what breaks, when, for how long.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent`
records, each a ``(kind, at, params)`` triple.  Three representations
round-trip losslessly:

- the **programmatic builder** (``FaultSchedule().link_down(1, 2,
  at=1.0).router_crash(3, at=5.0)``) for hand-written experiments,
- the **JSON/dict spec** (:meth:`FaultSchedule.to_spec` /
  :meth:`FaultSchedule.from_spec`) for files and CLIs,
- the **canonical tuple** (:meth:`FaultSchedule.canonical` /
  :meth:`FaultSchedule.from_canonical`) — hashable and
  insertion-order-free, the form embedded in a
  :class:`~repro.runner.RunSpec` so cache digests stay stable across
  processes and dict orderings.

Validation happens at build/parse time against a per-kind parameter
table, so a bad schedule fails before any simulation work starts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FaultEvent", "FaultSchedule", "FaultSpecError", "FAULT_KINDS"]

#: canonical-form version tag (bump on incompatible changes so stale
#: cache entries miss instead of misparse).
_CANONICAL_TAG = "faults-v1"


class FaultSpecError(ValueError):
    """A fault schedule that does not validate."""


def _num(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FaultSpecError(f"expected a number, got {value!r}")
    return float(value)


def _asn(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
        raise FaultSpecError(f"expected a positive ASN, got {value!r}")
    return value


def _count(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise FaultSpecError(f"expected a count >= 1, got {value!r}")
    return value


def _nonneg(value: Any) -> float:
    num = _num(value)
    if num < 0:
        raise FaultSpecError(f"expected a non-negative number, got {value!r}")
    return num


def _loss(value: Any) -> float:
    num = _num(value)
    if not 0.0 <= num < 1.0:
        raise FaultSpecError(f"loss must be in [0, 1): {value!r}")
    return num


def _prefix(value: Any) -> str:
    if not isinstance(value, str) or "/" not in value:
        raise FaultSpecError(f"expected a 'a.b.c.d/len' prefix, got {value!r}")
    return value


def _flap_first(value: Any) -> str:
    if value not in ("withdraw", "announce"):
        raise FaultSpecError(
            f"first must be 'withdraw' or 'announce', got {value!r}"
        )
    return value


#: kind -> {param: (caster, required)}.  ``at`` is implicit on every kind.
FAULT_KINDS: Dict[str, Dict[str, tuple]] = {
    "link_down": {"a": (_asn, True), "b": (_asn, True)},
    "link_up": {"a": (_asn, True), "b": (_asn, True)},
    "link_flap": {
        "a": (_asn, True),
        "b": (_asn, True),
        "count": (_count, False),
        "interval": (_nonneg, False),
        "jitter": (_nonneg, False),
    },
    "link_degrade": {
        "a": (_asn, True),
        "b": (_asn, True),
        "duration": (_nonneg, True),
        "latency": (_nonneg, False),
        "loss": (_loss, False),
    },
    "session_reset": {"asn": (_asn, True), "peer": (_asn, True)},
    "router_crash": {"asn": (_asn, True), "down_for": (_nonneg, False)},
    "controller_fail": {"outage": (_nonneg, False)},
    "controller_partition": {"duration": (_nonneg, False)},
    "announce": {"asn": (_asn, True), "prefix": (_prefix, False)},
    "withdraw": {"asn": (_asn, True), "prefix": (_prefix, False)},
    "prefix_flap": {
        "asn": (_asn, True),
        "count": (_count, False),
        "interval": (_nonneg, False),
        "prefix": (_prefix, False),
        "first": (_flap_first, False),
    },
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` at offset ``at`` with ``params``.

    ``params`` is a tuple of ``(key, value)`` pairs sorted by key — the
    hashable, order-free form.  Use :meth:`param` / :meth:`as_dict` for
    convenient access.
    """

    kind: str
    at: float
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "at": self.at}
        out.update(dict(self.params))
        return out

    def describe(self) -> str:
        args = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"t+{self.at:g} {self.kind}({args})"


def _validate(kind: str, at: Any, params: Dict[str, Any]) -> FaultEvent:
    if kind not in FAULT_KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r}; choose from {sorted(FAULT_KINDS)}"
        )
    table = FAULT_KINDS[kind]
    unknown = set(params) - set(table)
    if unknown:
        raise FaultSpecError(f"{kind}: unknown parameters {sorted(unknown)}")
    cleaned: Dict[str, Any] = {}
    for name, (caster, required) in table.items():
        if name in params and params[name] is not None:
            cleaned[name] = caster(params[name])
        elif required:
            raise FaultSpecError(f"{kind}: missing required parameter {name!r}")
    if kind == "link_degrade" and not (
        "latency" in cleaned or "loss" in cleaned
    ):
        raise FaultSpecError("link_degrade needs latency and/or loss")
    return FaultEvent(
        kind=kind, at=_nonneg(at), params=tuple(sorted(cleaned.items()))
    )


class FaultSchedule:
    """An ordered, validated collection of fault events plus a jitter seed.

    ``fault_seed`` names the random sub-stream used for flap jitter; it
    is independent of the experiment's base seed, so the same network
    run can be subjected to differently-jittered instances of one
    schedule (the CLI's ``--fault-seed``).
    """

    def __init__(
        self,
        events: Optional[List[FaultEvent]] = None,
        *,
        fault_seed: int = 0,
    ) -> None:
        self.events: List[FaultEvent] = list(events or [])
        self.fault_seed = int(fault_seed)

    # ------------------------------------------------------------------
    # programmatic builders (all chainable)
    # ------------------------------------------------------------------
    def add(self, kind: str, *, at: float, **params) -> "FaultSchedule":
        """Append one validated fault event."""
        self.events.append(_validate(kind, at, params))
        return self

    def link_down(self, a: int, b: int, *, at: float) -> "FaultSchedule":
        return self.add("link_down", at=at, a=a, b=b)

    def link_up(self, a: int, b: int, *, at: float) -> "FaultSchedule":
        return self.add("link_up", at=at, a=a, b=b)

    def link_flap(
        self,
        a: int,
        b: int,
        *,
        at: float,
        count: int = 3,
        interval: float = 1.0,
        jitter: float = 0.0,
    ) -> "FaultSchedule":
        return self.add(
            "link_flap", at=at, a=a, b=b,
            count=count, interval=interval, jitter=jitter,
        )

    def link_degrade(
        self,
        a: int,
        b: int,
        *,
        at: float,
        duration: float,
        latency: Optional[float] = None,
        loss: Optional[float] = None,
    ) -> "FaultSchedule":
        return self.add(
            "link_degrade", at=at, a=a, b=b,
            duration=duration, latency=latency, loss=loss,
        )

    def session_reset(
        self, asn: int, peer: int, *, at: float
    ) -> "FaultSchedule":
        return self.add("session_reset", at=at, asn=asn, peer=peer)

    def router_crash(
        self, asn: int, *, at: float, down_for: float = 5.0
    ) -> "FaultSchedule":
        return self.add("router_crash", at=at, asn=asn, down_for=down_for)

    def controller_fail(
        self, *, at: float, outage: float = 5.0
    ) -> "FaultSchedule":
        return self.add("controller_fail", at=at, outage=outage)

    def controller_partition(
        self, *, at: float, duration: float = 5.0
    ) -> "FaultSchedule":
        return self.add("controller_partition", at=at, duration=duration)

    def announce(
        self, asn: int, *, at: float, prefix: Optional[str] = None
    ) -> "FaultSchedule":
        return self.add("announce", at=at, asn=asn, prefix=prefix)

    def withdraw(
        self, asn: int, *, at: float, prefix: Optional[str] = None
    ) -> "FaultSchedule":
        return self.add("withdraw", at=at, asn=asn, prefix=prefix)

    def prefix_flap(
        self,
        asn: int,
        *,
        at: float,
        count: int = 2,
        interval: float = 1.0,
        prefix: Optional[str] = None,
        first: str = "withdraw",
    ) -> "FaultSchedule":
        return self.add(
            "prefix_flap", at=at, asn=asn,
            count=count, interval=interval, prefix=prefix, first=first,
        )

    # ------------------------------------------------------------------
    # spec (JSON/dict) form
    # ------------------------------------------------------------------
    def to_spec(self) -> Dict[str, Any]:
        """Plain-dict form, suitable for JSON files and CLI payloads."""
        return {
            "fault_seed": self.fault_seed,
            "events": [event.as_dict() for event in self.events],
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_spec(), sort_keys=True, **kwargs)

    @classmethod
    def from_spec(cls, spec) -> "FaultSchedule":
        """Parse a dict (or JSON string) spec, validating every event."""
        if isinstance(spec, str):
            spec = json.loads(spec)
        if not isinstance(spec, dict):
            raise FaultSpecError(f"spec must be a dict, got {type(spec).__name__}")
        unknown = set(spec) - {"fault_seed", "events"}
        if unknown:
            raise FaultSpecError(f"unknown spec keys {sorted(unknown)}")
        events = []
        for raw in spec.get("events", []):
            if not isinstance(raw, dict) or "kind" not in raw:
                raise FaultSpecError(f"event must be a dict with 'kind': {raw!r}")
            params = {k: v for k, v in raw.items() if k not in ("kind", "at")}
            events.append(_validate(raw["kind"], raw.get("at", 0.0), params))
        return cls(events, fault_seed=spec.get("fault_seed", 0))

    # ------------------------------------------------------------------
    # canonical (hashable, RunSpec-embeddable) form
    # ------------------------------------------------------------------
    def canonical(self) -> tuple:
        """A hashable nested tuple that is independent of how the
        schedule was expressed (builder vs dict, any key order)."""
        return (
            _CANONICAL_TAG,
            self.fault_seed,
            tuple((e.kind, e.at, e.params) for e in self.events),
        )

    @classmethod
    def from_canonical(cls, data) -> "FaultSchedule":
        """Rebuild from :meth:`canonical` output (lists accepted, so the
        form survives a JSON round-trip)."""
        try:
            tag, fault_seed, raw_events = data
        except (TypeError, ValueError):
            raise FaultSpecError(f"not a canonical schedule: {data!r}") from None
        if tag != _CANONICAL_TAG:
            raise FaultSpecError(f"unsupported canonical tag {tag!r}")
        events = []
        for kind, at, params in raw_events:
            events.append(_validate(kind, at, {k: v for k, v in params}))
        return cls(events, fault_seed=fault_seed)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:
        return (
            f"<FaultSchedule events={len(self.events)} "
            f"fault_seed={self.fault_seed}>"
        )
