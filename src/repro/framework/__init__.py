"""Experiment lifecycle orchestration: the framework's high-level API."""

from .convergence import (
    STATE_CHANGING,
    ConvergenceMeasurement,
    ConvergenceTracker,
    MeasurementWindow,
    measure_event,
    measure_event_from_trace,
)
from .detector import SilenceDetection, SilenceDetector, compare_with_oracle
from .events import EventReport, EventSchedule, ScheduledEvent
from .experiment import Experiment, ExperimentConfig, ExperimentError
from .traffic import LossReport, ProbeStream

__all__ = [
    "STATE_CHANGING",
    "ConvergenceMeasurement",
    "ConvergenceTracker",
    "MeasurementWindow",
    "measure_event",
    "measure_event_from_trace",
    "SilenceDetection",
    "SilenceDetector",
    "compare_with_oracle",
    "EventReport",
    "EventSchedule",
    "ScheduledEvent",
    "Experiment",
    "ExperimentConfig",
    "ExperimentError",
    "LossReport",
    "ProbeStream",
]
