"""Convergence detection and measurement.

"The framework detects when the network has converged and whether there
is stable connectivity between all hosts" (paper §3).  Convergence is
detected exactly: the simulator knows when no routing work (foreground
events) remains.  The convergence *time* of an injected event is then
read from the trace — the timestamp of the last route-affecting record —
which matches how the paper measures it from BGP update logs, minus the
sampling noise of a real testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..eventsim import ROUTE_AFFECTING
from .experiment import Experiment

__all__ = ["ConvergenceMeasurement", "measure_event", "STATE_CHANGING"]

#: Categories that represent an actual routing-state change, as opposed
#: to update *activity* (which includes MRAI-paced re-advertisements of
#: decisions already made).
STATE_CHANGING = frozenset(
    {"bgp.decision", "fib.change", "bgp.originate", "bgp.withdraw"}
)


@dataclass
class ConvergenceMeasurement:
    """Outcome of one injected routing event."""

    #: virtual time the event was injected.
    t_event: float
    #: timestamp of the last route-affecting activity (== t_event when
    #: the event caused no routing change at all).
    t_converged: float
    #: virtual time at which the simulator fully settled.
    t_settled: float
    #: timestamp of the last actual routing-state change (decision/FIB).
    #: Trailing MRAI-paced re-advertisements of an already-made decision
    #: count as activity but not as state change, so this can be earlier
    #: than ``t_converged``.
    t_state_converged: float = 0.0
    #: update messages sent / received network-wide during convergence.
    updates_tx: int = 0
    updates_rx: int = 0
    #: BGP decision-process best-change count.
    decision_changes: int = 0
    #: FIB/flow-table changes.
    fib_changes: int = 0
    #: controller recomputation rounds (0 in pure-BGP runs).
    recomputations: int = 0
    #: whether every AS pair was data-plane reachable afterwards.
    all_reachable: Optional[bool] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def convergence_time(self) -> float:
        """Seconds from event injection to the last update activity —
        what a route collector observes (the paper's Fig. 2 metric)."""
        return self.t_converged - self.t_event

    @property
    def state_convergence_time(self) -> float:
        """Seconds from event injection to the last routing-state change
        (every FIB is final from this instant on)."""
        return self.t_state_converged - self.t_event


def measure_event(
    experiment: Experiment,
    event: Callable[[], None],
    *,
    horizon: Optional[float] = None,
    check_reachability: bool = False,
) -> ConvergenceMeasurement:
    """Inject ``event`` on a converged experiment and measure the fallout.

    The experiment must already be started and settled; the function
    runs the simulator until it settles again and extracts the
    convergence time and per-category activity counters from the trace.
    """
    trace = experiment.net.trace
    t_event = experiment.now
    counts_before = dict(trace.counts)
    event()
    t_settled = experiment.wait_converged(horizon)
    last = trace.last_time(ROUTE_AFFECTING, since=t_event)
    t_converged = last if last is not None else t_event
    last_state = trace.last_time(STATE_CHANGING, since=t_event)
    t_state_converged = last_state if last_state is not None else t_event

    def delta(category: str) -> int:
        return _count(trace.counts, category) - _count(counts_before, category)

    measurement = ConvergenceMeasurement(
        t_event=t_event,
        t_converged=t_converged,
        t_settled=t_settled,
        t_state_converged=t_state_converged,
        updates_tx=delta("bgp.update.tx"),
        updates_rx=delta("bgp.update.rx"),
        decision_changes=delta("bgp.decision"),
        fib_changes=delta("fib.change"),
        recomputations=delta("controller.recompute"),
    )
    if check_reachability:
        measurement.all_reachable = experiment.all_reachable()
    return measurement


def _count(counts: Dict[str, int], category: str) -> int:
    return sum(
        n for cat, n in counts.items()
        if cat == category or cat.startswith(category + ".")
    )
