"""Convergence detection and measurement.

"The framework detects when the network has converged and whether there
is stable connectivity between all hosts" (paper §3).  Convergence is
detected exactly: the simulator knows when no routing work (foreground
events) remains.  The convergence *time* of an injected event is read
from the instrumentation stream — the timestamp of the last
route-affecting record — which matches how the paper measures it from
BGP update logs, minus the sampling noise of a real testbed.

Measurement is streaming: a :class:`ConvergenceTracker` subscribed to
the instrumentation bus maintains the last route-affecting / last
state-changing timestamps and the per-category activity counters in
O(1) per record, so :func:`measure_event` needs no post-run trace scan
and works with trace capture disabled entirely.  The scan-based
implementation survives as :func:`measure_event_from_trace` — it is the
reference the streaming path is tested bit-identical against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..eventsim import ROUTE_AFFECTING
from .experiment import Experiment

__all__ = [
    "ConvergenceMeasurement",
    "ConvergenceTracker",
    "MeasurementWindow",
    "measure_event",
    "measure_event_from_trace",
    "STATE_CHANGING",
]

#: Categories that represent an actual routing-state change, as opposed
#: to update *activity* (which includes MRAI-paced re-advertisements of
#: decisions already made).
STATE_CHANGING = frozenset(
    {"bgp.decision", "fib.change", "bgp.originate", "bgp.withdraw"}
)


@dataclass
class ConvergenceMeasurement:
    """Outcome of one injected routing event."""

    #: virtual time the event was injected.
    t_event: float
    #: timestamp of the last route-affecting activity (== t_event when
    #: the event caused no routing change at all).
    t_converged: float
    #: virtual time at which the simulator fully settled.
    t_settled: float
    #: timestamp of the last actual routing-state change (decision/FIB).
    #: Trailing MRAI-paced re-advertisements of an already-made decision
    #: count as activity but not as state change, so this can be earlier
    #: than ``t_converged``.  None (the default) means "no state change
    #: occurred" and resolves to ``t_event``, so that
    #: ``t_converged >= t_state_converged >= t_event`` always holds.
    t_state_converged: Optional[float] = None
    #: update messages sent / received network-wide during convergence.
    updates_tx: int = 0
    updates_rx: int = 0
    #: BGP decision-process best-change count.
    decision_changes: int = 0
    #: FIB/flow-table changes.
    fib_changes: int = 0
    #: controller recomputation rounds (0 in pure-BGP runs).
    recomputations: int = 0
    #: whether every AS pair was data-plane reachable afterwards.
    all_reachable: Optional[bool] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.t_state_converged is None:
            self.t_state_converged = self.t_event

    @property
    def convergence_time(self) -> float:
        """Seconds from event injection to the last update activity —
        what a route collector observes (the paper's Fig. 2 metric)."""
        return self.t_converged - self.t_event

    @property
    def state_convergence_time(self) -> float:
        """Seconds from event injection to the last routing-state change
        (every FIB is final from this instant on)."""
        return self.t_state_converged - self.t_event


class ConvergenceTracker:
    """Streaming convergence state — O(1) per record, no trace needed.

    Subscribes to the instrumentation bus and maintains exactly the
    state :func:`measure_event` reads after a run: the timestamp of the
    last route-affecting record, the timestamp of the last
    state-changing record, and per-category counters (which the bus
    already keeps globally).  Because virtual time is monotonic, "last
    seen" equals "maximum over records since any earlier instant", so
    the streaming answers are bit-identical to a full trace scan.
    """

    def __init__(
        self,
        bus,
        *,
        route_affecting=ROUTE_AFFECTING,
        state_changing=STATE_CHANGING,
    ) -> None:
        self.bus = bus
        self.route_affecting = frozenset(route_affecting)
        self.state_changing = frozenset(state_changing)
        #: timestamp of the most recent route-affecting record, if any.
        self.last_route_affecting: Optional[float] = None
        #: timestamp of the most recent state-changing record, if any.
        self.last_state_change: Optional[float] = None
        self._subscription = bus.subscribe(
            self._on_record,
            categories=self.route_affecting | self.state_changing,
            name="convergence-tracker",
        )

    def _on_record(self, record) -> None:
        if record.category in self.route_affecting:
            self.last_route_affecting = record.time
        if record.category in self.state_changing:
            self.last_state_change = record.time

    def detach(self) -> None:
        """Stop observing the bus."""
        if self._subscription is not None:
            self.bus.unsubscribe(self._subscription)
            self._subscription = None

    # ------------------------------------------------------------------
    # the streaming equivalents of TraceLog.last_time / count deltas
    # ------------------------------------------------------------------
    def last_activity_since(self, since: float) -> Optional[float]:
        """Timestamp of the last route-affecting record at/after ``since``."""
        last = self.last_route_affecting
        return last if last is not None and last >= since else None

    def last_state_change_since(self, since: float) -> Optional[float]:
        """Timestamp of the last state-changing record at/after ``since``."""
        last = self.last_state_change
        return last if last is not None and last >= since else None

    def counters(self) -> Dict[str, int]:
        """A point-in-time copy of the bus's per-category totals."""
        return dict(self.bus.counts)

    def count(self, category: str) -> int:
        """Prefix-aware total for one category (bus-backed, O(#cats))."""
        return self.bus.count(category)


def _finalize_instants(
    t_event: float,
    last_activity: Optional[float],
    last_state: Optional[float],
) -> tuple:
    """Resolve raw tracker maxima into ``(t_converged, t_state_converged)``.

    ``None`` means nothing happened in the window and resolves to
    ``t_event``.  When the tracker's category sets are not nested
    (custom ``state_changing`` not a subset of ``route_affecting``), or
    when a fault fires while a prior event is still converging and its
    window only catches the tail of the earlier activity, the raw maxima
    can place the last *state change* after the last tracked *activity*.
    Convergence cannot precede the final state change, so ``t_converged``
    is raised to match.  With the stock category sets (STATE_CHANGING is
    a subset of ROUTE_AFFECTING) the clamp is a no-op, so existing
    results stay bit-identical.
    """
    t_state = last_state if last_state is not None else t_event
    t_converged = last_activity if last_activity is not None else t_event
    return max(t_converged, t_state), t_state


def _measure(
    experiment: Experiment,
    event: Callable[[], None],
    *,
    horizon: Optional[float],
    check_reachability: bool,
    counts,
    last_activity_since: Callable[[float], Optional[float]],
    last_state_since: Callable[[float], Optional[float]],
) -> ConvergenceMeasurement:
    t_event = experiment.now
    counts_before = dict(counts())
    event()
    t_settled = experiment.wait_converged(horizon)
    t_converged, t_state_converged = _finalize_instants(
        t_event, last_activity_since(t_event), last_state_since(t_event)
    )

    counts_after = counts()

    def delta(category: str) -> int:
        return _count(counts_after, category) - _count(counts_before, category)

    measurement = ConvergenceMeasurement(
        t_event=t_event,
        t_converged=t_converged,
        t_settled=t_settled,
        t_state_converged=t_state_converged,
        updates_tx=delta("bgp.update.tx"),
        updates_rx=delta("bgp.update.rx"),
        decision_changes=delta("bgp.decision"),
        fib_changes=delta("fib.change"),
        recomputations=delta("controller.recompute"),
    )
    if check_reachability:
        measurement.all_reachable = experiment.all_reachable()
    return measurement


def measure_event(
    experiment: Experiment,
    event: Callable[[], None],
    *,
    horizon: Optional[float] = None,
    check_reachability: bool = False,
) -> ConvergenceMeasurement:
    """Inject ``event`` on a converged experiment and measure the fallout.

    The experiment must already be started and settled; the function
    runs the simulator until it settles again and reads the convergence
    time and per-category activity counters from the experiment's
    streaming :class:`ConvergenceTracker` — no trace scan, so it works
    with trace capture disabled and its cost is independent of run size.
    """
    tracker = experiment.tracker
    if tracker is None:
        return measure_event_from_trace(
            experiment, event,
            horizon=horizon, check_reachability=check_reachability,
        )
    return _measure(
        experiment, event,
        horizon=horizon, check_reachability=check_reachability,
        counts=lambda: experiment.net.bus.counts,
        last_activity_since=tracker.last_activity_since,
        last_state_since=tracker.last_state_change_since,
    )


def measure_event_from_trace(
    experiment: Experiment,
    event: Callable[[], None],
    *,
    horizon: Optional[float] = None,
    check_reachability: bool = False,
) -> ConvergenceMeasurement:
    """The scan-based reference implementation of :func:`measure_event`.

    Reads the convergence instants by re-scanning the retained trace
    (requires full trace capture).  Kept as the oracle the streaming
    path is verified bit-identical against.
    """
    trace = experiment.net.trace
    return _measure(
        experiment, event,
        horizon=horizon, check_reachability=check_reachability,
        counts=lambda: trace.counts,
        last_activity_since=lambda since: trace.last_time(
            ROUTE_AFFECTING, since=since
        ),
        last_state_since=lambda since: trace.last_time(
            STATE_CHANGING, since=since
        ),
    )


class MeasurementWindow:
    """An open per-fault measurement interval over the streaming tracker.

    Opening a window snapshots the bus counters at the fault instant;
    :meth:`close` reads the tracker maxima filtered to the window and
    produces a :class:`ConvergenceMeasurement` without advancing the
    simulator or scanning the trace, so the fault engine can keep one
    window per injected fault at O(1) cost each.

    Windows may overlap — a second fault can fire while the first is
    still converging.  Each window measures from its own ``t_open``, so
    activity in the overlap is attributed to every window that was open
    while it happened (causality across overlapping faults is not
    attributable from global counters).  The per-window ordering chain
    ``t_settled >= t_converged >= t_state_converged >= t_event`` is
    guaranteed by :func:`_finalize_instants` even in the overlap case.
    """

    def __init__(self, experiment: Experiment, *, label: str = "") -> None:
        tracker = experiment.tracker
        if tracker is None:
            raise ValueError(
                "MeasurementWindow requires an experiment with a streaming "
                "ConvergenceTracker (experiment.tracker)"
            )
        self.experiment = experiment
        self.tracker = tracker
        self.label = label
        self.t_open: float = experiment.now
        self._counts_before: Dict[str, int] = dict(experiment.net.bus.counts)
        self.closed = False

    def close(
        self,
        t_close: Optional[float] = None,
        *,
        check_reachability: bool = False,
    ) -> ConvergenceMeasurement:
        """Seal the window at ``t_close`` (default: now) and measure it."""
        if self.closed:
            raise ValueError(f"window {self.label!r} already closed")
        self.closed = True
        t_settled = self.experiment.now if t_close is None else t_close
        t_converged, t_state_converged = _finalize_instants(
            self.t_open,
            self.tracker.last_activity_since(self.t_open),
            self.tracker.last_state_change_since(self.t_open),
        )
        counts_after = dict(self.experiment.net.bus.counts)

        def delta(category: str) -> int:
            return _count(counts_after, category) - _count(
                self._counts_before, category
            )

        measurement = ConvergenceMeasurement(
            t_event=self.t_open,
            t_converged=t_converged,
            t_settled=t_settled,
            t_state_converged=t_state_converged,
            updates_tx=delta("bgp.update.tx"),
            updates_rx=delta("bgp.update.rx"),
            decision_changes=delta("bgp.decision"),
            fib_changes=delta("fib.change"),
            recomputations=delta("controller.recompute"),
        )
        if check_reachability:
            measurement.all_reachable = self.experiment.all_reachable()
        return measurement


def _count(counts: Dict[str, int], category: str) -> int:
    return sum(
        n for cat, n in counts.items()
        if cat == category or cat.startswith(category + ".")
    )
