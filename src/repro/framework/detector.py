"""Silence-window convergence detection (the practical method).

A real testbed cannot know that no routing work remains — the paper's
framework "detects when the network has converged" by watching the BGP
update stream go quiet for long enough.  This module implements that
heuristic detector alongside our exact (event-queue) oracle, so
experiments can quantify what the heuristic costs:

- it *declares* convergence one silence-window late, and
- too short a window risks a false declaration inside an MRAI gap.

``compare_with_oracle`` runs both on the same event and reports the
declared time, the true time, and whether the heuristic fired early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..eventsim import ROUTE_AFFECTING, TraceRecord
from .experiment import Experiment

__all__ = ["SilenceDetection", "SilenceDetector", "compare_with_oracle"]


@dataclass
class SilenceDetection:
    """What the silence heuristic saw for one event."""

    #: last route-affecting activity the detector observed.
    t_last_activity: float
    #: when the detector declared convergence (last activity + window).
    t_declared: float
    #: the exact convergence instant from the oracle (event-queue based).
    t_oracle: float
    silence_window: float

    @property
    def declaration_lag(self) -> float:
        """Extra waiting the heuristic costs over the oracle."""
        return self.t_declared - self.t_oracle

    @property
    def premature(self) -> bool:
        """True if the heuristic would have fired before true convergence.

        Happens when some activity gap during convergence (e.g. an MRAI
        round) exceeds the silence window — the classic pitfall of
        silence-based measurement with short windows.
        """
        return self.t_last_activity < self.t_oracle - 1e-9


class SilenceDetector:
    """Streaming bus subscriber that tracks route-affecting activity gaps.

    Subscribes directly to the instrumentation bus with a category
    filter, so it works with trace capture reduced or disabled — the
    heuristic needs no retained records, only the live stream.
    """

    def __init__(
        self,
        experiment: Experiment,
        *,
        silence_window: float = 60.0,
        categories=ROUTE_AFFECTING,
    ) -> None:
        if silence_window <= 0:
            raise ValueError(f"window must be positive: {silence_window!r}")
        self.experiment = experiment
        self.silence_window = silence_window
        self.categories = frozenset(categories)
        self._last_activity: Optional[float] = None
        self._first_fire: Optional[float] = None
        self._armed = False
        self._bus = experiment.net.bus
        self._subscription = self._bus.subscribe(
            self._tap, categories=self.categories, name="silence-detector",
        )

    # ------------------------------------------------------------------
    def _tap(self, record: TraceRecord) -> None:
        if not self._armed or record.category not in self.categories:
            return
        if (
            self._first_fire is None
            and self._last_activity is not None
            and record.time - self._last_activity > self.silence_window
        ):
            # The heuristic would already have declared convergence at
            # last_activity + window; remember that premature firing.
            self._first_fire = self._last_activity + self.silence_window
        self._last_activity = record.time

    def arm(self) -> None:
        """Start watching (call right before injecting the event)."""
        self._armed = True
        self._last_activity = self.experiment.now
        self._first_fire = None

    def result(self, t_oracle: float) -> SilenceDetection:
        """Summarize after the experiment has settled."""
        last = (
            self._last_activity
            if self._last_activity is not None
            else t_oracle
        )
        declared = (
            self._first_fire
            if self._first_fire is not None
            else last + self.silence_window
        )
        t_last_seen = (
            self._first_fire - self.silence_window
            if self._first_fire is not None
            else last
        )
        return SilenceDetection(
            t_last_activity=t_last_seen,
            t_declared=declared,
            t_oracle=t_oracle,
            silence_window=self.silence_window,
        )

    def detach(self) -> None:
        """Stop observing the experiment's instrumentation bus."""
        if self._subscription is not None:
            self._bus.unsubscribe(self._subscription)
            self._subscription = None


def compare_with_oracle(
    experiment: Experiment,
    event: Callable[[], None],
    *,
    silence_window: float = 60.0,
) -> SilenceDetection:
    """Run ``event`` measuring convergence both ways."""
    from .convergence import measure_event

    detector = SilenceDetector(experiment, silence_window=silence_window)
    detector.arm()
    try:
        measurement = measure_event(experiment, event)
    finally:
        detector.detach()
    return detector.result(measurement.t_converged)
