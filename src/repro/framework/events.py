"""Scripted experiment timelines.

"The user should be able to actively control the experiments, e.g.,
dynamically changing the topology and verifying the effects of changes"
(paper §2).  An :class:`EventSchedule` is a declarative timeline of
framework commands — announce, withdraw, link failures/restores —
executed at absolute virtual offsets once the experiment is running.
Each step's routing impact is measured individually, so one scripted run
yields a per-event convergence report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..eventsim import ROUTE_AFFECTING
from ..net.addr import Prefix
from .experiment import Experiment, ExperimentError

__all__ = ["ScheduledEvent", "EventReport", "EventSchedule"]


@dataclass
class ScheduledEvent:
    """One timed step of a scripted experiment."""

    at: float
    label: str
    action: Callable[[Experiment], None]


@dataclass
class EventReport:
    """Measured outcome of one scheduled event."""

    label: str
    t_scheduled: float
    t_fired: float
    t_converged: float
    updates_tx: int

    @property
    def convergence_time(self) -> float:
        """Seconds from firing to the last routing activity."""
        return self.t_converged - self.t_fired


class EventSchedule:
    """Declarative timeline of experiment commands.

    Offsets are relative to the moment :meth:`run` is called.  Steps run
    in order; the schedule waits for full convergence between steps so
    each report isolates one event's fallout (set ``settle_between=False``
    to overlap events, e.g. for flap storms).

    Example::

        schedule = (
            EventSchedule()
            .announce(1, at=0.0)
            .fail_link(1, 2, at=60.0)
            .restore_link(1, 2, at=120.0)
        )
        reports = schedule.run(experiment)
    """

    def __init__(self, *, settle_between: bool = True) -> None:
        self.events: List[ScheduledEvent] = []
        self.settle_between = settle_between
        #: prefixes announced by the schedule, keyed by step label.
        self.prefixes: dict = {}

    # ------------------------------------------------------------------
    # declarative builders
    # ------------------------------------------------------------------
    def add(
        self, at: float, action: Callable[[Experiment], None], label: str = ""
    ) -> "EventSchedule":
        if at < 0:
            raise ValueError(f"offset must be >= 0: {at!r}")
        self.events.append(
            ScheduledEvent(at=at, label=label or f"event@{at}", action=action)
        )
        return self

    def announce(
        self, asn: int, *, at: float, prefix: Optional[Prefix] = None,
        label: str = "",
    ) -> "EventSchedule":
        tag = label or f"announce-as{asn}@{at}"

        def action(exp: Experiment) -> None:
            self.prefixes[tag] = exp.announce(asn, prefix)

        return self.add(at, action, tag)

    def withdraw_label(
        self, asn: int, announced_label: str, *, at: float, label: str = ""
    ) -> "EventSchedule":
        """Withdraw the prefix a previous announce step created."""
        tag = label or f"withdraw-as{asn}@{at}"

        def action(exp: Experiment) -> None:
            prefix = self.prefixes.get(announced_label)
            if prefix is None:
                raise ExperimentError(
                    f"no announced prefix under label {announced_label!r}"
                )
            exp.withdraw(asn, prefix)

        return self.add(at, action, tag)

    def withdraw(
        self, asn: int, prefix: Prefix, *, at: float, label: str = ""
    ) -> "EventSchedule":
        return self.add(
            at, lambda exp: exp.withdraw(asn, prefix),
            label or f"withdraw-as{asn}@{at}",
        )

    def fail_link(
        self, a: int, b: int, *, at: float, label: str = ""
    ) -> "EventSchedule":
        return self.add(
            at, lambda exp: exp.fail_link(a, b),
            label or f"fail-{a}-{b}@{at}",
        )

    def restore_link(
        self, a: int, b: int, *, at: float, label: str = ""
    ) -> "EventSchedule":
        return self.add(
            at, lambda exp: exp.restore_link(a, b),
            label or f"restore-{a}-{b}@{at}",
        )

    def fail_node(self, asn: int, *, at: float, label: str = "") -> "EventSchedule":
        """Step: fail every physical link of an AS."""
        return self.add(
            at, lambda exp: exp.fail_node(asn), label or f"fail-as{asn}@{at}"
        )

    # ------------------------------------------------------------------
    def run(self, exp: Experiment) -> List[EventReport]:
        """Execute the timeline on a started experiment."""
        if not self.events:
            return []
        base = exp.now
        reports: List[EventReport] = []
        bus = exp.net.bus
        tracker = exp.tracker
        for event in sorted(self.events, key=lambda e: e.at):
            target = base + event.at
            if target > exp.now:
                exp.net.sim.run(until=target)
            t_fired = exp.now
            tx_before = bus.count("bgp.update.tx")
            event.action(exp)
            if self.settle_between:
                exp.wait_converged()
            if tracker is not None:
                last = tracker.last_activity_since(t_fired)
            else:
                last = exp.net.trace.last_time(ROUTE_AFFECTING, since=t_fired)
            reports.append(
                EventReport(
                    label=event.label,
                    t_scheduled=target,
                    t_fired=t_fired,
                    t_converged=last if last is not None else t_fired,
                    updates_tx=bus.count("bgp.update.tx") - tx_before,
                )
            )
        return reports
