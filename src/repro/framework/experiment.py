"""Experiment lifecycle orchestration — the framework's high-level API.

This is the layer the paper contrasts with MiniNExT: "our framework
focuses on multi-AS IDR experiments and provides a high-level API for
experiment lifecycle orchestration."  An :class:`Experiment` takes an
AS-level :class:`~repro.topology.model.Topology` plus the set of ASes
under centralized (SDN) control, builds every device — legacy BGP
routers, cluster switches, the IDR controller, the cluster BGP speaker,
the route collector, hosts — wires links and addresses, and exposes the
"Mininet-BGP commands": announce, withdraw, fail/restore links, wait
until BGP has converged, check connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..bgp.collector import RouteCollector
from ..bgp.damping import DampingConfig
from ..bgp.policy import (
    PeerPolicy,
    Relationship,
    gao_rexford_policy,
    transit_all_policy,
)
from ..bgp.router import BGPRouter
from ..bgp.session import BGPTimers
from ..config.allocator import PrefixAllocator
from ..controller.graphs import Peering
from ..controller.idr import ControllerConfig, IDRController
from ..controller.speaker import ClusterBGPSpeaker
from ..net.addr import Prefix
from ..net.dataplane import FibEntry
from ..net.link import Link
from ..net.messages import Packet, PING_PROTO
from ..net.network import Network, PathTrace
from ..net.node import Host, Node
from ..sdn.flowtable import FlowAction, FlowRule
from ..sdn.switch import SDNSwitch
from ..topology.model import Topology

__all__ = ["ExperimentConfig", "Experiment", "ExperimentError"]

#: Pool that on-demand "event prefixes" (announce/withdraw experiments)
#: are carved from, distinct from the automatic AS prefixes.
EVENT_POOL = Prefix.parse("192.168.0.0/16")

#: Priority used for static host routes in switch flow tables, above any
#: controller-computed rule (max prefix length is 32).
HOST_RULE_PRIORITY = 1000


class ExperimentError(RuntimeError):
    """Misuse of the experiment API (unknown AS, event before build...)."""


@dataclass
class ExperimentConfig:
    """Everything configurable about an experiment build."""

    seed: int = 0
    #: "flat" (transit-all; the paper's clique setting) or "gao_rexford".
    policy_mode: str = "flat"
    timers: BGPTimers = field(default_factory=BGPTimers)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    #: optional RFC 2439 route-flap damping on every legacy router.
    damping: Optional[DampingConfig] = None
    with_collector: bool = True
    #: every AS originates its own /24 at start (baseline connectivity).
    originate_all: bool = True
    #: override all topology link latencies if not None.
    phys_latency: Optional[float] = None
    control_latency: float = 0.001
    relay_latency: float = 0.001
    collector_latency: float = 0.001
    host_latency: float = 0.0005
    #: settle horizon for :meth:`Experiment.wait_converged`.
    horizon: float = 1e5
    #: trace capture level: "full" (every record), "route" (only
    #: route-affecting categories), or "off" (zero trace memory —
    #: streaming subscribers still see everything).
    trace_level: str = "full"
    #: retain at most this many trace records (ring buffer); None =
    #: unbounded.
    trace_max_records: Optional[int] = None
    #: retain every Nth matching trace record.
    trace_sample: int = 1
    #: attach a MetricsRegistry to the bus (per-category counters plus
    #: any custom metrics components register).
    metrics: bool = False
    #: with metrics: also count records per (category, node).
    metrics_per_node: bool = False
    #: with metrics: wall-clock histogram around simulator dispatch.
    profile_dispatch: bool = False
    #: attach a causal-provenance SpanTracker to the bus: every
    #: route-affecting record becomes a span with (cause_id, parent_id)
    #: lineage.  Passive — results are bit-identical with spans on/off.
    spans: bool = False
    #: build legacy BGP routers in compact mode: interned-route prefix
    #: index + dirty-set incremental decision process.  Result-identical
    #: to the default full-scan path (the differential-oracle suite
    #: proves it); required for Internet-scale topologies.
    compact: bool = False
    #: coalesce same-instant per-link deliveries into one kernel event.
    #: NOT digest-preserving (same-instant cross-link interleaving, and
    #: with it RNG draw order, changes) — defaults off; see
    #: docs/scaling.md before flipping it on.
    batch_delivery: bool = False
    #: event-kernel pending-set structure: "heap" (binary heap, the
    #: historical default) or "calendar" (calendar queue; O(1) amortized
    #: at depth).  Digest-preserving — both schedulers pop in the exact
    #: same (time, seq) order, proven by the scheduler-equivalence suite.
    scheduler: str = "heap"

    def session_timers(self) -> BGPTimers:
        """A private copy of the session timer config."""
        return replace(self.timers)

    def collector_timers(self) -> BGPTimers:
        """Collector peerings report immediately (MRAI off)."""
        return replace(self.timers, mrai=0.0)

    def speaker_timers(self) -> BGPTimers:
        """The speaker applies no MRAI (ExaBGP behaviour); the
        controller's delayed recomputation is the cluster rate limit."""
        return replace(self.timers, mrai=0.0)


class Experiment:
    """One hybrid BGP/SDN emulation experiment."""

    def __init__(
        self,
        topology: Topology,
        *,
        sdn_members: Sequence[int] = (),
        config: Optional[ExperimentConfig] = None,
        name: str = "experiment",
    ) -> None:
        self.topology = topology
        self.config = config if config is not None else ExperimentConfig()
        self.name = name
        self.sdn_asns: Set[int] = set(sdn_members)
        unknown = self.sdn_asns - set(topology.asns)
        if unknown:
            raise ExperimentError(f"SDN members not in topology: {sorted(unknown)}")
        self.net: Optional[Network] = None
        #: streaming convergence tracker, attached at build time; the
        #: source measure_event reads instead of scanning the trace.
        self.tracker = None
        self.allocator = PrefixAllocator()
        self.controller: Optional[IDRController] = None
        self.speaker: Optional[ClusterBGPSpeaker] = None
        self.collector: Optional[RouteCollector] = None
        self.hosts: Dict[int, List[Host]] = {}
        self._as_node: Dict[int, Node] = {}
        self._phys_link: Dict[Tuple[int, int], Link] = {}
        self._event_prefix_index = 0
        self._built = False
        self._started = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> "Experiment":
        """Instantiate all devices and links (idempotent no; call once)."""
        if self._built:
            raise ExperimentError("experiment already built")
        self._built = True
        self.net = Network(
            seed=self.config.seed,
            trace_level=self.config.trace_level,
            trace_max_records=self.config.trace_max_records,
            trace_sample=self.config.trace_sample,
            batch_delivery=self.config.batch_delivery,
            scheduler=self.config.scheduler,
        )
        # imported here: framework.convergence imports this module for
        # its type annotations, so the dependency is lazy at import time.
        from .convergence import ConvergenceTracker

        self.tracker = ConvergenceTracker(self.net.bus)
        if self.config.metrics:
            self.net.enable_metrics(
                per_node=self.config.metrics_per_node,
                profile_dispatch=self.config.profile_dispatch,
            )
        if self.config.spans:
            self.net.enable_spans()
        self._build_cluster_core()
        self._build_as_nodes()
        self._build_phys_links()
        self._build_collector()
        return self

    def _build_cluster_core(self) -> None:
        if not self.sdn_asns:
            return
        self.controller = self.net.add_node(
            IDRController(
                self.net.sim, self.net.bus, "controller",
                config=self.config.controller,
            )
        )
        self.speaker = self.net.add_node(
            ClusterBGPSpeaker(
                self.net.sim, self.net.bus, "speaker",
                timers=self.config.speaker_timers(),
            )
        )
        self.controller.attach_speaker(self.speaker)

    def _build_as_nodes(self) -> None:
        for spec in self.topology.ases:
            asn = spec.asn
            node_name = spec.label()
            if asn in self.sdn_asns:
                node = SDNSwitch(self.net.sim, self.net.bus, node_name, asn=asn)
                self.net.add_node(node)
                control = self.net.add_link(
                    self.controller, node,
                    latency=self.config.control_latency, kind="control",
                    name=f"ctl-{node_name}",
                )
                node.set_control_link(control)
                self.controller.register_member(node, control)
            else:
                node = BGPRouter(
                    self.net.sim, self.net.bus, node_name,
                    asn=asn, timers=self.config.session_timers(),
                    damping=self.config.damping,
                    compact=self.config.compact,
                )
                self.net.add_node(node)
            node.address = self.allocator.router_address(asn)
            self._as_node[asn] = node

    def _build_phys_links(self) -> None:
        for topo_link in self.topology.links:
            self._wire_topo_link(topo_link)

    def _wire_topo_link(self, topo_link) -> Link:
        """Create and fully configure the emulated link for one
        topology adjacency (sessions / relay / intra registration)."""
        a, b = topo_link.a, topo_link.b
        node_a, node_b = self._as_node[a], self._as_node[b]
        latency = (
            self.config.phys_latency
            if self.config.phys_latency is not None
            else topo_link.latency
        )
        link = self.net.add_link(
            node_a, node_b, latency=latency, kind="phys",
            name=f"{node_a.name}--{node_b.name}",
        )
        prefix, addr_a, addr_b = self.allocator.link_net()
        link.prefix = prefix
        link.addresses[node_a.name] = addr_a
        link.addresses[node_b.name] = addr_b
        self._phys_link[(min(a, b), max(a, b))] = link
        a_sdn, b_sdn = a in self.sdn_asns, b in self.sdn_asns
        if not a_sdn and not b_sdn:
            rel_a = topo_link.relationship_for(a)
            rel_b = topo_link.relationship_for(b)
            node_a.add_peer(link, policy=self._policy(rel_a))
            node_b.add_peer(link, policy=self._policy(rel_b))
        elif a_sdn and b_sdn:
            self.controller.register_intra_link(
                node_a.name, node_b.name, link.name
            )
        else:
            member_asn, external_asn = (a, b) if a_sdn else (b, a)
            self._build_peering(
                topo_link, link,
                self._as_node[member_asn], self._as_node[external_asn],
            )
        return link

    def _build_peering(
        self, topo_link, phys_link: Link, member: Node, external: Node
    ) -> None:
        """Wire one member<->legacy peering: relay link + speaker session."""
        relationship = topo_link.relationship_for(external.asn)
        external.add_peer(phys_link, policy=self._policy(relationship))
        relay = self.net.add_link(
            self.speaker, member,
            latency=self.config.relay_latency, kind="relay",
            name=f"relay-{member.name}-{external.name}",
        )
        member.add_border_relay(phys_link, relay)
        peering = Peering(
            member=member.name,
            member_asn=member.asn,
            external=external.name,
            phys_link_name=phys_link.name,
            relationship=topo_link.relationship_for(member.asn),
        )
        self.speaker.add_peering(peering, relay)

    def _build_collector(self) -> None:
        if not self.config.with_collector:
            return
        self.collector = self.net.add_node(
            RouteCollector(self.net.sim, self.net.bus, "collector")
        )
        for asn, node in sorted(self._as_node.items()):
            if isinstance(node, BGPRouter):
                self._attach_collector(node)

    def _attach_collector(self, node: BGPRouter) -> Link:
        link = self.net.add_link(
            node, self.collector,
            latency=self.config.collector_latency, kind="collector",
            name=f"rc-{node.name}",
        )
        node.add_peer(
            link,
            policy=transit_all_policy(),
            timers=self.config.collector_timers(),
        )
        self.collector.add_peer(link)
        return link

    def _policy(self, relationship: Relationship) -> PeerPolicy:
        if self.config.policy_mode == "gao_rexford":
            return gao_rexford_policy(relationship)
        if self.config.policy_mode == "flat":
            return transit_all_policy()
        raise ExperimentError(f"unknown policy mode: {self.config.policy_mode!r}")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, *, settle: bool = True) -> "Experiment":
        """Start sessions, originate baseline prefixes, converge."""
        if not self._built:
            self.build()
        if self._started:
            raise ExperimentError("experiment already started")
        self._started = True
        for node in self._as_node.values():
            if isinstance(node, BGPRouter):
                node.start()
        if self.collector is not None:
            self.collector.start()
        if self.speaker is not None:
            self.speaker.start()
        if self.config.originate_all:
            for asn in self.topology.asns:
                self.announce(asn, self.as_prefix(asn))
        if settle:
            self.wait_converged()
        return self

    def wait_converged(self, horizon: Optional[float] = None) -> float:
        """Run until no routing work remains; returns the virtual time.

        Raises :class:`~repro.eventsim.SimulationError` when the horizon
        is exceeded — i.e. the network genuinely does not converge.
        """
        self._require_built()
        budget = horizon if horizon is not None else self.config.horizon
        return self.net.sim.run_until_settled(
            horizon=self.net.sim.now + budget
        )

    @property
    def now(self) -> float:
        """Current virtual time of the experiment."""
        self._require_built()
        return self.net.sim.now

    @property
    def metrics(self):
        """The metrics registry (None unless ``config.metrics``)."""
        return self.net.metrics if self.net is not None else None

    def metrics_snapshot(self) -> Optional[dict]:
        """JSON-ready metrics dump, or None when metrics are disabled.

        Includes a ``trace.dropped_records`` gauge (ring-buffer
        evictions) so capture loss is visible in every exported
        snapshot and on the service ``/metrics`` page.  A gauge, not a
        counter: run diffs compare counters exactly, and drop counts
        depend on buffer sizing, not on the routing outcome.  The same
        rule puts ``link.coalesced_total`` (same-instant deliveries
        merged under ``batch_delivery``) in the gauge table: it
        describes an execution strategy, not a routing result.
        """
        registry = self.metrics
        if registry is None:
            return None
        trace = getattr(self.net, "trace", None)
        if trace is not None:
            registry.gauge("trace.dropped_records").set(
                getattr(trace, "dropped_records", 0)
            )
        if self.net is not None:
            registry.gauge("link.coalesced_total").set(
                sum(link.coalesced_count for link in self.net.links)
            )
        return registry.snapshot()

    @property
    def spans(self):
        """The span tracker (None unless ``config.spans``)."""
        return self.net.spans if self.net is not None else None

    def spans_snapshot(self) -> Optional[list]:
        """All provenance spans as dicts, or None when spans are off."""
        tracker = self.spans
        return tracker.snapshot() if tracker is not None else None

    # ------------------------------------------------------------------
    # node / address accessors
    # ------------------------------------------------------------------
    def node(self, asn: int) -> Node:
        """The emulated device for one ASN."""
        try:
            return self._as_node[asn]
        except KeyError:
            raise ExperimentError(f"unknown AS: {asn}") from None

    def is_sdn(self, asn: int) -> bool:
        """True when the AS is a cluster member."""
        return asn in self.sdn_asns

    def as_prefix(self, asn: int) -> Prefix:
        """The /24 owned by an AS."""
        return self.allocator.as_prefix(asn)

    def as_nodes(self) -> List[Node]:
        """All AS devices, ASN-ordered."""
        return [self._as_node[asn] for asn in sorted(self._as_node)]

    def legacy_asns(self) -> List[int]:
        """ASNs running plain BGP."""
        return [a for a in self.topology.asns if a not in self.sdn_asns]

    def phys_link(self, a: int, b: int) -> Link:
        """The physical link between two ASes."""
        key = (min(a, b), max(a, b))
        try:
            return self._phys_link[key]
        except KeyError:
            raise ExperimentError(f"no link between AS{a} and AS{b}") from None

    def new_event_prefix(self) -> Prefix:
        """A fresh prefix from the event pool for announce experiments."""
        subnets = list(EVENT_POOL.subnets(24))
        if self._event_prefix_index >= len(subnets):
            raise ExperimentError("event prefix pool exhausted")
        prefix = subnets[self._event_prefix_index]
        self._event_prefix_index += 1
        return prefix

    # ------------------------------------------------------------------
    # the Mininet-BGP commands
    # ------------------------------------------------------------------
    def announce(self, asn: int, prefix: Optional[Prefix] = None) -> Prefix:
        """AS ``asn`` originates ``prefix`` (fresh event prefix if None)."""
        self._require_built()
        if prefix is None:
            prefix = self.new_event_prefix()
        node = self.node(asn)
        if isinstance(node, SDNSwitch):
            self.controller.originate(node.name, prefix)
        else:
            node.originate(prefix)
        return prefix

    def withdraw(self, asn: int, prefix: Prefix) -> None:
        """AS ``asn`` stops originating ``prefix``."""
        self._require_built()
        node = self.node(asn)
        if isinstance(node, SDNSwitch):
            self.controller.withdraw(node.name, prefix)
        else:
            node.withdraw(prefix)

    def fail_link(self, a: int, b: int) -> None:
        """Administratively fail the physical link between two ASes."""
        self.phys_link(a, b).fail()

    def restore_link(self, a: int, b: int) -> None:
        """Bring a failed inter-AS link back up."""
        self.phys_link(a, b).restore()

    def fail_node(self, asn: int) -> None:
        """Fail every physical link of one AS (node outage)."""
        for link in self.node(asn).links:
            if link.kind == "phys":
                link.fail()

    def set_export_prepend(self, asn: int, toward: int, count: int) -> None:
        """AS-path prepend ``asn`` x ``count`` on exports toward one peer.

        Only legacy BGP routers support per-session prepending (the
        cluster's advertisements are controller-composed).  Apply before
        :meth:`start` so every advertisement on the session carries it.
        """
        node = self.node(asn)
        if not isinstance(node, BGPRouter):
            raise ExperimentError(f"AS{asn} is not a legacy BGP router")
        link = self.phys_link(asn, toward)
        session = node.session_on(link)
        if session is None:
            raise ExperimentError(f"no session AS{asn}->AS{toward}")
        session.policy = session.policy.with_export_prepend(asn, count)

    # ------------------------------------------------------------------
    # fault commands (the building blocks repro.faults schedules)
    # ------------------------------------------------------------------
    def degrade_link(
        self,
        a: int,
        b: int,
        *,
        latency: Optional[float] = None,
        loss: Optional[float] = None,
    ) -> Dict[str, float]:
        """Degrade the a<->b physical link's quality.

        Returns the previous value of each changed attribute so a
        degradation *window* can restore them afterwards.  Note the loss
        process drops any message, including BGP ones — the model has no
        TCP retransmit — so lossy windows can leave neighbors with stale
        routes until the next session event.
        """
        self._require_built()
        return self.net.set_link_quality(
            self.phys_link(a, b), latency=latency, loss=loss
        )

    def reset_session(self, asn: int, toward: int) -> None:
        """Administratively bounce the BGP session between two ASes.

        For a legacy AS this is ``clear ip bgp neighbor`` on its router;
        for a cluster member the session lives on the cluster speaker,
        so the speaker session of that peering is bounced instead.
        """
        self._require_built()
        link = self.phys_link(asn, toward)
        node = self.node(asn)
        if isinstance(node, SDNSwitch):
            if self.speaker is None:
                raise ExperimentError("no speaker to reset a session on")
            for link_id in sorted(self.speaker.peering_of):
                if self.speaker.peering_of[link_id].phys_link_name == link.name:
                    self.speaker.sessions[link_id].reset()
                    return
            raise ExperimentError(f"no peering AS{asn}->AS{toward}")
        session = node.session_on(link)
        if session is None:
            raise ExperimentError(f"no session AS{asn}->AS{toward}")
        session.reset()

    def crash_router(self, asn: int) -> None:
        """Power-fail an AS's device: every link drops, learned state is
        lost.  Pair with :meth:`restart_router` to model crash/recovery.

        Links fail first so peers see fast fallover; a legacy router then
        wipes its RIBs and BGP FIB entries (origination config survives),
        a member switch loses its entire flow table.
        """
        self._require_built()
        node = self.node(asn)
        for link in node.links:
            link.fail()
        if isinstance(node, SDNSwitch):
            node.flow_table.clear()
            self.net.bus.record("switch.crash", node.name)
        else:
            node.crash()

    def restart_router(self, asn: int) -> None:
        """Boot a crashed AS device and restore its links.

        Control and relay links come up before physical ones so the
        PortStatus/PeeringStatus notifications the restored physical
        links generate actually reach the controller and speaker.
        """
        self._require_built()
        node = self.node(asn)
        if isinstance(node, SDNSwitch):
            self.net.bus.record("switch.restart", node.name)
            if self.controller is not None:
                self.controller.member_rebooted(node.name)
        else:
            node.restart()
        order = {"control": 0, "relay": 1}
        for link in sorted(
            node.links, key=lambda l: (order.get(l.kind, 2), l.link_id)
        ):
            link.restore()

    def fail_controller(self) -> None:
        """Kill the IDR controller process (members keep forwarding)."""
        self._require_built()
        if self.controller is None:
            raise ExperimentError("no controller in a pure-BGP experiment")
        self.controller.fail()

    def recover_controller(self) -> None:
        """Restart the IDR controller; it resyncs and recomputes."""
        self._require_built()
        if self.controller is None:
            raise ExperimentError("no controller in a pure-BGP experiment")
        self.controller.recover()

    def partition_controller(self) -> None:
        """Partition the controller from the cluster BGP speaker."""
        self._require_built()
        if self.speaker is None:
            raise ExperimentError("no speaker in a pure-BGP experiment")
        self.speaker.partition()

    def heal_controller_partition(self) -> None:
        """Heal the controller-speaker partition and resynchronize."""
        self._require_built()
        if self.speaker is None:
            raise ExperimentError("no speaker in a pure-BGP experiment")
        self.speaker.heal_partition()

    # ------------------------------------------------------------------
    # dynamic topology changes (paper §2: "dynamically changing the
    # topology and verifying the effects of changes")
    # ------------------------------------------------------------------
    def connect(
        self,
        a: int,
        b: int,
        *,
        relationship: Relationship = Relationship.FLAT,
        latency: float = 0.01,
    ) -> Link:
        """Add a new inter-AS link at runtime and bring it into service.

        Works across all three boundary cases: legacy↔legacy (two new
        BGP sessions start connecting), member↔legacy (a new speaker
        peering with its relay), and member↔member (a new intra-cluster
        edge; the controller recomputes over the denser switch graph).
        """
        self._require_built()
        topo_link = self.topology.add_link(
            a, b, relationship=relationship, latency=latency
        )
        link = self._wire_topo_link(topo_link)
        if self._started:
            self._activate_link(a, b, link)
        return link

    def _activate_link(self, a: int, b: int, link: Link) -> None:
        for asn in (a, b):
            node = self._as_node[asn]
            if isinstance(node, BGPRouter):
                session = node.session_on(link)
                if session is not None:
                    session.start()
        a_sdn, b_sdn = a in self.sdn_asns, b in self.sdn_asns
        if a_sdn and b_sdn:
            # New intra-cluster edge: every route may improve.
            self.controller.mark_dirty(self.controller.known_prefixes())
        elif a_sdn or b_sdn:
            member = self._as_node[a if a_sdn else b]
            for relay_link in member.links:
                if relay_link.kind != "relay":
                    continue
                session = self.speaker.sessions.get(relay_link.link_id)
                if session is not None:
                    session.start()

    def add_as(
        self,
        asn: int,
        *,
        sdn: bool = False,
        links: Sequence = (),
        name: Optional[str] = None,
    ) -> Node:
        """Add a whole new AS at runtime and connect it.

        ``links`` is a sequence of neighbor ASNs, or ``(neighbor,
        relationship)`` pairs.  The new AS gets an address, a collector
        peering (legacy only), its links (via :meth:`connect`), and —
        when the experiment is running with ``originate_all`` — its /24.

        Adding the *first* SDN member at runtime is not supported: the
        cluster core (controller + speaker) is created at build time.
        """
        self._require_built()
        if sdn and self.controller is None:
            raise ExperimentError(
                "cannot add an SDN member at runtime without a cluster "
                "core; include at least one SDN member at build time"
            )
        spec = self.topology.add_as(asn, name=name or "")
        node_name = spec.label()
        if sdn:
            self.sdn_asns.add(asn)
            node = SDNSwitch(self.net.sim, self.net.bus, node_name, asn=asn)
            self.net.add_node(node)
            control = self.net.add_link(
                self.controller, node,
                latency=self.config.control_latency, kind="control",
                name=f"ctl-{node_name}",
            )
            node.set_control_link(control)
            self.controller.register_member(node, control)
        else:
            node = BGPRouter(
                self.net.sim, self.net.bus, node_name,
                asn=asn, timers=self.config.session_timers(),
                damping=self.config.damping,
                compact=self.config.compact,
            )
            self.net.add_node(node)
        node.address = self.allocator.router_address(asn)
        self._as_node[asn] = node
        if self.collector is not None and isinstance(node, BGPRouter):
            collector_link = self._attach_collector(node)
            if self._started:
                node.session_on(collector_link).start()
                for session in self.collector.sessions.values():
                    if session.link is collector_link:
                        session.start()
        for entry in links:
            neighbor, relationship = (
                entry if isinstance(entry, tuple)
                else (entry, Relationship.FLAT)
            )
            self.connect(asn, neighbor, relationship=relationship)
        if self._started and self.config.originate_all:
            self.announce(asn, self.as_prefix(asn))
        return node

    # ------------------------------------------------------------------
    # hosts & data-plane checks
    # ------------------------------------------------------------------
    def add_host(self, asn: int, name: Optional[str] = None) -> Host:
        """Attach a monitoring host inside AS ``asn``'s prefix."""
        self._require_built()
        as_node = self.node(asn)
        address = self.allocator.host_address(asn)
        host_name = name or f"h{asn}-{len(self.hosts.get(asn, [])) + 1}"
        host = Host(self.net.sim, self.net.bus, host_name)
        host.address = address
        self.net.add_node(host)
        stub = self.net.add_link(
            host, as_node,
            latency=self.config.host_latency, kind="host",
            name=f"{host_name}--{as_node.name}",
        )
        host.fib.install(
            FibEntry(Prefix.parse("0.0.0.0/0"), stub, via=as_node.name,
                     source="static")
        )
        host_route = Prefix.of(address, 32)
        if isinstance(as_node, SDNSwitch):
            as_node.flow_table.install(
                FlowRule(
                    match=host_route,
                    action=FlowAction.output(stub),
                    priority=HOST_RULE_PRIORITY,
                    cookie="static-host",
                )
            )
        else:
            as_node.fib.install(
                FibEntry(host_route, stub, via=host_name, source="static")
            )
        self.hosts.setdefault(asn, []).append(host)
        return host

    def reachable(self, src_asn: int, dst_asn: int) -> PathTrace:
        """Instant data-plane walk from AS src to AS dst's address."""
        dst = self.node(dst_asn)
        if dst.address is None:
            raise ExperimentError(f"AS{dst_asn} has no address")
        return self.net.trace_path(self.node(src_asn), dst.address)

    def connectivity_matrix(self) -> Dict[Tuple[int, int], PathTrace]:
        """All ordered AS pairs -> data-plane walk results."""
        result: Dict[Tuple[int, int], PathTrace] = {}
        for src in sorted(self._as_node):
            for dst in sorted(self._as_node):
                if src != dst:
                    result[(src, dst)] = self.reachable(src, dst)
        return result

    def all_reachable(self) -> bool:
        """True when every AS can reach every other AS's address."""
        return all(t.reached for t in self.connectivity_matrix().values())

    def ping(
        self, src_asn: int, dst_asn: int, *, timeout: float = 2.0
    ) -> Optional[float]:
        """Send one real echo request; returns RTT or None on loss.

        Advances virtual time by up to ``timeout`` seconds.
        """
        src, dst = self.node(src_asn), self.node(dst_asn)
        if src.address is None or dst.address is None:
            raise ExperimentError("both ASes need addresses to ping")
        seq = 1_000_000 + self.net.sim.events_processed
        sent_at = self.net.sim.now
        src.send_packet(
            Packet(src=src.address, dst=dst.address, proto=PING_PROTO, seq=seq)
        )
        self.net.sim.run(until=sent_at + timeout)
        arrived = src.echo_replies_received.get(seq)
        return (arrived - sent_at) if arrived is not None else None

    # ------------------------------------------------------------------
    def _require_built(self) -> None:
        if not self._built:
            raise ExperimentError("call build() first")

    def __repr__(self) -> str:
        state = "started" if self._started else ("built" if self._built else "new")
        return (
            f"<Experiment {self.name!r} ases={len(self.topology)} "
            f"sdn={len(self.sdn_asns)} {state}>"
        )
