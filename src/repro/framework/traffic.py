"""Probe streams and loss measurement.

The demo shows "how [centralization] affects an end-to-end video
application": a constant-rate stream whose packet loss during routing
transients is what the audience sees.  :class:`ProbeStream` emulates
that stream between two hosts; :class:`LossReport` summarizes which
probes were lost and in which contiguous windows — the framework's
"loss measurement" tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..net.messages import Packet, PROBE_PROTO
from ..net.node import Host, Node

__all__ = ["ProbeStream", "LossReport"]


@dataclass
class LossReport:
    """Summary of probe delivery over a stream's lifetime."""

    sent: int
    received: int
    lost_seqs: List[int] = field(default_factory=list)
    #: contiguous loss intervals as (first_lost_time, last_lost_time).
    loss_windows: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def lost(self) -> int:
        """Probes sent but never received."""
        return self.sent - self.received

    @property
    def loss_rate(self) -> float:
        """Fraction of probes lost."""
        return self.lost / self.sent if self.sent else 0.0

    @property
    def longest_outage(self) -> float:
        """Duration of the longest loss window (by send times)."""
        if not self.loss_windows:
            return 0.0
        return max(end - start for start, end in self.loss_windows)


class ProbeStream:
    """Constant-rate probe stream from one node toward a destination host.

    Probes are background events: they never delay convergence
    detection, but their delivery reflects the data plane's state at
    each instant — exactly the transient the paper's demo visualizes.
    """

    def __init__(
        self,
        src: Node,
        dst: Host,
        *,
        interval: float = 0.1,
    ) -> None:
        if src.address is None or dst.address is None:
            raise ValueError("probe endpoints must have addresses")
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval!r}")
        self.src = src
        self.dst = dst
        self.interval = interval
        self._sim = src.sim
        #: seq -> send time
        self.sent: dict = {}
        self._next_seq = 0
        self._running = False
        self._stop_at: Optional[float] = None

    def start(self, duration: Optional[float] = None) -> None:
        """Begin probing now; optionally stop after ``duration`` seconds."""
        if self._running:
            raise RuntimeError("stream already running")
        self._running = True
        self._stop_at = (
            self._sim.now + duration if duration is not None else None
        )
        self._tick()

    def stop(self) -> None:
        """Disarm; safe when not running."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        if self._stop_at is not None and self._sim.now >= self._stop_at - 1e-12:
            self._running = False
            return
        seq = self._next_seq
        self._next_seq += 1
        self.sent[seq] = self._sim.now
        self.src.send_packet(
            Packet(
                src=self.src.address, dst=self.dst.address,
                proto=PROBE_PROTO, seq=seq,
            )
        )
        self._sim.schedule(
            self.interval, self._tick, background=True, label="probe"
        )

    # ------------------------------------------------------------------
    def report(self) -> LossReport:
        """Match sent probes against the destination host's receipts."""
        received_seqs = {
            p.seq for p in self.dst.probes_received
            if str(p.src) == str(self.src.address)
        }
        lost = sorted(s for s in self.sent if s not in received_seqs)
        windows: List[Tuple[float, float]] = []
        for seq in lost:
            t = self.sent[seq]
            if windows and seq - 1 in lost and seq - 1 in self.sent:
                start, _ = windows[-1]
                windows[-1] = (start, t)
            else:
                windows.append((t, t))
        return LossReport(
            sent=len(self.sent),
            received=len(received_seqs.intersection(self.sent)),
            lost_seqs=lost,
            loss_windows=windows,
        )
