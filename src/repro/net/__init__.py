"""Network substrate: addresses, nodes, links, FIBs, data-plane walks."""

from .addr import AddressError, IPv4Address, Prefix
from .dataplane import Fib, FibEntry
from .link import Link, LinkDown
from .messages import Message, Packet, PING_PROTO, PROBE_PROTO
from .network import Network, PathTrace
from .node import Host, Node

__all__ = [
    "AddressError",
    "IPv4Address",
    "Prefix",
    "Fib",
    "FibEntry",
    "Link",
    "LinkDown",
    "Message",
    "Packet",
    "PING_PROTO",
    "PROBE_PROTO",
    "Network",
    "PathTrace",
    "Host",
    "Node",
]
