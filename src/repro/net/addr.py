"""IPv4 addresses and prefixes.

The emulation framework auto-assigns addresses to every AS, link, and
host (the paper's "configuration management such as IP prefixes"), so we
need a small, fast, hashable address model.  Addresses are wrapped
integers; prefixes are ``(network_int, length)`` pairs with the host bits
forced to zero, which makes longest-prefix match a simple mask-and-compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterator, Union

__all__ = ["IPv4Address", "Prefix", "AddressError"]

_MAX32 = 0xFFFFFFFF


class AddressError(ValueError):
    """Malformed address or prefix text / out-of-range value."""


def _parse_quad(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"expected dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise AddressError(f"bad octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


@total_ordering
@dataclass(frozen=True)
class IPv4Address:
    """A single IPv4 address, stored as an unsigned 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX32:
            raise AddressError(f"address out of range: {self.value!r}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad text, e.g. ``"10.0.3.1"``."""
        return cls(_parse_quad(text))

    def __str__(self) -> str:
        v = self.value
        return f"{v >> 24}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value

    def __int__(self) -> int:
        return self.value

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)


@total_ordering
@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix (network + mask length), host bits forced clear.

    Orders by ``(network, length)`` so sorted prefix lists are stable and
    more-specifics of the same network sort after the covering prefix.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length!r}")
        if not 0 <= self.network <= _MAX32:
            raise AddressError(f"network out of range: {self.network!r}")
        masked = self.network & self.mask
        if masked != self.network:
            object.__setattr__(self, "network", masked)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"10.1.0.0/16"`` style text."""
        if "/" not in text:
            raise AddressError(f"missing /length: {text!r}")
        net_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise AddressError(f"bad length in {text!r}")
        return cls(_parse_quad(net_text), int(len_text))

    @classmethod
    def of(cls, address: Union[IPv4Address, str], length: int) -> "Prefix":
        """Prefix covering ``address`` at ``length`` bits."""
        if isinstance(address, str):
            address = IPv4Address.parse(address)
        return cls(address.value, length)

    @property
    def mask(self) -> int:
        """Netmask as an integer."""
        if self.length == 0:
            return 0
        return (_MAX32 << (32 - self.length)) & _MAX32

    @property
    def num_addresses(self) -> int:
        """Total addresses covered by the prefix."""
        return 1 << (32 - self.length)

    @property
    def first_address(self) -> IPv4Address:
        """Lowest address in the prefix."""
        return IPv4Address(self.network)

    @property
    def last_address(self) -> IPv4Address:
        """Highest address in the prefix."""
        return IPv4Address(self.network | (~self.mask & _MAX32))

    def contains(self, item: Union[IPv4Address, "Prefix"]) -> bool:
        """Address containment, or full prefix containment (>= specific)."""
        if isinstance(item, Prefix):
            return item.length >= self.length and (item.network & self.mask) == self.network
        return (item.value & self.mask) == self.network

    def __contains__(self, item: Union[IPv4Address, "Prefix"]) -> bool:
        return self.contains(item)

    def hosts(self) -> Iterator[IPv4Address]:
        """Usable host addresses (skips network/broadcast for length < 31)."""
        if self.length >= 31:
            start, stop = self.network, self.network + self.num_addresses
        else:
            start, stop = self.network + 1, self.network + self.num_addresses - 1
        for value in range(start, stop):
            yield IPv4Address(value)

    def host(self, index: int) -> IPv4Address:
        """The ``index``-th usable host address (0-based)."""
        base = self.network if self.length >= 31 else self.network + 1
        addr = base + index
        if addr > self.last_address.value or (
            self.length < 31 and addr >= self.last_address.value
        ):
            raise AddressError(f"host index {index} out of {self}")
        return IPv4Address(addr)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Split into consecutive subnets of ``new_length`` bits."""
        if new_length < self.length:
            raise AddressError(
                f"cannot split /{self.length} into larger /{new_length}"
            )
        if new_length > 32:
            raise AddressError(f"prefix length out of range: {new_length}")
        step = 1 << (32 - new_length)
        for net in range(self.network, self.network + self.num_addresses, step):
            yield Prefix(net, new_length)

    def supernet(self, new_length: int) -> "Prefix":
        """The covering prefix at ``new_length`` bits (must be shorter)."""
        if new_length > self.length:
            raise AddressError(f"/{new_length} is more specific than /{self.length}")
        return Prefix(self.network, new_length)

    def overlaps(self, other: "Prefix") -> bool:
        """True when the two prefixes share any address."""
        return self.contains(other.first_address) or other.contains(self.first_address)

    def __str__(self) -> str:
        return f"{IPv4Address(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __lt__(self, other: "Prefix") -> bool:
        return (self.network, self.length) < (other.network, other.length)
