"""Forwarding information base (FIB) with longest-prefix match.

Every node carries a :class:`Fib`; BGP routers install their Loc-RIB best
routes into it, and the IDR controller programs SDN switches' flow tables
(which reuse the same matching core).  Entries are kept in a dict keyed
by prefix plus a per-length index, so lookups scan at most the distinct
prefix lengths present (<= 33) instead of every entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from .addr import IPv4Address, Prefix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .link import Link

__all__ = ["Fib", "FibEntry"]


@dataclass
class FibEntry:
    """One forwarding entry: prefix → outgoing link (or local delivery).

    ``link is None`` means the prefix is delivered locally (the node
    originates it).  ``via`` names the next-hop node for diagnostics.
    """

    prefix: Prefix
    link: Optional["Link"]
    via: str = ""
    source: str = ""
    metadata: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        target = self.via if self.link is not None else "local"
        return f"<FibEntry {self.prefix} -> {target}>"


class Fib:
    """Longest-prefix-match forwarding table."""

    def __init__(self) -> None:
        self._entries: dict[Prefix, FibEntry] = {}
        self._by_length: dict[int, dict[int, FibEntry]] = {}
        self.version = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FibEntry]:
        return iter(self._entries.values())

    def entries(self) -> list[FibEntry]:
        """All entries, sorted by prefix."""
        return sorted(self._entries.values(), key=lambda e: e.prefix)

    def get(self, prefix: Prefix) -> Optional[FibEntry]:
        """Exact-match lookup."""
        return self._entries.get(prefix)

    def install(self, entry: FibEntry) -> bool:
        """Insert or replace the entry for ``entry.prefix``.

        Returns True if the table changed (new entry or different
        link/via than before) — callers use this to emit ``fib.change``
        trace records only on real changes.
        """
        old = self._entries.get(entry.prefix)
        if old is not None and old.link is entry.link and old.via == entry.via:
            old.source = entry.source
            old.metadata = entry.metadata
            return False
        self._entries[entry.prefix] = entry
        self._by_length.setdefault(entry.prefix.length, {})[entry.prefix.network] = entry
        self.version += 1
        return True

    def remove(self, prefix: Prefix) -> bool:
        """Remove the exact entry; returns True if one existed."""
        entry = self._entries.pop(prefix, None)
        if entry is None:
            return False
        bucket = self._by_length.get(prefix.length)
        if bucket is not None:
            bucket.pop(prefix.network, None)
            if not bucket:
                del self._by_length[prefix.length]
        self.version += 1
        return True

    def clear(self) -> None:
        """Drop all stored state."""
        self._entries.clear()
        self._by_length.clear()
        self.version += 1

    def lookup(self, address: IPv4Address) -> Optional[FibEntry]:
        """Longest-prefix match for ``address``; None if no route."""
        value = address.value
        for length in sorted(self._by_length, reverse=True):
            if length == 0:
                bucket = self._by_length[0]
                if 0 in bucket:
                    return bucket[0]
                continue
            network = value & ((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF)
            entry = self._by_length[length].get(network)
            if entry is not None:
                return entry
        return None
