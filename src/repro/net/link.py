"""Point-to-point links between emulated nodes.

A link models what a Mininet veth pair gives the paper's framework:
propagation latency, optional random loss, and administrative up/down
state.  Nodes are notified synchronously of state changes so BGP "fast
fallover" (Quagga's interface-down session reset) can be emulated; a
configurable detection delay covers the slower hold-timer path.

Each link owns an optional /30-style transfer network; endpoint addresses
are assigned by the configuration layer (``repro.config``).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from .addr import IPv4Address, Prefix
from .messages import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node

__all__ = ["Link", "LinkDown"]

_link_ids = itertools.count(1)


class LinkDown(RuntimeError):
    """Raised when transmitting on an administratively-down link."""


class Link:
    """Bidirectional point-to-point link between two nodes.

    Parameters
    ----------
    a, b:
        Endpoint nodes; the link registers itself on both.
    latency:
        One-way propagation delay in (virtual) seconds.
    loss:
        Per-message drop probability in ``[0, 1)``; applied per direction
        using the simulator's ``link.loss`` random stream.
    kind:
        Free-form tag — ``"phys"`` for topology links, ``"control"`` for
        the out-of-band switch-to-controller channel, ``"collector"`` for
        route-collector peerings.  Analysis and visualization group by it.
    batch_delivery:
        Coalesce same-instant, same-direction transmissions into one
        scheduled kernel event (the flush delivers each message
        individually, in send order).  Cuts event-queue pressure on
        dense graphs, but same-instant deliveries across *different*
        links then interleave differently, which reorders RNG draws —
        so this is opt-in and defaults off to keep legacy run digests.
    """

    def __init__(
        self,
        a: "Node",
        b: "Node",
        *,
        latency: float = 0.01,
        loss: float = 0.0,
        kind: str = "phys",
        name: Optional[str] = None,
        batch_delivery: bool = False,
    ) -> None:
        if a is b:
            raise ValueError("self-loops are not supported")
        if latency < 0:
            raise ValueError(f"latency must be >= 0: {latency!r}")
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {loss!r}")
        self.link_id = next(_link_ids)
        self.a = a
        self.b = b
        self.latency = latency
        self.loss = loss
        self.kind = kind
        self.name = name or f"link{self.link_id}"
        self.up = True
        self.prefix: Optional[Prefix] = None
        self.addresses: dict[str, IPv4Address] = {}
        self.tx_count = 0
        self.drop_count = 0
        self.batch_delivery = batch_delivery
        #: messages that rode an already-scheduled delivery event
        #: (batching effectiveness counter; 0 unless ``batch_delivery``).
        self.coalesced_count = 0
        #: pending batches: (receiver name, delivery time, background)
        #: -> messages, flushed by one kernel event per key.
        self._pending: dict = {}
        self._sim = a.sim
        if b.sim is not self._sim:
            raise ValueError("endpoints belong to different simulators")
        a.attach_link(self)
        b.attach_link(self)

    # ------------------------------------------------------------------
    def other(self, node: "Node") -> "Node":
        """The endpoint that is not ``node``."""
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def connects(self, x: "Node", y: "Node") -> bool:
        """True when the link joins exactly these two nodes."""
        return {x, y} == {self.a, self.b}

    def address_of(self, node: "Node") -> Optional[IPv4Address]:
        """The link address assigned to one endpoint."""
        return self.addresses.get(node.name)

    # ------------------------------------------------------------------
    def transmit(
        self, sender: "Node", message: Message, *, background: bool = False
    ) -> bool:
        """Send ``message`` to the far end after ``latency`` seconds.

        Returns True if the message was queued for delivery, False if it
        was dropped by the loss process.  Raises :class:`LinkDown` when
        the link is administratively down — senders are expected to have
        been notified, so this signals a protocol bug.

        ``background=True`` marks the delivery as routing-irrelevant
        (periodic keepalives, probe packets): it will not hold up
        convergence detection.
        """
        if not self.up:
            raise LinkDown(f"{self.name} is down")
        receiver = self.other(sender)
        if self.loss > 0.0 and self._sim.rng("link.loss").random() < self.loss:
            self.drop_count += 1
            return False
        self.tx_count += 1
        obs = sender.bus.obs
        if obs is not None and obs.current is not None:
            # Provenance: the in-flight message carries its sender's
            # causal context; the receiving node restores it on delivery.
            message._prov = obs.current
        if not self.batch_delivery:
            self._sim.schedule(
                self.latency,
                lambda: receiver.receive(self, message),
                background=background,
                label=f"{self.name}:deliver",
            )
            return True
        # Batched mode: loss, tx accounting and provenance stamping all
        # happened above, per message, exactly as in the legacy path —
        # only the kernel event is shared.  The key pins the delivery
        # instant, so a latency change mid-instant still splits batches.
        when = self._sim.now + self.latency
        key = (receiver.name, when, background)
        bucket = self._pending.get(key)
        if bucket is not None:
            bucket.append(message)
            self.coalesced_count += 1
            return True
        self._pending[key] = [message]
        self._sim.schedule(
            self.latency,
            lambda: self._deliver_batch(key, receiver),
            background=background,
            label=f"{self.name}:deliver",
        )
        return True

    def _deliver_batch(self, key, receiver: "Node") -> None:
        # Pop before delivering: a zero-latency reply sent from inside
        # receive() must open a fresh batch, not join this spent one.
        for message in self._pending.pop(key, ()):
            receiver.receive(self, message)

    # ------------------------------------------------------------------
    def set_up(self, up: bool) -> None:
        """Administratively raise/lower the link, notifying both ends.

        In-flight messages already scheduled are still delivered (they
        were "on the wire"); new transmissions fail.  Endpoint nodes get
        ``link_state_changed`` callbacks, from which BGP sessions reset.
        """
        if self.up == up:
            return
        self.up = up
        obs = self.a.bus.obs
        if obs is None:
            for node in (self.a, self.b):
                node.link_state_changed(self)
            return
        # Provenance: a link transition is a root cause — session resets
        # and the withdrawals they trigger hang off this span.
        ctx = obs.emit_root(
            "link.up" if up else "link.down", self.name,
            a=self.a.name, b=self.b.name,
        )
        prev = obs.swap(ctx)
        try:
            for node in (self.a, self.b):
                node.link_state_changed(self)
        finally:
            obs.swap(prev)

    def set_latency(self, latency: float) -> float:
        """Change propagation delay; returns the previous value.

        In-flight messages keep the latency they were sent with (their
        delivery is already scheduled); only new transmissions see the
        new value — the same semantics as reconfiguring a live veth.
        """
        if latency < 0:
            raise ValueError(f"latency must be >= 0: {latency!r}")
        previous = self.latency
        self.latency = latency
        return previous

    def set_loss(self, loss: float) -> float:
        """Change the drop probability; returns the previous value."""
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {loss!r}")
        previous = self.loss
        self.loss = loss
        return previous

    def fail(self) -> None:
        """Convenience: take the link down."""
        self.set_up(False)

    def restore(self) -> None:
        """Convenience: bring the link back up."""
        self.set_up(True)

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Link {self.name} {self.a.name}<->{self.b.name} {state}>"
