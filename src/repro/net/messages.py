"""Base message types carried over emulated links.

Two planes share the links, exactly as in the paper's emulation:

- control-plane messages (BGP sessions, and the relayed control traffic
  between border SDN switches and the cluster BGP speaker), and
- data-plane packets (probe/ping traffic between hosts).

``Message`` is deliberately minimal: links deliver *objects*; meaning is
up to the receiving node's dispatch.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from .addr import IPv4Address

__all__ = ["Message", "Packet", "PROBE_PROTO", "PING_PROTO"]

_packet_ids = itertools.count(1)

#: Data-plane protocol tags (stand-ins for IP protocol numbers).
PING_PROTO = "icmp.echo"
PROBE_PROTO = "probe"


class Message:
    """Base class for anything a link can carry.

    Plain (non-dataclass) base so every subclass can opt into
    ``slots=True`` without a ``__dict__`` sneaking back in through the
    MRO.  The single ``_prov`` slot is the per-hop provenance context a
    link stamps at transmit time (see ``repro.obs.spans``); it is
    carrier state, not message content, so it stays out of every
    subclass's fields, equality, and repr.
    """

    __slots__ = ("_prov",)

    def describe(self) -> str:
        """Short human-readable summary."""
        return type(self).__name__


@dataclass(slots=True)
class Packet(Message):
    """A data-plane packet forwarded hop-by-hop via FIB/flow-table lookups.

    ``ttl`` guards against forwarding loops during convergence — exactly
    the transient the paper's loss measurements are about.
    """

    src: IPv4Address
    dst: IPv4Address
    proto: str = PING_PROTO
    ttl: int = 64
    seq: int = 0
    payload: Optional[object] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hops: list = field(default_factory=list)

    def describe(self) -> str:
        """Short human-readable summary."""
        return f"{self.proto} {self.src}->{self.dst} ttl={self.ttl} seq={self.seq}"
