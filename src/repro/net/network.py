"""Network container: nodes + links over one simulator.

This is the framework's equivalent of a Mininet ``net`` object — it owns
the device inventory, builds links, answers reachability queries against
the *data plane* (walking FIBs/flow tables hop by hop), and exports the
physical graph for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

import networkx as nx

from ..eventsim import (
    ROUTE_AFFECTING,
    InstrumentationBus,
    MetricsRegistry,
    Simulator,
    TraceLog,
)
from ..obs.spans import SpanTracker
from .addr import IPv4Address
from .link import Link
from .node import Node

__all__ = ["Network", "PathTrace"]


@dataclass
class PathTrace:
    """Result of a data-plane forwarding walk (synthetic traceroute)."""

    reached: bool
    hops: List[str]
    reason: str = ""

    def __bool__(self) -> bool:
        return self.reached


#: trace capture levels: category filter (None = everything) per level.
TRACE_LEVELS = {
    "full": None,
    "route": tuple(sorted(ROUTE_AFFECTING)),
    "off": None,
}


class Network:
    """Inventory of emulated devices sharing one event loop and bus.

    The network owns the :class:`InstrumentationBus` every device
    publishes on, plus the default subscribers: a :class:`TraceLog`
    (record capture, tunable via ``trace_level``/``trace_max_records``/
    ``trace_sample``) and — opt-in via :meth:`enable_metrics` — a
    :class:`MetricsRegistry`.

    ``trace_level``: ``"full"`` retains every record, ``"route"``
    retains only route-affecting categories, ``"off"`` retains nothing
    (counters and streaming subscribers still see everything).
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        seed: int = 0,
        *,
        trace_level: str = "full",
        trace_max_records: Optional[int] = None,
        trace_sample: int = 1,
        batch_delivery: bool = False,
        scheduler: str = "heap",
    ) -> None:
        if trace_level not in TRACE_LEVELS:
            raise ValueError(
                f"unknown trace level {trace_level!r}; "
                f"choose from {sorted(TRACE_LEVELS)}"
            )
        self.sim = (
            sim if sim is not None
            else Simulator(seed=seed, scheduler=scheduler)
        )
        self.bus = InstrumentationBus(self.sim)
        self.trace = TraceLog(
            self.bus,
            categories=TRACE_LEVELS[trace_level],
            max_records=trace_max_records,
            sample=trace_sample,
            capture=trace_level != "off",
        )
        self.trace_level = trace_level
        self.metrics: Optional[MetricsRegistry] = None
        self.spans: Optional[SpanTracker] = None
        #: default for new links: coalesce same-instant deliveries into
        #: one kernel event (see :class:`Link`).  Off for legacy digests.
        self.batch_delivery = batch_delivery
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []

    def enable_metrics(
        self, *, per_node: bool = False, profile_dispatch: bool = False
    ) -> MetricsRegistry:
        """Attach a metrics registry to the bus (idempotent).

        ``per_node`` adds per-(category, node) record counters;
        ``profile_dispatch`` wraps simulator event dispatch with a
        wall-clock histogram.
        """
        if self.metrics is None:
            self.metrics = MetricsRegistry()
            self.metrics.observe_bus(self.bus, per_node=per_node)
            if profile_dispatch:
                self.metrics.profile_simulator(self.sim)
        return self.metrics

    def enable_spans(self) -> SpanTracker:
        """Attach a causal-provenance span tracker to the bus (idempotent).

        Every route-affecting record then becomes a :class:`Span` with a
        ``(cause_id, parent_id)`` lineage; components propagate causal
        context through message delivery and deferred work.  Purely
        passive — convergence results are bit-identical with spans on or
        off.
        """
        if self.spans is None:
            self.spans = SpanTracker(self.sim)
            self.bus.obs = self.spans
        return self.spans

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Register a node; rejects duplicate names."""
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name: {node.name!r}")
        self.nodes[node.name] = node
        return node

    def create(self, factory: Callable[..., Node], name: str, **kwargs) -> Node:
        """Instantiate ``factory(sim, bus, name, **kwargs)`` and register it."""
        return self.add_node(factory(self.sim, self.bus, name, **kwargs))

    def get(self, name: str) -> Node:
        """Exact-match lookup; None if absent."""
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"no such node: {name!r}") from None

    def add_link(self, a, b, **kwargs) -> Link:
        """Link two nodes (by object or name)."""
        node_a = a if isinstance(a, Node) else self.get(a)
        node_b = b if isinstance(b, Node) else self.get(b)
        kwargs.setdefault("batch_delivery", self.batch_delivery)
        link = Link(node_a, node_b, **kwargs)
        self.links.append(link)
        return link

    def link_between(self, a, b) -> Optional[Link]:
        """The link joining two nodes/ASes, if any."""
        node_a = a if isinstance(a, Node) else self.get(a)
        node_b = b if isinstance(b, Node) else self.get(b)
        for link in self.links:
            if link.connects(node_a, node_b):
                return link
        return None

    def nodes_of_type(self, cls: type) -> list:
        """All registered nodes of one class."""
        return [n for n in self.nodes.values() if isinstance(n, cls)]

    def set_link_quality(
        self,
        link: Link,
        *,
        latency: Optional[float] = None,
        loss: Optional[float] = None,
    ) -> Dict[str, float]:
        """Degrade or restore a link's quality, recorded on the bus.

        Returns the previous value of each changed attribute so callers
        (the fault engine's degradation windows) can restore it later.
        """
        previous: Dict[str, float] = {}
        if latency is not None:
            previous["latency"] = link.set_latency(latency)
        if loss is not None:
            previous["loss"] = link.set_loss(loss)
        if previous:
            self.bus.record(
                "link.quality", link.a.name,
                link=link.name, latency=link.latency, loss=link.loss,
            )
        return previous

    # ------------------------------------------------------------------
    # data-plane queries
    # ------------------------------------------------------------------
    def trace_path(
        self, src: Node, dst_address: IPv4Address, max_hops: int = 64
    ) -> PathTrace:
        """Walk FIBs from ``src`` toward ``dst_address`` without side effects.

        This inspects current forwarding state instantaneously (no
        virtual time passes), which is what the framework's "stable
        connectivity between all hosts" convergence check needs.
        """
        hops = [src.name]
        node = src
        seen = {src.name}
        for _ in range(max_hops):
            if node.address is not None and node.address == dst_address:
                return PathTrace(True, hops)
            entry = node.lookup_route(dst_address)
            if entry is None or entry.link is None:
                # No more-specific forwarding state: delivered here if the
                # node owns the address (or holds an explicit local entry).
                if node.owns_address(dst_address) or entry is not None:
                    return PathTrace(True, hops)
                return PathTrace(False, hops, reason=f"no route at {node.name}")
            if not entry.link.up:
                return PathTrace(False, hops, reason=f"link down at {node.name}")
            node = entry.link.other(node)
            if node.name in seen:
                hops.append(node.name)
                return PathTrace(False, hops, reason=f"loop at {node.name}")
            seen.add(node.name)
            hops.append(node.name)
        return PathTrace(False, hops, reason="hop limit")

    def all_pairs_reachable(
        self, nodes: Optional[Iterable[Node]] = None
    ) -> dict:
        """Reachability matrix over nodes' primary addresses.

        Returns ``{(src_name, dst_name): PathTrace}`` for ordered pairs of
        distinct nodes that have a primary address.
        """
        candidates = [
            n for n in (nodes if nodes is not None else self.nodes.values())
            if n.address is not None
        ]
        result = {}
        for src in candidates:
            for dst in candidates:
                if src is dst:
                    continue
                result[(src.name, dst.name)] = self.trace_path(src, dst.address)
        return result

    # ------------------------------------------------------------------
    # graph export
    # ------------------------------------------------------------------
    def to_graph(self, include_down: bool = False, kinds=("phys",)) -> nx.Graph:
        """The physical topology as a networkx graph (for analysis/viz)."""
        graph = nx.Graph()
        for node in self.nodes.values():
            graph.add_node(node.name, kind=type(node).__name__)
        for link in self.links:
            if link.kind not in kinds:
                continue
            if not link.up and not include_down:
                continue
            graph.add_edge(
                link.a.name, link.b.name,
                latency=link.latency, name=link.name, up=link.up,
            )
        return graph

    def __repr__(self) -> str:
        return f"<Network nodes={len(self.nodes)} links={len(self.links)}>"
