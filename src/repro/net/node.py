"""Base node class for every emulated device.

BGP routers, SDN switches, the IDR controller, the cluster BGP speaker,
the route collector, and plain hosts all subclass :class:`Node`.  The
base class owns link attachment, message dispatch, the local FIB, and
data-plane forwarding (longest-prefix match + TTL), so subclasses only
implement their control planes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..eventsim import InstrumentationBus, Simulator, bus_of
from .addr import IPv4Address, Prefix
from .dataplane import Fib, FibEntry
from .link import Link
from .messages import Message, Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["Node", "Host"]


class Node:
    """An emulated network device attached to a simulator.

    Subclasses override :meth:`handle_message` for their control plane
    and may override :meth:`handle_local_packet` for packets addressed
    to one of the node's own prefixes.
    """

    def __init__(self, sim: Simulator, instrument, name: str) -> None:
        self.sim = sim
        #: the bus all instrumentation records are published on.
        #: ``instrument`` may be the bus itself or a legacy
        #: :class:`~repro.eventsim.trace.TraceLog` (which owns a bus).
        self.bus: InstrumentationBus = bus_of(instrument)
        #: kept for callers that still reach node.trace for queries;
        #: identical to ``instrument`` as passed in.
        self.trace = instrument
        self.name = name
        self.links: list[Link] = []
        self.fib = Fib()
        #: prefixes this node terminates (delivers locally).
        self.local_prefixes: list[Prefix] = []
        #: primary loopback-style address, set by the config layer.
        self.address: Optional[IPv4Address] = None
        self.packets_forwarded = 0
        self.packets_dropped = 0
        #: seq -> arrival time of echo replies to pings we originated.
        self.echo_replies_received: dict[int, float] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_link(self, link: Link) -> None:
        """Register an attached link."""
        self.links.append(link)

    def neighbors(self) -> Iterable["Node"]:
        """Adjacent ASNs / nodes."""
        for link in self.links:
            yield link.other(self)

    def link_to(self, other: "Node") -> Optional[Link]:
        """The first link connecting this node to ``other``, if any."""
        for link in self.links:
            if link.other(self) is other:
                return link
        return None

    def up_links(self) -> list[Link]:
        """Attached links currently up."""
        return [link for link in self.links if link.up]

    def link_state_changed(self, link: Link) -> None:
        """Hook: called when an attached link changes up/down state."""

    # ------------------------------------------------------------------
    # local addressing
    # ------------------------------------------------------------------
    def add_local_prefix(self, prefix: Prefix) -> None:
        """Own a prefix (deliver its traffic locally)."""
        if prefix not in self.local_prefixes:
            self.local_prefixes.append(prefix)

    def remove_local_prefix(self, prefix: Prefix) -> None:
        """Stop owning a prefix."""
        if prefix in self.local_prefixes:
            self.local_prefixes.remove(prefix)

    def owns_address(self, address: IPv4Address) -> bool:
        """True if the address is ours or in an owned prefix."""
        if self.address is not None and self.address == address:
            return True
        return any(address in p for p in self.local_prefixes)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def receive(self, link: Link, message: Message) -> None:
        """Entry point for anything delivered by a link."""
        obs = self.bus.obs
        if obs is None:
            self._dispatch(link, message)
            return
        # Provenance: process the delivery inside the causal context the
        # sender stamped on the message (None for unattributed traffic).
        prev = obs.swap(getattr(message, "_prov", None))
        try:
            self._dispatch(link, message)
        finally:
            obs.swap(prev)

    def _dispatch(self, link: Link, message: Message) -> None:
        if isinstance(message, Packet):
            self._receive_packet(link, message)
        else:
            self.handle_message(link, message)

    def handle_message(self, link: Link, message: Message) -> None:
        """Control-plane dispatch; default drops silently."""

    def _receive_packet(self, link: Link, packet: Packet) -> None:
        packet.hops.append(self.name)
        self._route_packet(link, packet)

    def _route_packet(self, link: Optional[Link], packet: Packet) -> None:
        """Local-vs-forward decision, longest-prefix match winning.

        A node may own a covering prefix (the AS aggregate) while holding
        a more-specific route toward an attached host — the specific
        route must win, as it would on a real router.
        """
        if self.address is not None and self.address == packet.dst:
            self.handle_local_packet(link, packet)
            return
        entry = self.lookup_route(packet.dst)
        if entry is not None and entry.link is not None:
            self.forward_packet(packet, entry)
            return
        if entry is not None or self.owns_address(packet.dst):
            # Explicit local entry, or the address falls in an owned
            # prefix with nothing more specific: deliver here.
            self.handle_local_packet(link, packet)
            return
        self._drop(packet, "no_route")

    def handle_local_packet(self, link: Optional[Link], packet: Packet) -> None:
        """Packet addressed to this node.

        Every device answers echo requests (as real routers do) and
        records echo replies it receives, so ping works between any two
        addressed nodes.  Subclasses extend for other protocols.
        """
        from .messages import PING_PROTO

        if packet.proto == PING_PROTO:
            if packet.payload == "reply":
                self.echo_replies_received[packet.seq] = self.sim.now
                self.bus.record_lazy(
                    "ping.reply", self.name,
                    lambda: {"seq": packet.seq, "src": str(packet.src)},
                )
            else:
                reply = Packet(
                    src=packet.dst, dst=packet.src, proto=PING_PROTO,
                    seq=packet.seq, payload="reply",
                )
                self.send_packet(reply)

    # ------------------------------------------------------------------
    # forwarding (data plane)
    # ------------------------------------------------------------------
    def forward_packet(
        self, packet: Packet, entry: Optional[FibEntry] = None
    ) -> bool:
        """Forward via longest-prefix match; returns False if dropped."""
        if packet.ttl <= 0:
            return self._drop(packet, "ttl_expired")
        if entry is None:
            entry = self.lookup_route(packet.dst)
        if entry is None:
            return self._drop(packet, "no_route")
        link = entry.link
        if link is None:
            self.handle_local_packet(None, packet)
            return True
        if not link.up:
            return self._drop(packet, "link_down")
        packet.ttl -= 1
        self.packets_forwarded += 1
        return link.transmit(self, packet)

    def lookup_route(self, dst: IPv4Address) -> Optional[FibEntry]:
        """FIB lookup hook; SDN switches override with flow-table lookup."""
        return self.fib.lookup(dst)

    def _drop(self, packet: Packet, reason: str) -> bool:
        self.packets_dropped += 1
        self.bus.record_lazy(
            "packet.drop", self.name,
            lambda: {
                "reason": reason,
                "src": str(packet.src), "dst": str(packet.dst),
                "proto": packet.proto,
            },
        )
        return False

    # ------------------------------------------------------------------
    def send_packet(self, packet: Packet) -> bool:
        """Originate a packet from this node (routes like a received one)."""
        packet.hops.append(self.name)
        self._route_packet(None, packet)
        return True

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Host(Node):
    """An end host inside some AS prefix, used for connectivity monitoring.

    Hosts additionally count received probe packets, which is what the
    framework's loss measurement and the demo's "end-to-end video
    application" stand-in consume.
    """

    def __init__(self, sim: Simulator, instrument, name: str) -> None:
        super().__init__(sim, instrument, name)
        self.probes_received: list[Packet] = []

    def handle_local_packet(self, link: Optional[Link], packet: Packet) -> None:
        """Packet addressed to this node (answers pings)."""
        from .messages import PROBE_PROTO

        if packet.proto == PROBE_PROTO:
            self.probes_received.append(packet)
            self.bus.record_lazy(
                "probe.rx", self.name,
                lambda: {"seq": packet.seq, "src": str(packet.src)},
            )
            return
        super().handle_local_packet(link, packet)
