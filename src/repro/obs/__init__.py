"""repro.obs — causal provenance tracing and cross-run telemetry.

Spans attribute every RIB/FIB change to the root event that caused it;
the DAG derives per-run explanations (path-exploration depth, MRAI
wait, update fan-out, per-AS convergence instants); exporters produce
Perfetto-loadable Chrome traces and JSONL.  See docs/observability.md.

The telemetry layer persists across processes: :mod:`~repro.obs.registry`
is the append-only SQLite run registry every sweep can record into,
:mod:`~repro.obs.trends` diffs runs/sweeps and gates regressions over
the recorded history, and :mod:`~repro.obs.dashboard` renders the
registry as a static HTML page.  See docs/telemetry.md.
"""

from .anatomy import (
    ANATOMY_CATEGORIES,
    ConvergenceAnatomy,
    NodeAnatomy,
    aggregate_anatomy,
    anatomize,
    anatomy_markdown,
    anatomy_payload,
    anatomy_report,
    check_anatomy,
)
from .dag import STATE_CHANGING, ProvenanceDAG
from .export import (
    as_spans,
    chrome_trace_json,
    spans_from_jsonl,
    spans_to_jsonl,
    to_chrome_trace,
)
from .spans import (
    SPAN_CATEGORIES,
    Span,
    SpanTracker,
    activation,
    last_span_activation,
)

# The telemetry modules pull in repro.runner and repro.analysis, which
# themselves import the simulator packages that import repro.obs.spans —
# so they must load lazily (PEP 562) to keep `import repro.bgp` and
# friends cycle-free.
_LAZY = {
    "render_dashboard": ".dashboard",
    "DEFAULT_REGISTRY_PATH": ".registry",
    "REGISTRY_ENV": ".registry",
    "RegistrySink": ".registry",
    "RunRegistry": ".registry",
    "RunRow": ".registry",
    "SweepRow": ".registry",
    "aggregate_profiles": ".registry",
    "current_git_rev": ".registry",
    "resolve_registry": ".registry",
    "Regression": ".trends",
    "RunDiff": ".trends",
    "SweepDiff": ".trends",
    "compare_report_dirs": ".trends",
    "compare_report_texts": ".trends",
    "detect_regressions": ".trends",
    "diff_runs": ".trends",
    "diff_sweeps": ".trends",
    # operational telemetry plane (docs/operations.md)
    "PromScrape": ".runtime",
    "parse_prometheus": ".runtime",
    "render_prometheus": ".runtime",
    "StructuredLogger": ".logging",
    "get_logger": ".logging",
    "log_enabled": ".logging",
    "new_cid": ".logging",
    "StackSampler": ".sampler",
    "collapsed_text": ".sampler",
    "merge_stacks": ".sampler",
    "top_frames": ".sampler",
}


def __getattr__(name):
    if name in _LAZY:
        from importlib import import_module

        value = getattr(import_module(_LAZY[name], __name__), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

__all__ = [
    "DEFAULT_REGISTRY_PATH",
    "REGISTRY_ENV",
    "RunRegistry",
    "RegistrySink",
    "RunRow",
    "SweepRow",
    "aggregate_profiles",
    "current_git_rev",
    "resolve_registry",
    "Regression",
    "RunDiff",
    "SweepDiff",
    "diff_runs",
    "diff_sweeps",
    "detect_regressions",
    "compare_report_texts",
    "compare_report_dirs",
    "render_dashboard",
    "Span",
    "SpanTracker",
    "SPAN_CATEGORIES",
    "ProvenanceDAG",
    "STATE_CHANGING",
    "ANATOMY_CATEGORIES",
    "ConvergenceAnatomy",
    "NodeAnatomy",
    "anatomize",
    "anatomy_payload",
    "anatomy_report",
    "anatomy_markdown",
    "aggregate_anatomy",
    "check_anatomy",
    "to_chrome_trace",
    "chrome_trace_json",
    "spans_to_jsonl",
    "spans_from_jsonl",
    "as_spans",
    "activation",
    "last_span_activation",
    "PromScrape",
    "parse_prometheus",
    "render_prometheus",
    "StructuredLogger",
    "get_logger",
    "log_enabled",
    "new_cid",
    "StackSampler",
    "collapsed_text",
    "merge_stacks",
    "top_frames",
]
