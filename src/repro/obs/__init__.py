"""repro.obs — causal provenance tracing.

Spans attribute every RIB/FIB change to the root event that caused it;
the DAG derives per-run explanations (path-exploration depth, MRAI
wait, update fan-out, per-AS convergence instants); exporters produce
Perfetto-loadable Chrome traces and JSONL.  See docs/observability.md.
"""

from .dag import STATE_CHANGING, ProvenanceDAG
from .export import (
    as_spans,
    chrome_trace_json,
    spans_from_jsonl,
    spans_to_jsonl,
    to_chrome_trace,
)
from .spans import (
    SPAN_CATEGORIES,
    Span,
    SpanTracker,
    activation,
    last_span_activation,
)

__all__ = [
    "Span",
    "SpanTracker",
    "SPAN_CATEGORIES",
    "ProvenanceDAG",
    "STATE_CHANGING",
    "to_chrome_trace",
    "chrome_trace_json",
    "spans_to_jsonl",
    "spans_from_jsonl",
    "as_spans",
    "activation",
    "last_span_activation",
]
