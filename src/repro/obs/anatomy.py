"""Convergence anatomy — critical-path delay attribution over spans.

The provenance DAG says *when* each AS converged; this module says
*why it took that long*.  For one convergence root it extracts, per AS,
the **critical causal path**: the parent chain of the span that fixes
that AS's convergence instant (its latest route-affecting span, ties
broken toward the smallest span id so the choice is deterministic).
Walking that chain root-to-leaf with a time cursor decomposes the
whole interval ``instant - t_event`` into delay categories:

- ``propagation`` — time on the wire (cursor advancing to an
  ``bgp.update.rx`` delivery instant),
- ``mrai_wait`` — time an UPDATE sat in an MRAI gate (the
  ``mrai_wait`` annotation that sessions stretch over their tx spans),
- ``debounce_wait`` — time dirty prefixes waited for the controller's
  debounced recompute (the ``debounce_wait`` annotation),
- ``processing`` — any remaining forward motion of the cursor across a
  span (BGP decision work, scheduled processing delays),
- ``queueing`` — the residual: whatever part of the interval the chain
  does not cover (gaps closed by later spans), plus float dust.

``queueing`` is computed *by subtraction* and then nudged by at most a
few ulps so the fixed-order category sum equals ``total`` bit-exactly —
the waterfall always reconciles with the measured instant, which is the
invariant CI asserts (``repro trace anatomy --check``).  Everything
here is a pure function of the recorded spans (simulated timestamps
only), so anatomy is deterministic by construction and provably
invisible to results — the differential test pins measurements, trace
digests and spec digests identical with anatomy on or off.

See docs/observability.md ("Convergence anatomy") for a worked
waterfall on the paper's 16-AS clique.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..eventsim.bus import ROUTE_AFFECTING
from .dag import ProvenanceDAG
from .spans import Span

__all__ = [
    "ANATOMY_CATEGORIES",
    "NodeAnatomy",
    "ConvergenceAnatomy",
    "critical_spans",
    "anatomize",
    "anatomy_payload",
    "ensure_record_anatomy",
    "aggregate_anatomy",
    "check_anatomy",
    "anatomy_report",
    "anatomy_markdown",
    "anatomy_json",
]

#: Delay categories, in the fixed order the exact-sum invariant uses.
ANATOMY_CATEGORIES = (
    "propagation",
    "mrai_wait",
    "debounce_wait",
    "processing",
    "queueing",
)

#: payload format version carried by every anatomy dict.
ANATOMY_SCHEMA = 1


@dataclass(frozen=True)
class NodeAnatomy:
    """One AS's convergence interval, decomposed along its critical path.

    ``categories`` sums (in :data:`ANATOMY_CATEGORIES` order) bit-exactly
    to ``total`` = ``instant - t_event``.  ``steps`` is the rendered
    waterfall: ``(span_id, span category, delay category, t_from, t_to,
    amount)`` segments in causal order — present only on live objects
    built from a DAG, dropped from the compact payload because it is
    always re-derivable from the spans.
    """

    node: str
    instant: float
    total: float
    critical_span: int
    depth: int
    categories: Dict[str, float]
    steps: Tuple[Tuple[int, str, str, float, float, float], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "instant": self.instant,
            "total": self.total,
            "critical_span": self.critical_span,
            "depth": self.depth,
            "categories": dict(self.categories),
        }


@dataclass(frozen=True)
class ConvergenceAnatomy:
    """All per-AS waterfalls of one convergence root.

    ``critical_node`` is the last AS to converge (ties broken by node
    name, so the pick is deterministic); its waterfall decomposes the
    event's headline ``t_converged - t_event`` and is what sweeps
    aggregate against the SDN fraction.
    """

    root_id: int
    root_category: str
    root_node: str
    t_event: float
    t_converged: float
    nodes: Dict[str, NodeAnatomy] = field(default_factory=dict)

    @property
    def critical_node(self) -> Optional[str]:
        best: Optional[str] = None
        for name, node in self.nodes.items():
            if (
                best is None
                or node.instant > self.nodes[best].instant
                or (
                    node.instant == self.nodes[best].instant
                    and name < best
                )
            ):
                best = name
        return best

    @property
    def critical(self) -> Optional[NodeAnatomy]:
        name = self.critical_node
        return self.nodes[name] if name is not None else None

    @property
    def categories(self) -> Dict[str, float]:
        """The critical AS's waterfall (sums to the event's duration)."""
        critical = self.critical
        if critical is None:
            return {category: 0.0 for category in ANATOMY_CATEGORIES}
        return dict(critical.categories)

    def to_dict(self) -> Dict[str, Any]:
        """Compact JSON payload (RunRecord / cache / registry form)."""
        return {
            "schema": ANATOMY_SCHEMA,
            "root_id": self.root_id,
            "root_category": self.root_category,
            "root_node": self.root_node,
            "t_event": self.t_event,
            "t_converged": self.t_converged,
            "critical_node": self.critical_node,
            "critical_depth": (
                self.critical.depth if self.critical is not None else 0
            ),
            "categories": self.categories,
            "nodes": {
                name: self.nodes[name].to_dict()
                for name in sorted(self.nodes)
            },
        }


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
def critical_spans(
    dag: ProvenanceDAG, root_id: int, *, categories=ROUTE_AFFECTING
) -> Dict[str, Span]:
    """Per node, the span that fixes its convergence instant.

    The latest matching span of the root's subtree at each node; at
    equal ``t_end`` the smallest span id wins, so the critical path is
    deterministic.  ``span.t_end`` equals
    :meth:`ProvenanceDAG.per_node_instants` for every node.
    """
    best: Dict[str, Span] = {}
    for span in dag.subtree(root_id):
        if span.category not in categories:
            continue
        prev = best.get(span.node)
        if (
            prev is None
            or span.t_end > prev.t_end
            or (span.t_end == prev.t_end and span.span_id < prev.span_id)
        ):
            best[span.node] = span
    return best


def _wait_of(span: Span) -> Tuple[float, Optional[str]]:
    """The annotated gate wait a span covers, and its delay category."""
    if span.category == "bgp.update.tx":
        return float(span.data.get("mrai_wait") or 0.0), "mrai_wait"
    if span.category == "controller.recompute":
        return float(span.data.get("debounce_wait") or 0.0), "debounce_wait"
    return 0.0, None


def _attribute_chain(
    chain: Sequence[Span], t_event: float, instant: float
) -> Tuple[Dict[str, float], Tuple]:
    """Decompose ``instant - t_event`` along a root-first parent chain.

    A cursor walks the chain; each span that moves it forward charges
    the advance to a category.  ``queueing`` closes the books: it is
    ``total`` minus the named categories, nudged (at most a few ulps)
    until the fixed-order sum reproduces ``total`` bit-exactly.
    """
    named = {
        "propagation": 0.0,
        "mrai_wait": 0.0,
        "debounce_wait": 0.0,
        "processing": 0.0,
    }
    steps: List[Tuple[int, str, str, float, float, float]] = []
    cursor = t_event
    for span in chain[1:]:  # the root itself is the event instant
        if span.t_end <= cursor:
            continue
        delta = span.t_end - cursor
        wait, wait_category = _wait_of(span)
        waited = min(wait, delta) if wait > 0.0 else 0.0
        if waited > 0.0 and wait_category is not None:
            named[wait_category] += waited
            steps.append(
                (span.span_id, span.category, wait_category,
                 cursor, cursor + waited, waited)
            )
        remainder = delta - waited
        if remainder > 0.0:
            bucket = (
                "propagation"
                if span.category == "bgp.update.rx"
                else "processing"
            )
            named[bucket] += remainder
            steps.append(
                (span.span_id, span.category, bucket,
                 cursor + waited, span.t_end, remainder)
            )
        cursor = span.t_end
    total = instant - t_event
    categories = dict(named)
    categories["queueing"] = _close_residual(named, total)
    return categories, tuple(steps)


def _close_residual(named: Dict[str, float], total: float) -> float:
    """The ``queueing`` value that makes the category sum equal ``total``.

    Telescoping float sums need not reproduce the endpoint difference,
    so the residual starts as plain subtraction and is then corrected
    until adding it back lands on ``total`` exactly.  The loop is
    bounded: for simulator-scale magnitudes one pass suffices, and a
    non-converging pathological case keeps the best correction found.
    """
    base = 0.0
    for category in ("propagation", "mrai_wait", "debounce_wait",
                     "processing"):
        base += named[category]
    residual = total - base
    for _ in range(4):
        gap = total - (base + residual)
        if gap == 0.0:
            break
        residual += gap
    return residual


def anatomize(dag: ProvenanceDAG, root_id: int) -> ConvergenceAnatomy:
    """Full per-AS delay attribution for one convergence root."""
    root = dag.by_id[root_id]
    anatomy = ConvergenceAnatomy(
        root_id=root_id,
        root_category=root.category,
        root_node=root.node,
        t_event=root.t_start,
        t_converged=dag.convergence_instant(root_id),
    )
    for node, span in critical_spans(dag, root_id).items():
        chain = list(reversed(dag.parent_chain(span.span_id)))
        categories, steps = _attribute_chain(
            chain, anatomy.t_event, span.t_end
        )
        anatomy.nodes[node] = NodeAnatomy(
            node=node,
            instant=span.t_end,
            total=span.t_end - anatomy.t_event,
            critical_span=span.span_id,
            depth=len(chain) - 1,
            categories=categories,
            steps=steps,
        )
    return anatomy


# ----------------------------------------------------------------------
# record plumbing
# ----------------------------------------------------------------------
def anatomy_payload(
    spans: Iterable[Dict[str, Any]], root_id: Optional[int]
) -> Optional[Dict[str, Any]]:
    """The compact anatomy dict for a record's span payload, or None.

    ``root_id`` is the measured event's root span
    (``measurement.extra["event_root_span"]``); without it — or when
    the id does not resolve in the spans — there is nothing to
    attribute.
    """
    if root_id is None:
        return None
    dag = ProvenanceDAG.from_dicts(spans)
    if int(root_id) not in dag.by_id:
        return None
    return anatomize(dag, int(root_id)).to_dict()


def ensure_record_anatomy(record) -> None:
    """Fill ``record.anatomy`` in place when it is derivable.

    Anatomy is a pure function of the record's spans, so a cached
    record written before anatomy existed (or by an anatomy-off run of
    the same digest) gains it losslessly on the way out of the cache.
    No-op when already present or when spans/measurement are missing.
    """
    if record.anatomy is not None or not record.spans:
        return
    measurement = record.measurement
    if measurement is None:
        return
    root_id = measurement.extra.get("event_root_span")
    record.anatomy = anatomy_payload(record.spans, root_id)


# ----------------------------------------------------------------------
# aggregation / verification
# ----------------------------------------------------------------------
def aggregate_anatomy(
    payloads: Iterable[Optional[Dict[str, Any]]]
) -> Optional[Dict[str, Any]]:
    """Median per-category attribution across runs' anatomy payloads.

    Aggregates the critical-path waterfalls (each run's headline
    decomposition); ``None`` entries are skipped.  Returns ``{"runs":
    n, "categories": {...medians...}, "total": median total}`` or None
    when nothing carried anatomy.
    """
    rows = [p for p in payloads if p and isinstance(p.get("categories"), dict)]
    if not rows:
        return None

    def median(values: List[float]) -> float:
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    categories = {
        category: median(
            [float(p["categories"].get(category, 0.0)) for p in rows]
        )
        for category in ANATOMY_CATEGORIES
    }
    totals = [
        float(p.get("t_converged", 0.0)) - float(p.get("t_event", 0.0))
        for p in rows
    ]
    return {
        "runs": len(rows),
        "categories": categories,
        "total": median(totals),
    }


def check_anatomy(
    payload: Dict[str, Any],
    *,
    t_converged: Optional[float] = None,
) -> List[str]:
    """Verify the exact-sum invariant of an anatomy payload.

    Every node's fixed-order category sum must equal its ``total``
    bit-exactly, every total must equal ``instant - t_event``, and the
    latest instant must equal the payload's ``t_converged`` (and the
    measured one, when given — that is the ConvergenceTracker cross
    check CI runs).  Returns human-readable problems; empty == exact.
    """
    problems: List[str] = []
    t_event = payload.get("t_event", 0.0)
    nodes = payload.get("nodes") or {}
    latest: Optional[float] = None
    for name in sorted(nodes):
        node = nodes[name]
        total = node.get("total", 0.0)
        instant = node.get("instant", 0.0)
        latest = instant if latest is None else max(latest, instant)
        sum_ = 0.0
        for category in ANATOMY_CATEGORIES:
            sum_ += node.get("categories", {}).get(category, 0.0)
        if sum_ != total:
            problems.append(
                f"{name}: categories sum {sum_!r} != total {total!r}"
            )
        if total != instant - t_event:
            problems.append(
                f"{name}: total {total!r} != instant - t_event "
                f"{(instant - t_event)!r}"
            )
    if latest is not None and latest != payload.get("t_converged"):
        problems.append(
            f"latest instant {latest!r} != t_converged "
            f"{payload.get('t_converged')!r}"
        )
    if t_converged is not None and payload.get("t_converged") != t_converged:
        problems.append(
            f"anatomy t_converged {payload.get('t_converged')!r} != "
            f"measured {t_converged!r}"
        )
    return problems


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------
def _category_cells(categories: Dict[str, float]) -> List[str]:
    return [f"{categories.get(c, 0.0):10.3f}" for c in ANATOMY_CATEGORIES]


def _waterfall_lines(node: NodeAnatomy) -> List[str]:
    lines = [
        f"critical path of {node.node} "
        f"(instant {node.instant:.3f}s, {node.depth} hop(s)):"
    ]
    for span_id, span_category, delay_category, t_from, t_to, amount in (
        node.steps
    ):
        lines.append(
            f"  {t_from:9.3f}s -> {t_to:9.3f}s  {delay_category:<13} "
            f"{amount:8.3f}s  [{span_category} #{span_id}]"
        )
    if not node.steps:
        lines.append("  (instantaneous — converged at the event itself)")
    return lines


def anatomy_report(
    anatomy: ConvergenceAnatomy, *, node: Optional[str] = None
) -> str:
    """Human-readable waterfall report (``repro trace anatomy``).

    Shows the per-AS category table plus the step-by-step waterfall of
    one AS — ``node`` when given, the critical (last-converging) AS
    otherwise.
    """
    lines = [
        "Convergence anatomy",
        "===================",
        f"root        : #{anatomy.root_id} {anatomy.root_category} "
        f"at {anatomy.root_node}",
        f"t_event     : {anatomy.t_event:.3f}s",
        f"t_converged : {anatomy.t_converged:.3f}s  "
        f"(duration {anatomy.t_converged - anatomy.t_event:.3f}s)",
        f"critical AS : {anatomy.critical_node}",
        "",
        "Per-AS delay attribution (seconds; rows sum to the interval):",
        "  node        " + " ".join(f"{c:>10}" for c in ANATOMY_CATEGORIES)
        + "      total",
    ]
    for name in sorted(anatomy.nodes):
        per_node = anatomy.nodes[name]
        lines.append(
            f"  {name:<11} "
            + " ".join(_category_cells(per_node.categories))
            + f" {per_node.total:10.3f}"
        )
    focus = node if node is not None else anatomy.critical_node
    if focus is not None and focus in anatomy.nodes:
        lines.append("")
        lines.extend(_waterfall_lines(anatomy.nodes[focus]))
    elif node is not None:
        lines.append("")
        lines.append(f"(node {node!r} has no activity under this root)")
    return "\n".join(lines) + "\n"


def anatomy_markdown(anatomy: ConvergenceAnatomy) -> str:
    """Markdown form of the waterfall report (CI artifact / docs)."""
    duration = anatomy.t_converged - anatomy.t_event
    lines = [
        "# Convergence anatomy",
        "",
        f"- **Root**: `#{anatomy.root_id}` {anatomy.root_category} at "
        f"{anatomy.root_node}",
        f"- **Interval**: {anatomy.t_event:.3f}s → "
        f"{anatomy.t_converged:.3f}s ({duration:.3f}s)",
        f"- **Critical AS**: {anatomy.critical_node}",
        "",
        "| node | " + " | ".join(ANATOMY_CATEGORIES) + " | total |",
        "|---|" + "---|" * (len(ANATOMY_CATEGORIES) + 1),
    ]
    for name in sorted(anatomy.nodes):
        per_node = anatomy.nodes[name]
        cells = " | ".join(
            f"{per_node.categories.get(c, 0.0):.3f}"
            for c in ANATOMY_CATEGORIES
        )
        lines.append(f"| {name} | {cells} | {per_node.total:.3f} |")
    critical = anatomy.critical
    if critical is not None and critical.steps:
        lines += [
            "",
            f"## Critical path ({critical.node})",
            "",
            "| from | to | category | amount | span |",
            "|---|---|---|---|---|",
        ]
        for span_id, span_category, delay_category, t_from, t_to, amount in (
            critical.steps
        ):
            lines.append(
                f"| {t_from:.3f}s | {t_to:.3f}s | {delay_category} | "
                f"{amount:.3f}s | {span_category} #{span_id} |"
            )
    return "\n".join(lines) + "\n"


def anatomy_json(anatomy: ConvergenceAnatomy) -> str:
    """Canonical JSON form of the compact payload."""
    return json.dumps(anatomy.to_dict(), indent=2, sort_keys=True)
