"""Provenance DAG — causal queries over a run's span set.

Built from the spans a :class:`~repro.obs.spans.SpanTracker` collected
(or their JSON dict form, straight from a cache payload), the DAG
answers the explanatory questions the paper's counters cannot:

- which root event caused a given RIB/FIB change (``subtree``),
- when each AS last changed state because of a root event
  (``per_node_instants`` — the per-AS convergence instants),
- how much path exploration a withdrawal triggered
  (``path_exploration`` — decisions per (node, prefix)),
- how long updates sat in MRAI gates (``mrai_wait_total``),
- how widely each transmitted update fanned out (``fanout``).

Maxima over the route-affecting spans of a root's subtree equal the
streaming :class:`~repro.framework.convergence.ConvergenceTracker`
answers exactly — one span per route-affecting record is the tracker
invariant, tested in ``tests/obs``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional

from ..eventsim.bus import ROUTE_AFFECTING
from .spans import Span

__all__ = ["ProvenanceDAG", "STATE_CHANGING"]

#: Mirrors ``repro.framework.convergence.STATE_CHANGING`` (kept local so
#: ``repro.obs`` depends only on eventsim; equality is asserted in
#: tests/obs so the two can never drift apart).
STATE_CHANGING = frozenset(
    {"bgp.decision", "fib.change", "bgp.originate", "bgp.withdraw"}
)


class ProvenanceDAG:
    """Indexed view over a run's spans.

    The structure is a forest: every span has at most one parent, every
    root is its own cause.  "DAG" refers to the causal *event* graph the
    forest encodes — a message can have many downstream consequences but
    exactly one proximate trigger, which is what the parent edge records.
    """

    def __init__(self, spans: Iterable[Span]) -> None:
        self.spans: List[Span] = sorted(spans, key=lambda s: s.span_id)
        self.by_id: Dict[int, Span] = {s.span_id: s for s in self.spans}
        self.children: Dict[int, List[int]] = {}
        for span in self.spans:
            if span.parent_id is not None and span.parent_id in self.by_id:
                self.children.setdefault(span.parent_id, []).append(
                    span.span_id
                )

    @classmethod
    def from_dicts(cls, payloads: Iterable[Dict[str, Any]]) -> "ProvenanceDAG":
        """Build from JSON-ready span dicts (cache / JSONL form)."""
        return cls(Span.from_dict(p) for p in payloads)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def roots(
        self, *, since: Optional[float] = None, category: Optional[str] = None
    ) -> List[Span]:
        """Root-cause spans, optionally filtered by time and category."""
        out = []
        for span in self.spans:
            if span.parent_id is not None:
                continue
            if since is not None and span.t_start < since:
                continue
            if category is not None and span.category != category:
                continue
            out.append(span)
        return out

    def subtree(self, root_id: int) -> Iterator[Span]:
        """All spans caused (transitively) by ``root_id``, including it.

        Deterministic order: depth-first, children in span-id order.
        """
        if root_id not in self.by_id:
            raise KeyError(f"unknown span id {root_id}")
        stack = [root_id]
        while stack:
            span_id = stack.pop()
            yield self.by_id[span_id]
            stack.extend(reversed(self.children.get(span_id, ())))

    def parent_chain(self, span_id: int) -> List[Span]:
        """The path from a span back to its root cause (span first)."""
        chain = []
        current: Optional[int] = span_id
        while current is not None:
            span = self.by_id[current]
            chain.append(span)
            current = span.parent_id
        return chain

    # ------------------------------------------------------------------
    # convergence instants
    # ------------------------------------------------------------------
    def per_node_instants(
        self, root_id: int, *, categories=ROUTE_AFFECTING
    ) -> Dict[str, float]:
        """Last matching-span instant per node within a root's subtree.

        With the default categories these are the per-AS convergence
        instants of the root event: the moment after which that AS saw
        no further route-affecting activity attributable to it.
        """
        instants: Dict[str, float] = {}
        for span in self.subtree(root_id):
            if span.category in categories:
                prev = instants.get(span.node)
                if prev is None or span.t_end > prev:
                    instants[span.node] = span.t_end
        return instants

    def convergence_instant(self, root_id: int) -> float:
        """Timestamp of the last route-affecting consequence of a root.

        Equals the streaming tracker's ``last_activity_since(t_event)``
        when the root is the only event active in the window.
        """
        root = self.by_id[root_id]
        instants = self.per_node_instants(root_id)
        return max(instants.values()) if instants else root.t_end

    def state_instant(self, root_id: int) -> float:
        """Timestamp of the last actual state change caused by a root."""
        root = self.by_id[root_id]
        instants = self.per_node_instants(
            root_id, categories=STATE_CHANGING
        )
        return max(instants.values()) if instants else root.t_end

    # ------------------------------------------------------------------
    # explanatory metrics
    # ------------------------------------------------------------------
    def path_exploration(self, root_id: int) -> Dict[str, Dict[str, int]]:
        """Decision count per (prefix, node) in a root's subtree.

        Each BGP decision a node makes for a prefix beyond its first is
        path exploration — the transient alternatives tried before the
        final route sticks (the effect centralization suppresses).
        """
        out: Dict[str, Dict[str, int]] = {}
        for span in self.subtree(root_id):
            if span.category != "bgp.decision":
                continue
            prefix = str(span.data.get("prefix"))
            per_node = out.setdefault(prefix, {})
            per_node[span.node] = per_node.get(span.node, 0) + 1
        return out

    def path_exploration_depth(self, root_id: int) -> Dict[str, int]:
        """Max decisions any single node made per prefix (depth proxy)."""
        return {
            prefix: max(per_node.values())
            for prefix, per_node in self.path_exploration(root_id).items()
        }

    def mrai_wait_total(self, root_id: int) -> float:
        """Total seconds updates in this tree waited in MRAI gates."""
        return sum(
            float(span.data.get("mrai_wait", 0.0))
            for span in self.subtree(root_id)
            if span.category == "bgp.update.tx"
        )

    def fanout(self, root_id: int) -> Dict[int, int]:
        """Receivers per transmitted update (tx span id -> rx children)."""
        out: Dict[int, int] = {}
        for span in self.subtree(root_id):
            if span.category != "bgp.update.tx":
                continue
            out[span.span_id] = sum(
                1
                for child_id in self.children.get(span.span_id, ())
                if self.by_id[child_id].category == "bgp.update.rx"
            )
        return out

    def timeline(self, root_id: int) -> List[Span]:
        """The subtree in chronological order (ties by span id)."""
        return sorted(
            self.subtree(root_id), key=lambda s: (s.t_end, s.span_id)
        )

    def summary(self, root_id: int) -> Dict[str, Any]:
        """One root's derived metrics, JSON-ready (report input)."""
        root = self.by_id[root_id]
        spans = list(self.subtree(root_id))
        by_category: Dict[str, int] = {}
        for span in spans:
            by_category[span.category] = by_category.get(span.category, 0) + 1
        fanout = self.fanout(root_id)
        depth = self.path_exploration_depth(root_id)
        return {
            "root_id": root_id,
            "category": root.category,
            "node": root.node,
            "t_event": root.t_start,
            "t_converged": self.convergence_instant(root_id),
            "t_state_converged": self.state_instant(root_id),
            "spans": len(spans),
            "by_category": by_category,
            "per_node_instants": self.per_node_instants(root_id),
            "path_exploration_depth": depth,
            "mrai_wait_total": self.mrai_wait_total(root_id),
            "fanout_max": max(fanout.values()) if fanout else 0,
            "fanout_mean": (
                sum(fanout.values()) / len(fanout) if fanout else 0.0
            ),
        }

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return (
            f"<ProvenanceDAG spans={len(self.spans)} "
            f"roots={len(self.roots())}>"
        )
