"""Static HTML dashboard over the run registry.

``repro runs dashboard`` renders one self-contained HTML file — inline
CSS, inline SVG (via :mod:`repro.analysis.viz`), no JavaScript, no
external assets — summarizing the registry's longitudinal record:

- overview tiles (runs, sweeps, digests, failures, latest revision);
- convergence-vs-SDN-fraction curves per scenario, one series per
  historical sweep, so the paper's Fig. 2 trend is comparable across
  code revisions at a glance;
- per-sweep trends of trial wall time and update counts;
- cache hit rates and wall-time phase breakdowns per sweep;
- currently open regressions (:func:`repro.obs.trends.detect_regressions`);
- the hottest functions aggregated over profiled runs.

Output is deterministic for a registry recorded with an injected clock
and git revision, which is how the golden test pins it.
"""

from __future__ import annotations

import statistics
from html import escape
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.viz import svg_bar_chart, svg_line_chart
from .anatomy import ANATOMY_CATEGORIES
from .registry import RunRegistry, RunRow, SweepRow, aggregate_profiles
from .sampler import merge_stacks, top_frames
from .trends import detect_regressions

__all__ = ["render_dashboard"]

_CSS = """
body { font-family: sans-serif; margin: 24px auto; max-width: 980px;
       color: #222; }
h1 { font-size: 22px; } h2 { font-size: 17px; margin-top: 28px;
     border-bottom: 1px solid #ccc; padding-bottom: 4px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; }
.tile { border: 1px solid #ddd; border-radius: 6px; padding: 10px 16px;
        min-width: 90px; background: #fafafa; }
.tile .v { font-size: 20px; font-weight: bold; }
.tile .k { font-size: 11px; color: #666; text-transform: uppercase; }
table { border-collapse: collapse; font-size: 12px; margin-top: 8px; }
th, td { border: 1px solid #ddd; padding: 3px 8px; text-align: right; }
th { background: #f0f0f0; } td.l, th.l { text-align: left; }
.ok { color: #1b7e3c; } .bad { color: #b22222; font-weight: bold; }
.chart { margin: 12px 0; }
footer { margin-top: 32px; font-size: 11px; color: #888; }
"""


def _median(values: Sequence[float]) -> float:
    return statistics.median(values) if values else 0.0


def _convergence_time(run: RunRow) -> Optional[float]:
    m = run.measurement or {}
    if "t_converged" in m and "t_event" in m:
        return m["t_converged"] - m["t_event"]
    return None


def _sweep_label(sweep: SweepRow) -> str:
    rev = f" @{sweep.git_rev}" if sweep.git_rev else ""
    return f"#{sweep.sweep_id} {sweep.recorded_at}{rev}"


def _tile(value, key: str) -> str:
    return (
        f'<div class="tile"><div class="v">{escape(str(value))}</div>'
        f'<div class="k">{escape(key)}</div></div>'
    )


def _convergence_section(
    registry: RunRegistry, sweeps: List[SweepRow]
) -> List[str]:
    """One convergence-vs-fraction chart per scenario, a series per sweep."""
    out: List[str] = []
    scenarios = sorted({s.scenario for s in sweeps if s.scenario})
    for scenario in scenarios:
        series: List[Tuple[str, List[Tuple[float, float]]]] = []
        for sweep in [s for s in sweeps if s.scenario == scenario]:
            by_fraction: Dict[float, List[float]] = {}
            for run in registry.runs(sweep_id=sweep.sweep_id, ok=True):
                conv = _convergence_time(run)
                if conv is None or run.fraction is None:
                    continue
                by_fraction.setdefault(run.fraction, []).append(conv)
            points = [
                (fraction, _median(times))
                for fraction, times in sorted(by_fraction.items())
            ]
            if points:
                series.append((_sweep_label(sweep), points))
        if series:
            out.append(f"<h2>Convergence vs SDN fraction — {escape(scenario)}</h2>")
            out.append(
                '<div class="chart">'
                + svg_line_chart(
                    series,
                    title=f"{scenario}: median convergence time",
                    x_label="SDN fraction",
                    y_label="median convergence (s)",
                )
                + "</div>"
            )
    return out


def _anatomy_section(
    registry: RunRegistry, sweeps: List[SweepRow]
) -> List[str]:
    """Per-category delay attribution vs SDN fraction, per scenario.

    Aggregates the critical-path waterfalls recorded with each run
    (schema-3 ``anatomy`` column) over the newest recorded sweep of
    each scenario: one series per delay category, so the chart answers
    *which* category centralization removes as the fraction grows.
    """
    out: List[str] = []
    scenarios = sorted({s.scenario for s in sweeps if s.scenario})
    for scenario in scenarios:
        # newest sweep of the scenario that carries any anatomy
        chosen: Dict[float, List[Dict]] = {}
        for sweep in reversed([s for s in sweeps if s.scenario == scenario]):
            by_fraction: Dict[float, List[Dict]] = {}
            for run in registry.runs(sweep_id=sweep.sweep_id, ok=True):
                if run.anatomy is None or run.fraction is None:
                    continue
                by_fraction.setdefault(run.fraction, []).append(run.anatomy)
            if by_fraction:
                chosen = by_fraction
                break
        if not chosen:
            continue
        series: List[Tuple[str, List[Tuple[float, float]]]] = []
        for category in ANATOMY_CATEGORIES:
            points = [
                (
                    fraction,
                    _median([
                        float((p.get("categories") or {}).get(category, 0.0))
                        for p in payloads
                    ]),
                )
                for fraction, payloads in sorted(chosen.items())
            ]
            series.append((category, points))
        out.append(
            f"<h2>Convergence anatomy vs SDN fraction — {escape(scenario)}"
            "</h2>"
        )
        out.append(
            '<div class="chart">'
            + svg_line_chart(
                series,
                title=f"{scenario}: median critical-path delay by category",
                x_label="SDN fraction",
                y_label="median delay (s)",
            )
            + "</div>"
        )
    return out


def _trend_section(
    registry: RunRegistry, sweeps: List[SweepRow]
) -> List[str]:
    """Per-sweep medians of trial wall time and update counts."""
    wall_points: List[Tuple[float, float]] = []
    update_points: List[Tuple[float, float]] = []
    for sweep in sweeps:
        runs = [
            r for r in registry.runs(sweep_id=sweep.sweep_id, ok=True)
            if not r.cached
        ]
        if runs:
            wall_points.append(
                (sweep.sweep_id, _median([r.wall_time for r in runs]))
            )
        counted = [
            (r.measurement or {}).get("updates_tx")
            for r in registry.runs(sweep_id=sweep.sweep_id, ok=True)
        ]
        counted = [c for c in counted if c is not None]
        if counted:
            update_points.append((sweep.sweep_id, _median(counted)))
    out: List[str] = []
    if wall_points or update_points:
        out.append("<h2>Metrics trends across sweeps</h2>")
    if wall_points:
        out.append(
            '<div class="chart">'
            + svg_line_chart(
                [("median trial wall", wall_points)],
                title="Median executed-trial wall time per sweep",
                x_label="sweep id", y_label="seconds",
            )
            + "</div>"
        )
    if update_points:
        out.append(
            '<div class="chart">'
            + svg_line_chart(
                [("median updates_tx", update_points)],
                title="Median per-run BGP updates per sweep (deterministic)",
                x_label="sweep id", y_label="updates",
            )
            + "</div>"
        )
    return out


def _cache_section(sweeps: List[SweepRow]) -> List[str]:
    bars = []
    for sweep in sweeps:
        hits = sweep.cache_hits or 0
        misses = sweep.cache_misses or 0
        if hits + misses:
            bars.append((f"#{sweep.sweep_id}", round(hits / (hits + misses), 4)))
    if not bars:
        return []
    return [
        "<h2>Result-cache hit rate per sweep</h2>",
        '<div class="chart">'
        + svg_bar_chart(
            bars, title="Cache hit rate (1.0 = fully warm)",
            y_label="hit rate",
        )
        + "</div>",
    ]


def _phase_section(sweeps: List[SweepRow]) -> List[str]:
    """Wall-time breakdown of the most recent timed sweep + a table."""
    timed = [s for s in sweeps if s.elapsed is not None]
    if not timed:
        return []
    out = ["<h2>Wall-time breakdown per sweep</h2>"]
    latest = timed[-1]
    workers = latest.workers or 1
    job_wall = latest.total_job_wall or 0.0
    overhead = max((latest.elapsed or 0.0) - job_wall / workers, 0.0)
    out.append(
        '<div class="chart">'
        + svg_bar_chart(
            [
                ("trial execution", round(job_wall, 4)),
                ("slowest trial", round(latest.max_job_wall or 0.0, 4)),
                ("sweep elapsed", round(latest.elapsed or 0.0, 4)),
                ("orchestration", round(overhead, 4)),
            ],
            title=f"Sweep {_sweep_label(latest)} — seconds by phase "
                  f"({workers} worker(s))",
            y_label="seconds",
        )
        + "</div>"
    )
    rows = [
        "<table><tr><th class=l>sweep</th><th class=l>scenario</th>"
        "<th>jobs</th><th>cached</th><th>failed</th><th>elapsed s</th>"
        "<th>job wall s</th><th>max job s</th><th>workers</th>"
        "<th>speedup</th></tr>"
    ]
    for sweep in timed:
        speedup = (
            (sweep.total_job_wall or 0.0) / sweep.elapsed
            if sweep.elapsed else 0.0
        )
        rows.append(
            f"<tr><td class=l>{escape(_sweep_label(sweep))}</td>"
            f"<td class=l>{escape(sweep.scenario)}</td>"
            f"<td>{sweep.jobs}</td><td>{sweep.cached}</td>"
            f"<td>{sweep.failed}</td><td>{sweep.elapsed:.3f}</td>"
            f"<td>{(sweep.total_job_wall or 0.0):.3f}</td>"
            f"<td>{(sweep.max_job_wall or 0.0):.3f}</td>"
            f"<td>{sweep.workers}</td><td>{speedup:.2f}x</td></tr>"
        )
    rows.append("</table>")
    out.extend(rows)
    return out


def _regression_section(registry: RunRegistry) -> List[str]:
    regressions = detect_regressions(registry)
    out = ["<h2>Regression gate</h2>"]
    if not regressions:
        out.append('<p class="ok">No regressions detected.</p>')
        return out
    out.append(
        f'<p class="bad">{len(regressions)} regression(s) flagged:</p><ul>'
    )
    for regression in regressions:
        out.append(f"<li>{escape(regression.describe())}</li>")
    out.append("</ul>")
    return out


def _profile_section(registry: RunRegistry, *, top: int) -> List[str]:
    profiled = [r for r in registry.runs(ok=True) if r.profile]
    if not profiled:
        return []
    merged = aggregate_profiles([r.profile for r in profiled], top=top)
    out = [
        "<h2>Hot functions (cProfile, aggregated over "
        f"{len(profiled)} profiled run(s))</h2>",
        "<table><tr><th class=l>function</th><th>calls</th>"
        "<th>tottime s</th><th>cumtime s</th></tr>",
    ]
    for row in merged:
        out.append(
            f"<tr><td class=l>{escape(row['func'])}</td>"
            f"<td>{row['ncalls']}</td><td>{row['tottime']:.4f}</td>"
            f"<td>{row['cumtime']:.4f}</td></tr>"
        )
    out.append("</table>")
    return out


def _ops_section(registry: RunRegistry, *, top: int) -> List[str]:
    """Resource accounting and sampled hot frames across recorded runs."""
    runs = registry.runs(ok=True)
    accounted = [r for r in runs if r.resources]
    sampled = [r for r in runs if r.sample_stacks]
    if not accounted and not sampled:
        if not runs:
            return []
        # Runs exist but none carry resources/sample_stacks — rows
        # recorded before the schema-2 telemetry columns.  Say so
        # instead of silently omitting the section.
        return [
            "<h2>Ops — per-run resource accounting</h2>",
            f"<p>No resource accounting recorded for the {len(runs)} "
            "successful run(s) — recorded before schema 2 (re-run to "
            "populate).</p>",
        ]
    out = ["<h2>Ops — per-run resource accounting</h2>"]
    if accounted:
        out.append(
            "<table><tr><th class=l>run</th><th class=l>label</th>"
            "<th>cpu user s</th><th>cpu sys s</th><th>peak RSS KB</th>"
            "<th>gc pause s</th><th>events/s</th></tr>"
        )
        for run in accounted:
            res = run.resources or {}

            def cell(key: str, fmt: str) -> str:
                value = res.get(key)
                return format(value, fmt) if value is not None else "—"

            out.append(
                f"<tr><td class=l>#{run.run_id}</td>"
                f"<td class=l>{escape(run.label)}</td>"
                f"<td>{cell('cpu_user_s', '.3f')}</td>"
                f"<td>{cell('cpu_sys_s', '.3f')}</td>"
                f"<td>{cell('max_rss_kb', '.0f')}</td>"
                f"<td>{cell('gc_pause_s', '.4f')}</td>"
                f"<td>{cell('events_per_s', '.1f')}</td></tr>"
            )
        out.append("</table>")
    if sampled:
        merged = merge_stacks([r.sample_stacks for r in sampled])
        total = sum(merged.values())
        out.append(
            f"<h2>Ops — hot frames (sampling profiler, {total} sample(s) "
            f"over {len(sampled)} run(s))</h2>"
        )
        out.append(
            "<table><tr><th class=l>frame</th><th>samples</th>"
            "<th>share</th></tr>"
        )
        for frame, count, share in top_frames(merged, top=top):
            out.append(
                f"<tr><td class=l>{escape(frame)}</td>"
                f"<td>{count}</td><td>{share:.1%}</td></tr>"
            )
        out.append("</table>")
    return out


def render_dashboard(
    registry: RunRegistry,
    *,
    title: str = "repro telemetry",
    last_sweeps: int = 20,
    profile_top: int = 15,
    generated_at: Optional[str] = None,
) -> str:
    """Render the registry as one self-contained HTML page.

    ``generated_at`` defaults to the registry's clock (inject a fixed
    clock for deterministic output).
    """
    counts = registry.counts()
    sweeps = registry.sweeps(limit=last_sweeps, newest_first=True)
    sweeps.reverse()  # oldest -> newest for time-ordered charts
    stamp = generated_at if generated_at is not None else registry.clock()

    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        '<div class="tiles">',
        _tile(counts["runs"], "runs"),
        _tile(counts["ok"], "ok"),
        _tile(counts["failed"], "failed"),
        _tile(counts["sweeps"], "sweeps"),
        _tile(counts["digests"], "spec digests"),
        _tile(registry.git_rev or "—", "git rev"),
        _tile(registry.code_version, "code version"),
        "</div>",
    ]
    parts.extend(_convergence_section(registry, sweeps))
    parts.extend(_anatomy_section(registry, sweeps))
    parts.extend(_trend_section(registry, sweeps))
    parts.extend(_cache_section(sweeps))
    parts.extend(_phase_section(sweeps))
    parts.extend(_regression_section(registry))
    parts.extend(_profile_section(registry, top=profile_top))
    parts.extend(_ops_section(registry, top=profile_top))
    parts.append(
        f"<footer>generated {escape(stamp)} · registry "
        f"{escape(registry.path)} · repro {escape(registry.code_version)}"
        "</footer></body></html>"
    )
    return "\n".join(parts)
