"""Span exporters — Chrome trace-event JSON (Perfetto) and JSONL.

The Chrome exporter emits the trace-event format's JSON object form
(https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
one ``"X"`` (complete) event per span with microsecond timestamps, one
process per simulation, one named thread per node, and ``"s"``/``"f"``
flow events tracing every parent→child causal edge so Perfetto draws
the lineage arrows.  Virtual seconds map to microseconds 1:1 scaled by
1e6, so the timeline reads directly in simulated time.

JSONL is the interchange format: one span dict per line, loadable back
with :func:`spans_from_jsonl` for offline reporting (``repro trace
report``/``export``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Union

from .spans import Span

__all__ = [
    "to_chrome_trace",
    "chrome_trace_json",
    "spans_to_jsonl",
    "spans_from_jsonl",
    "as_spans",
]

#: Minimum rendered duration (µs) so instantaneous events stay visible.
_MIN_DUR_US = 1

#: Single simulated process id in the exported trace.
_PID = 1


def as_spans(spans: Iterable[Union[Span, Dict[str, Any]]]) -> List[Span]:
    """Normalize a span/dict mix (tracker output or cache payload)."""
    out = []
    for span in spans:
        out.append(span if isinstance(span, Span) else Span.from_dict(span))
    return out


def _us(t: float) -> int:
    return int(round(t * 1e6))


def to_chrome_trace(
    spans: Iterable[Union[Span, Dict[str, Any]]]
) -> Dict[str, Any]:
    """Spans as a Chrome trace-event JSON object (Perfetto-loadable)."""
    normalized = as_spans(spans)
    nodes = sorted({span.node for span in normalized})
    tids = {node: i + 1 for i, node in enumerate(nodes)}
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro emulation"},
        }
    ]
    for node in nodes:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tids[node],
                "args": {"name": node},
            }
        )
    by_id = {span.span_id: span for span in normalized}
    for span in normalized:
        start = _us(span.t_start)
        events.append(
            {
                "name": span.category,
                "cat": span.category,
                "ph": "X",
                "ts": start,
                "dur": max(_us(span.t_end) - start, _MIN_DUR_US),
                "pid": _PID,
                "tid": tids[span.node],
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "cause_id": span.cause_id,
                    **span.data,
                },
            }
        )
        if span.parent_id is not None and span.parent_id in by_id:
            parent = by_id[span.parent_id]
            events.append(
                {
                    "name": "cause",
                    "cat": "provenance",
                    "ph": "s",
                    "id": span.span_id,
                    "ts": _us(parent.t_end),
                    "pid": _PID,
                    "tid": tids[parent.node],
                }
            )
            events.append(
                {
                    "name": "cause",
                    "cat": "provenance",
                    "ph": "f",
                    "bp": "e",
                    "id": span.span_id,
                    "ts": _us(span.t_start),
                    "pid": _PID,
                    "tid": tids[span.node],
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(
    spans: Iterable[Union[Span, Dict[str, Any]]], *, indent: Optional[int] = None
) -> str:
    """Serialized Chrome trace, ready to write to a ``.json`` file."""
    return json.dumps(to_chrome_trace(spans), indent=indent)


def spans_to_jsonl(spans: Iterable[Union[Span, Dict[str, Any]]]) -> str:
    """One JSON object per line; the trace interchange format."""
    lines = []
    for span in as_spans(spans):
        lines.append(json.dumps(span.to_dict(), sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def spans_from_jsonl(text: str) -> List[Span]:
    """Parse :func:`spans_to_jsonl` output back into spans."""
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans
