"""Structured JSON logging with cross-process correlation ids.

One line per event, JSON object, stable leading keys (``ts``, ``level``,
``component``, ``event``, ``cid``) so a single ``grep`` over the log
destination reconstructs a job's lifecycle across the service process,
the runner, and the worker pool::

    grep '"cid":"a1b2c3d4e5f6"' repro.log

Logging is **off by default** — nothing changes for library users or
tests until the ``REPRO_LOG`` environment variable (or an explicit
:func:`configure` call) names a destination: ``stderr``, ``stdout``, or
a file path (opened append; worker processes inherit the environment so
their lines land in the same file).  Correlation ids are opaque hex
strings: the service mints one per HTTP request (honoring an
``X-Request-Id`` header) and one per job, the runner threads the job id
into every worker via ``execute_spec(spec, cid=...)``.

See docs/operations.md for the log schema and the correlation-id flow.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from datetime import datetime, timezone
from typing import Any, Callable, Dict, Optional, TextIO

__all__ = [
    "LOG_ENV",
    "NULL_LOGGER",
    "StructuredLogger",
    "configure",
    "format_ts",
    "get_logger",
    "log_enabled",
    "new_cid",
]

#: destination env var: "", unset = disabled; "stderr"/"stdout"; else a
#: file path opened for append.
LOG_ENV = "REPRO_LOG"

_LEVELS = ("debug", "info", "warning", "error")


def new_cid() -> str:
    """A fresh 12-hex-char correlation id."""
    return os.urandom(6).hex()


def format_ts(epoch: float) -> str:
    """UTC ISO-8601 with millisecond precision (``Z`` suffix)."""
    stamp = datetime.fromtimestamp(epoch, timezone.utc)
    return stamp.strftime("%Y-%m-%dT%H:%M:%S.") + f"{stamp.microsecond // 1000:03d}Z"


class StructuredLogger:
    """Writes one JSON object per line to a stream.

    ``bind(**fields)`` returns a child logger sharing the stream and
    lock with the extra fields merged into every line — the idiom for
    attaching a correlation id once instead of at every call site.
    Injectable ``clock`` (epoch seconds) keeps tests byte-deterministic.
    """

    def __init__(
        self,
        stream: TextIO,
        *,
        component: str = "repro",
        clock: Optional[Callable[[], float]] = None,
        fields: Optional[Dict[str, Any]] = None,
        _lock: Optional[threading.Lock] = None,
    ) -> None:
        self.stream = stream
        self.component = component
        self.clock = clock or time.time
        self.fields: Dict[str, Any] = dict(fields or {})
        self._lock = _lock or threading.Lock()

    def bind(self, component: Optional[str] = None, **fields: Any) -> "StructuredLogger":
        """A child logger with ``fields`` merged into every line."""
        merged = dict(self.fields)
        merged.update(fields)
        return StructuredLogger(
            self.stream,
            component=component or self.component,
            clock=self.clock,
            fields=merged,
            _lock=self._lock,
        )

    def log(self, event: str, *, level: str = "info", **fields: Any) -> None:
        """Emit one line; unknown levels are coerced to ``info``."""
        if level not in _LEVELS:
            level = "info"
        payload: Dict[str, Any] = {
            "ts": format_ts(self.clock()),
            "level": level,
            "component": self.component,
            "event": event,
        }
        merged = dict(self.fields)
        merged.update(fields)
        cid = merged.pop("cid", None)
        if cid:
            payload["cid"] = cid
        for key in sorted(merged):
            if merged[key] is not None:
                payload[key] = merged[key]
        line = json.dumps(payload, separators=(",", ":"), default=str)
        with self._lock:
            try:
                self.stream.write(line + "\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass  # a closed/teed-away destination must never kill a run

    # convenience levels -------------------------------------------------
    def debug(self, event: str, **fields: Any) -> None:
        self.log(event, level="debug", **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log(event, level="info", **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log(event, level="warning", **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log(event, level="error", **fields)


class _NullLogger(StructuredLogger):
    """The disabled state: same API, writes nothing, binds to itself."""

    def __init__(self) -> None:  # no stream needed
        super().__init__(stream=None, component="repro")  # type: ignore[arg-type]

    def bind(self, component: Optional[str] = None, **fields: Any) -> "StructuredLogger":
        return self

    def log(self, event: str, *, level: str = "info", **fields: Any) -> None:
        return None


NULL_LOGGER = _NullLogger()

_state_lock = threading.Lock()
_configured = False
_root: StructuredLogger = NULL_LOGGER


def configure(
    target: Optional[str] = None,
    *,
    clock: Optional[Callable[[], float]] = None,
) -> StructuredLogger:
    """Set the process-wide log destination explicitly.

    ``target`` semantics match ``REPRO_LOG``: ``None``/empty disables,
    ``"stderr"``/``"stdout"`` use the standard streams, anything else
    is a file path opened for append.  Returns the root logger (the
    null logger when disabled).
    """
    global _configured, _root
    with _state_lock:
        _configured = True
        if not target:
            _root = NULL_LOGGER
        elif target == "stderr":
            _root = StructuredLogger(sys.stderr, clock=clock)
        elif target == "stdout":
            _root = StructuredLogger(sys.stdout, clock=clock)
        else:
            try:
                stream = open(target, "a", encoding="utf-8")
            except OSError:
                _root = NULL_LOGGER
            else:
                _root = StructuredLogger(stream, clock=clock)
        return _root


def get_logger(component: str = "repro", **fields: Any) -> StructuredLogger:
    """The process logger bound to ``component`` (+ extra fields).

    Lazily configures from ``REPRO_LOG`` on first use; returns the
    no-op null logger when logging is disabled, so call sites never
    need an ``if`` guard.
    """
    if not _configured:
        configure(os.environ.get(LOG_ENV, ""))
    if _root is NULL_LOGGER:
        return NULL_LOGGER
    return _root.bind(component=component, **fields)


def log_enabled() -> bool:
    """Whether structured logging currently has a destination."""
    if not _configured:
        configure(os.environ.get(LOG_ENV, ""))
    return _root is not NULL_LOGGER
