"""Cross-run telemetry registry: a durable record of every trial.

Sweeps are fire-and-forget without this module — metrics, provenance
stats and timings flow into one JSON export and vanish.  The
:class:`RunRegistry` is an append-only SQLite store that every
experiment, sweep and benchmark can record into, keyed by the same
:meth:`~repro.runner.jobs.RunSpec.digest` that keys the result cache,
so "the same trial, run last week" is one indexed lookup.

Each run row carries the spec digest and parameters, the git revision
and code version that produced it, the full deterministic measurement,
the per-run metrics snapshot, per-AS convergence instants (when spans
were collected), fault/span summaries, hot-path profile data
(``profile=True`` sweeps) and execution metadata (wall time, worker,
cache provenance, attempts).  Sweep rows aggregate the
:class:`~repro.runner.progress.SweepTiming` plus cache hit/miss stats.

Recording is wired through the runner's progress-sink interface:
:class:`RegistrySink` observes ``job_finished``/``sweep_finished``
events, so the serial and parallel execution paths record *identically*
(both emit the same event stream, including cache hits).  Pass
``registry=`` to :class:`~repro.runner.ParallelRunner` or any sweep
function and every trial lands in the store.

On top of the store sit :mod:`repro.obs.trends` (run/sweep diffing and
statistical regression gating) and :mod:`repro.obs.dashboard` (static
HTML).  See ``docs/telemetry.md``.
"""

from __future__ import annotations

import datetime as _datetime
import json
import os
import pathlib
import sqlite3
import subprocess
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..runner.jobs import RunRecord, RunSpec, callable_token
from ..runner.progress import ProgressSink, SweepTiming

__all__ = [
    "REGISTRY_ENV",
    "DEFAULT_REGISTRY_PATH",
    "REGISTRY_SCHEMA",
    "RunRegistry",
    "RegistrySink",
    "RunRow",
    "SweepRow",
    "current_git_rev",
    "aggregate_profiles",
    "resolve_registry",
]

#: environment fallback for ``--registry`` on every CLI command.
REGISTRY_ENV = "REPRO_REGISTRY"
#: where the registry lives when neither flag nor env names a path.
DEFAULT_REGISTRY_PATH = ".repro-registry.sqlite"
#: bump when the table layout changes.  Additive bumps migrate old
#: files in place (see ``_check_schema``); anything newer than this
#: code understands is rejected loudly.
REGISTRY_SCHEMA = 3

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sweeps (
    sweep_id     INTEGER PRIMARY KEY AUTOINCREMENT,
    recorded_at  TEXT NOT NULL,
    scenario     TEXT NOT NULL DEFAULT '',
    n_ases       INTEGER,
    label        TEXT NOT NULL DEFAULT '',
    git_rev      TEXT NOT NULL DEFAULT '',
    code_version TEXT NOT NULL DEFAULT '',
    elapsed      REAL,
    jobs         INTEGER,
    cached       INTEGER,
    failed       INTEGER,
    total_job_wall REAL,
    max_job_wall REAL,
    workers      INTEGER,
    cache_hits   INTEGER,
    cache_misses INTEGER,
    extra        TEXT
);
CREATE TABLE IF NOT EXISTS runs (
    run_id       INTEGER PRIMARY KEY AUTOINCREMENT,
    sweep_id     INTEGER,
    recorded_at  TEXT NOT NULL,
    spec_digest  TEXT NOT NULL,
    scenario     TEXT NOT NULL DEFAULT '',
    label        TEXT NOT NULL DEFAULT '',
    n            INTEGER,
    sdn_count    INTEGER,
    fraction     REAL,
    seed         INTEGER,
    git_rev      TEXT NOT NULL DEFAULT '',
    code_version TEXT NOT NULL DEFAULT '',
    ok           INTEGER NOT NULL,
    error        TEXT,
    wall_time    REAL NOT NULL DEFAULT 0.0,
    worker       TEXT NOT NULL DEFAULT '',
    cached       INTEGER NOT NULL DEFAULT 0,
    attempts     INTEGER NOT NULL DEFAULT 1,
    measurement  TEXT,
    metrics      TEXT,
    instants     TEXT,
    span_count   INTEGER,
    fault_count  INTEGER,
    profile      TEXT,
    resources    TEXT,
    sample_stacks TEXT,
    anatomy      TEXT
);
CREATE INDEX IF NOT EXISTS idx_runs_digest ON runs(spec_digest, run_id);
CREATE INDEX IF NOT EXISTS idx_runs_sweep ON runs(sweep_id);
"""


def current_git_rev(cwd: Union[str, os.PathLike, None] = None) -> str:
    """The short git revision of the working tree, or ``""`` outside one."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def _utc_now() -> str:
    return _datetime.datetime.now(_datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    )


def _loads(text: Optional[str]) -> Any:
    if text is None:
        return None
    try:
        return json.loads(text)
    except ValueError:
        return None


@dataclass(frozen=True)
class RunRow:
    """One recorded trial, with JSON columns parsed back to objects."""

    run_id: int
    sweep_id: Optional[int]
    recorded_at: str
    spec_digest: str
    scenario: str
    label: str
    n: Optional[int]
    sdn_count: Optional[int]
    fraction: Optional[float]
    seed: Optional[int]
    git_rev: str
    code_version: str
    ok: bool
    error: Optional[str]
    wall_time: float
    worker: str
    cached: bool
    attempts: int
    measurement: Optional[Dict[str, Any]]
    metrics: Optional[Dict[str, Any]]
    instants: Optional[Dict[str, float]]
    span_count: Optional[int]
    fault_count: Optional[int]
    profile: Optional[List[Dict[str, Any]]]
    resources: Optional[Dict[str, Any]] = None
    sample_stacks: Optional[Dict[str, int]] = None
    anatomy: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class SweepRow:
    """One recorded sweep (timing aggregate + cache provenance)."""

    sweep_id: int
    recorded_at: str
    scenario: str
    n_ases: Optional[int]
    label: str
    git_rev: str
    code_version: str
    elapsed: Optional[float]
    jobs: Optional[int]
    cached: Optional[int]
    failed: Optional[int]
    total_job_wall: Optional[float]
    max_job_wall: Optional[float]
    workers: Optional[int]
    cache_hits: Optional[int]
    cache_misses: Optional[int]
    extra: Optional[Dict[str, Any]]


def aggregate_profiles(
    profiles: Sequence[Optional[List[Dict[str, Any]]]],
    *,
    top: int = 20,
) -> List[Dict[str, Any]]:
    """Merge per-run profile tables into one top-N-by-cumulative view.

    Each input is the ``RunRecord.profile`` list of one run (``None``
    entries are skipped); rows with the same function key sum their
    call counts and times.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for table in profiles:
        if not table:
            continue
        for row in table:
            func = row.get("func", "?")
            slot = merged.setdefault(
                func,
                {"func": func, "ncalls": 0, "tottime": 0.0, "cumtime": 0.0},
            )
            slot["ncalls"] += int(row.get("ncalls", 0))
            slot["tottime"] += float(row.get("tottime", 0.0))
            slot["cumtime"] += float(row.get("cumtime", 0.0))
    ranked = sorted(merged.values(), key=lambda r: -r["cumtime"])[:top]
    for row in ranked:
        row["tottime"] = round(row["tottime"], 6)
        row["cumtime"] = round(row["cumtime"], 6)
    return ranked


class RunRegistry:
    """Append-only SQLite store of runs and sweeps.

    ``path`` may be ``":memory:"`` for tests.  ``git_rev``,
    ``code_version`` and ``clock`` are injectable so tests (and the
    golden dashboard) stay deterministic; the defaults capture the
    working tree's revision, ``repro.__version__`` and UTC wall time.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike] = DEFAULT_REGISTRY_PATH,
        *,
        git_rev: Optional[str] = None,
        code_version: Optional[str] = None,
        clock: Optional[Callable[[], str]] = None,
    ) -> None:
        self.path = str(path)
        if self.path != ":memory:":
            parent = pathlib.Path(self.path).parent
            if str(parent) not in ("", "."):
                parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA_SQL)
        self._check_schema()
        if git_rev is None:
            git_rev = current_git_rev()
        self.git_rev = git_rev
        if code_version is None:
            from ..runner.cache import current_code_version

            code_version = current_code_version()
        self.code_version = code_version
        self.clock = clock if clock is not None else _utc_now

    # ------------------------------------------------------------------
    def _check_schema(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='schema'"
        ).fetchone()
        if row is None:
            # Two connections can initialise a fresh file concurrently
            # (the service opens one registry per worker thread plus
            # dedup lookups on the loop thread); OR IGNORE makes the
            # losing writer a no-op and the re-read settles the value.
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value)"
                " VALUES ('schema', ?)",
                (str(REGISTRY_SCHEMA),),
            )
            self._conn.commit()
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema'"
            ).fetchone()
        #: columns each historical schema bump added to ``runs`` —
        #: every bump so far is purely additive, so any older file
        #: migrates in place by replaying the missing tail; existing
        #: rows read back with the new fields as None.
        additive = {"1": ("resources", "sample_stacks", "anatomy"),
                    "2": ("anatomy",)}
        if row["value"] in additive:
            for column in additive[row["value"]]:
                try:
                    self._conn.execute(
                        f"ALTER TABLE runs ADD COLUMN {column} TEXT"
                    )
                except sqlite3.OperationalError:
                    pass  # a concurrent opener already added it
            self._conn.execute(
                "UPDATE meta SET value=? WHERE key='schema'",
                (str(REGISTRY_SCHEMA),),
            )
            self._conn.commit()
        elif row["value"] != str(REGISTRY_SCHEMA):
            raise ValueError(
                f"registry {self.path!r} has schema {row['value']}, "
                f"this code expects {REGISTRY_SCHEMA}"
            )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def begin_sweep(
        self,
        *,
        scenario: str = "",
        n_ases: Optional[int] = None,
        label: str = "",
        extra: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Open a sweep row; returns its id for per-run attribution."""
        cursor = self._conn.execute(
            "INSERT INTO sweeps (recorded_at, scenario, n_ases, label, "
            "git_rev, code_version, extra) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                self.clock(), scenario, n_ases, label,
                self.git_rev, self.code_version,
                json.dumps(extra) if extra else None,
            ),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def finish_sweep(self, sweep_id: int, timing: SweepTiming) -> None:
        """Attach the final timing aggregate to an open sweep row."""
        self._conn.execute(
            "UPDATE sweeps SET elapsed=?, jobs=?, cached=?, failed=?, "
            "total_job_wall=?, max_job_wall=?, workers=?, "
            "cache_hits=?, cache_misses=? WHERE sweep_id=?",
            (
                timing.elapsed, timing.jobs, timing.cached, timing.failed,
                timing.total_job_wall, timing.max_job_wall, timing.workers,
                timing.cache_hits, timing.cache_misses, sweep_id,
            ),
        )
        self._conn.commit()

    def record(
        self,
        spec: RunSpec,
        record: RunRecord,
        *,
        sweep_id: Optional[int] = None,
    ) -> int:
        """Append one executed (or cached, or failed) trial.

        Derives the queryable columns from the spec, serializes the
        deterministic measurement/metrics payloads, and summarizes
        spans into per-AS convergence instants (via the provenance DAG)
        rather than storing every span.
        """
        instants: Optional[Dict[str, float]] = None
        span_count: Optional[int] = None
        anatomy: Optional[Dict[str, Any]] = getattr(record, "anatomy", None)
        if record.spans is not None:
            span_count = len(record.spans)
            instants = self._instants_from_spans(record)
            if anatomy is None:
                # Like ``instants``, anatomy is derivable from the span
                # payload alone — every spans-on trial gets its delay
                # attribution recorded, flag or no flag.
                anatomy = self._anatomy_from_spans(record)
        scenario = callable_token(spec.scenario_factory).rsplit(":", 1)[-1]
        measurement = record.measurement_dict() or None
        cursor = self._conn.execute(
            "INSERT INTO runs (sweep_id, recorded_at, spec_digest, scenario,"
            " label, n, sdn_count, fraction, seed, git_rev, code_version,"
            " ok, error, wall_time, worker, cached, attempts, measurement,"
            " metrics, instants, span_count, fault_count, profile,"
            " resources, sample_stacks, anatomy)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
            " ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                sweep_id, self.clock(), record.digest, scenario,
                spec.label or spec.display(), spec.n, spec.sdn_count,
                spec.sdn_count / spec.n if spec.n else None, spec.seed,
                self.git_rev, self.code_version,
                int(record.ok), record.error, record.wall_time,
                record.worker, int(record.cached), record.attempts,
                json.dumps(measurement, sort_keys=True) if measurement else None,
                json.dumps(record.metrics, sort_keys=True)
                if record.metrics is not None else None,
                json.dumps(instants, sort_keys=True)
                if instants is not None else None,
                span_count,
                len(spec.faults) if spec.faults is not None else None,
                json.dumps(record.profile)
                if getattr(record, "profile", None) is not None else None,
                json.dumps(record.resources, sort_keys=True)
                if getattr(record, "resources", None) is not None else None,
                json.dumps(record.sample_stacks, sort_keys=True)
                if getattr(record, "sample_stacks", None) is not None
                else None,
                json.dumps(anatomy, sort_keys=True)
                if anatomy is not None else None,
            ),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    @staticmethod
    def _instants_from_spans(record: RunRecord) -> Optional[Dict[str, float]]:
        """Per-AS convergence instants of the measured event's tree."""
        measurement = record.measurement
        if measurement is None or not record.spans:
            return None
        root_id = measurement.extra.get("event_root_span")
        if root_id is None:
            return None
        from .dag import ProvenanceDAG

        dag = ProvenanceDAG.from_dicts(record.spans)
        if int(root_id) not in dag.by_id:
            return None
        return dag.per_node_instants(int(root_id))

    @staticmethod
    def _anatomy_from_spans(record: RunRecord) -> Optional[Dict[str, Any]]:
        """Critical-path delay attribution of the measured event."""
        measurement = record.measurement
        if measurement is None or not record.spans:
            return None
        from .anatomy import anatomy_payload

        return anatomy_payload(
            record.spans, measurement.extra.get("event_root_span")
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @staticmethod
    def _run_row(row: sqlite3.Row) -> RunRow:
        return RunRow(
            run_id=row["run_id"],
            sweep_id=row["sweep_id"],
            recorded_at=row["recorded_at"],
            spec_digest=row["spec_digest"],
            scenario=row["scenario"],
            label=row["label"],
            n=row["n"],
            sdn_count=row["sdn_count"],
            fraction=row["fraction"],
            seed=row["seed"],
            git_rev=row["git_rev"],
            code_version=row["code_version"],
            ok=bool(row["ok"]),
            error=row["error"],
            wall_time=row["wall_time"],
            worker=row["worker"],
            cached=bool(row["cached"]),
            attempts=row["attempts"],
            measurement=_loads(row["measurement"]),
            metrics=_loads(row["metrics"]),
            instants=_loads(row["instants"]),
            span_count=row["span_count"],
            fault_count=row["fault_count"],
            profile=_loads(row["profile"]),
            resources=_loads(row["resources"]),
            sample_stacks=_loads(row["sample_stacks"]),
            anatomy=_loads(row["anatomy"]),
        )

    def run(self, run_id: int) -> Optional[RunRow]:
        """One run by id, or None."""
        row = self._conn.execute(
            "SELECT * FROM runs WHERE run_id=?", (run_id,)
        ).fetchone()
        return self._run_row(row) if row is not None else None

    def runs(
        self,
        *,
        digest: Optional[str] = None,
        scenario: Optional[str] = None,
        sweep_id: Optional[int] = None,
        ok: Optional[bool] = None,
        limit: Optional[int] = None,
        newest_first: bool = False,
    ) -> List[RunRow]:
        """Filtered run rows, in insertion (run_id) order by default."""
        clauses, params = [], []
        if digest is not None:
            clauses.append("spec_digest=?")
            params.append(digest)
        if scenario is not None:
            clauses.append("scenario=?")
            params.append(scenario)
        if sweep_id is not None:
            clauses.append("sweep_id=?")
            params.append(sweep_id)
        if ok is not None:
            clauses.append("ok=?")
            params.append(int(ok))
        sql = "SELECT * FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += f" ORDER BY run_id {'DESC' if newest_first else 'ASC'}"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        return [
            self._run_row(r) for r in self._conn.execute(sql, params)
        ]

    def sweep(self, sweep_id: int) -> Optional[SweepRow]:
        """One sweep by id, or None."""
        row = self._conn.execute(
            "SELECT * FROM sweeps WHERE sweep_id=?", (sweep_id,)
        ).fetchone()
        return self._sweep_row(row) if row is not None else None

    @staticmethod
    def _sweep_row(row: sqlite3.Row) -> SweepRow:
        return SweepRow(
            sweep_id=row["sweep_id"],
            recorded_at=row["recorded_at"],
            scenario=row["scenario"],
            n_ases=row["n_ases"],
            label=row["label"],
            git_rev=row["git_rev"],
            code_version=row["code_version"],
            elapsed=row["elapsed"],
            jobs=row["jobs"],
            cached=row["cached"],
            failed=row["failed"],
            total_job_wall=row["total_job_wall"],
            max_job_wall=row["max_job_wall"],
            workers=row["workers"],
            cache_hits=row["cache_hits"],
            cache_misses=row["cache_misses"],
            extra=_loads(row["extra"]),
        )

    def sweeps(
        self,
        *,
        scenario: Optional[str] = None,
        limit: Optional[int] = None,
        newest_first: bool = False,
    ) -> List[SweepRow]:
        """Sweep rows, oldest first by default."""
        sql = "SELECT * FROM sweeps"
        params: List[Any] = []
        if scenario is not None:
            sql += " WHERE scenario=?"
            params.append(scenario)
        sql += f" ORDER BY sweep_id {'DESC' if newest_first else 'ASC'}"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        return [self._sweep_row(r) for r in self._conn.execute(sql, params)]

    def digests(self) -> List[str]:
        """Every distinct spec digest, in first-seen order."""
        return [
            r["spec_digest"] for r in self._conn.execute(
                "SELECT spec_digest, MIN(run_id) AS first FROM runs "
                "GROUP BY spec_digest ORDER BY first"
            )
        ]

    def counts(self) -> Dict[str, int]:
        """Totals for the dashboard/CLI overview."""
        runs = self._conn.execute("SELECT COUNT(*) c FROM runs").fetchone()["c"]
        ok = self._conn.execute(
            "SELECT COUNT(*) c FROM runs WHERE ok=1"
        ).fetchone()["c"]
        sweeps = self._conn.execute(
            "SELECT COUNT(*) c FROM sweeps"
        ).fetchone()["c"]
        digests = self._conn.execute(
            "SELECT COUNT(DISTINCT spec_digest) c FROM runs"
        ).fetchone()["c"]
        return {
            "runs": runs, "ok": ok, "failed": runs - ok,
            "sweeps": sweeps, "digests": digests,
        }

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def gc_plan(
        self,
        *,
        keep_last: int = 20,
        drop_failed: bool = False,
    ) -> List[int]:
        """The run_ids :meth:`gc` would delete, without deleting them.

        The list is sorted ascending and duplicate-free, so operators
        can size retention (``repro runs gc --dry-run``) before
        committing to it.
        """
        if keep_last < 0:
            raise ValueError(f"keep_last must be >= 0: {keep_last}")
        doomed = set()
        if drop_failed:
            doomed.update(
                r["run_id"]
                for r in self._conn.execute(
                    "SELECT run_id FROM runs WHERE ok=0"
                ).fetchall()
            )
        for digest in self.digests():
            rows = self._conn.execute(
                "SELECT run_id FROM runs WHERE spec_digest=? "
                "ORDER BY run_id DESC", (digest,),
            ).fetchall()
            survivors = [
                r["run_id"] for r in rows if r["run_id"] not in doomed
            ]
            doomed.update(survivors[keep_last:])
        return sorted(doomed)

    def gc(
        self,
        *,
        keep_last: int = 20,
        drop_failed: bool = False,
        dry_run: bool = False,
    ) -> int:
        """Trim history: keep the newest ``keep_last`` runs per digest.

        ``drop_failed`` additionally removes every failed run.  Sweeps
        whose runs are all gone are removed too.  ``dry_run`` deletes
        nothing and just reports what would go (see :meth:`gc_plan`).
        Returns the number of (to-be-)deleted run rows.
        """
        stale = self.gc_plan(keep_last=keep_last, drop_failed=drop_failed)
        if dry_run:
            return len(stale)
        deleted = 0
        if stale:
            marks = ",".join("?" * len(stale))
            deleted = self._conn.execute(
                f"DELETE FROM runs WHERE run_id IN ({marks})", stale
            ).rowcount
        self._conn.execute(
            "DELETE FROM sweeps WHERE sweep_id NOT IN "
            "(SELECT DISTINCT sweep_id FROM runs WHERE sweep_id IS NOT NULL)"
        )
        self._conn.commit()
        return deleted


class RegistrySink(ProgressSink):
    """Progress sink that records every finished trial into a registry.

    The runner funnels serial and parallel execution (and cache hits)
    through the same ``job_finished`` events, so attaching this sink is
    all it takes for both paths to record identically.  The sweep row
    is opened lazily on the first finished job (that is the first
    moment a spec — and thus the scenario name — is visible) and closed
    by ``sweep_finished`` with the final timing aggregate.
    """

    def __init__(self, registry: RunRegistry, *, label: str = "") -> None:
        self.registry = registry
        self.label = label
        self.sweep_id: Optional[int] = None
        #: run_id of every recorded trial, in completion order.
        self.run_ids: List[int] = []

    def _ensure_sweep(self, spec: RunSpec) -> int:
        if self.sweep_id is None:
            scenario = callable_token(spec.scenario_factory).rsplit(":", 1)[-1]
            self.sweep_id = self.registry.begin_sweep(
                scenario=scenario, n_ases=spec.n, label=self.label,
            )
        return self.sweep_id

    def job_finished(self, index: int, spec: RunSpec, record: RunRecord) -> None:
        sweep_id = self._ensure_sweep(spec)
        self.run_ids.append(
            self.registry.record(spec, record, sweep_id=sweep_id)
        )

    def sweep_finished(self, timing: SweepTiming) -> None:
        if self.sweep_id is not None:
            self.registry.finish_sweep(self.sweep_id, timing)
            self.sweep_id = None


def resolve_registry(
    registry: Union[RunRegistry, str, os.PathLike, None]
) -> Optional[RunRegistry]:
    """Map the user-facing ``registry=`` shorthand onto a registry."""
    if registry is None:
        return None
    if isinstance(registry, RunRegistry):
        return registry
    return RunRegistry(registry)
