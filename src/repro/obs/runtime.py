"""Operational telemetry plane: Prometheus text exposition, stdlib-only.

:mod:`repro.eventsim.metrics` keeps metrics under flattened keys
(``name{k=v,...}`` with backslash escapes); this module turns a
registry :meth:`~repro.eventsim.metrics.MetricsRegistry.snapshot` into
the Prometheus text exposition format (version 0.0.4) the service's
``/metrics`` endpoint speaks, and parses such text back — the same tiny
parser the tests and the CI smoke job use to assert a live scrape is
well-formed.

Rendering is deterministic: families sort by name, samples by label
set, and histogram buckets are converted from the snapshot's
non-cumulative per-bound counts into the cumulative ``le`` series
Prometheus requires (with ``+Inf`` equal to the observation count).
See docs/operations.md for the metric catalog.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.eventsim.metrics import parse_key

__all__ = [
    "CONTENT_TYPE",
    "PromScrape",
    "parse_prometheus",
    "render_prometheus",
    "sanitize_metric_name",
]

#: the content type Prometheus scrapers expect from a text endpoint.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_BAD_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_BAD_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")

#: one exposition line: name{labels} value  (labels optional)
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)='
    r'"(?P<value>(?:\\.|[^"\\])*)"\s*(?:,|$)'
)


def sanitize_metric_name(name: str) -> str:
    """Coerce an internal metric name (dots allowed) to the Prometheus
    identifier charset ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    if _NAME_OK.match(name):
        return name
    out = _BAD_NAME_CHARS.sub("_", name)
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = "_" + out
    return out


def _sanitize_label_name(name: str) -> str:
    if _LABEL_OK.match(name):
        return name
    out = _BAD_LABEL_CHARS.sub("_", name)
    if not out or not re.match(r"[a-zA-Z_]", out[0]):
        out = "_" + out
    return out


def _escape_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_number(value: float) -> str:
    """Deterministic sample formatting: integral values render without a
    trailing ``.0``, non-finite values use the exposition spellings."""
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize_label_name(k)}="{_escape_value(labels[k])}"'
        for k in sorted(labels)
    )
    return "{" + inner + "}"


def _bucket_bounds(buckets: Dict[str, float]) -> List[Tuple[float, float]]:
    """Snapshot bucket dict (``le_<bound>``/``inf`` -> count, only
    non-zero retained) as sorted (bound, count) pairs."""
    pairs: List[Tuple[float, float]] = []
    for label, count in (buckets or {}).items():
        if label == "inf":
            bound = float("inf")
        elif label.startswith("le_"):
            try:
                bound = float(label[3:])
            except ValueError:
                continue
        else:
            continue
        pairs.append((bound, count))
    pairs.sort(key=lambda p: p[0])
    return pairs


def render_prometheus(snapshot: Optional[dict], *, prefix: str = "") -> str:
    """Render a metrics snapshot as Prometheus text exposition.

    ``prefix`` (e.g. ``"repro_"``) is prepended to every sanitized
    family name.  Output is byte-deterministic for a given snapshot:
    one ``# TYPE`` line per family, samples sorted by label set,
    histogram buckets cumulative with ``+Inf == count`` plus the
    ``_sum``/``_count`` series.
    """
    snapshot = snapshot or {}
    # family name -> (type, [(sorted sample line fragments)])
    families: Dict[str, Tuple[str, List[str]]] = {}

    def family(name: str, kind: str) -> List[str]:
        fam = prefix + sanitize_metric_name(name)
        if fam not in families:
            families[fam] = (kind, [])
        return families[fam][1]

    for key, value in (snapshot.get("counters") or {}).items():
        name, labels = parse_key(key)
        family(name, "counter").append(
            f"{prefix + sanitize_metric_name(name)}"
            f"{_label_str(labels)} {_format_number(value)}"
        )
    for key, value in (snapshot.get("gauges") or {}).items():
        name, labels = parse_key(key)
        family(name, "gauge").append(
            f"{prefix + sanitize_metric_name(name)}"
            f"{_label_str(labels)} {_format_number(value)}"
        )
    for key, hist in (snapshot.get("histograms") or {}).items():
        name, labels = parse_key(key)
        fam = prefix + sanitize_metric_name(name)
        lines = family(name, "histogram")
        count = hist.get("count", 0)
        cumulative = 0.0
        for bound, n in _bucket_bounds(hist.get("buckets") or {}):
            if bound == float("inf"):
                continue
            cumulative += n
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_number(bound)
            lines.append(
                f"{fam}_bucket{_label_str(bucket_labels)} "
                f"{_format_number(cumulative)}"
            )
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        lines.append(
            f"{fam}_bucket{_label_str(inf_labels)} {_format_number(count)}"
        )
        lines.append(
            f"{fam}_sum{_label_str(labels)} "
            f"{_format_number(hist.get('sum', 0.0))}"
        )
        lines.append(
            f"{fam}_count{_label_str(labels)} {_format_number(count)}"
        )

    out: List[str] = []
    for fam in sorted(families):
        kind, lines = families[fam]
        out.append(f"# TYPE {fam} {kind}")
        out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


@dataclass
class PromScrape:
    """A parsed exposition page: flat samples plus family types."""

    samples: Dict[str, float] = field(default_factory=dict)
    types: Dict[str, str] = field(default_factory=dict)

    def value(self, name: str, **labels: str) -> float:
        """The sample for ``name`` + exact label set (KeyError if absent)."""
        key = name + _label_str({k: str(v) for k, v in labels.items()})
        return self.samples[key]

    def family(self, name: str) -> Dict[str, float]:
        """Every sample whose metric name is exactly ``name``."""
        return {
            k: v for k, v in self.samples.items()
            if k == name or k.startswith(name + "{")
        }


def _parse_value(text: str) -> float:
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return float("inf")
    if lowered == "-inf":
        return float("-inf")
    if lowered == "nan":
        return float("nan")
    return float(text)


def parse_prometheus(text: str) -> PromScrape:
    """Parse Prometheus text exposition (the subset we render).

    Strict on sample lines — a malformed line raises ``ValueError`` so
    the CI smoke job fails loudly when the endpoint regresses.  Returns
    a :class:`PromScrape`; duplicate sample keys also raise.
    """
    scrape = PromScrape()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                scrape.types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        name = match.group("name")
        labels: Dict[str, str] = {}
        inner = match.group("labels")
        if inner:
            pos = 0
            while pos < len(inner):
                pair = _LABEL_PAIR.match(inner, pos)
                if not pair:
                    raise ValueError(
                        f"line {lineno}: malformed labels: {raw!r}"
                    )
                value = pair.group("value")
                value = (
                    value.replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                labels[pair.group("key")] = value
                pos = pair.end()
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value: {raw!r}"
            ) from None
        key = name + _label_str(labels)
        if key in scrape.samples:
            raise ValueError(f"line {lineno}: duplicate sample: {key}")
        scrape.samples[key] = value
    return scrape
