"""Low-overhead sampling wall-clock profiler for trials.

A :class:`StackSampler` periodically captures the Python stack of the
thread that started it and accumulates flamegraph-compatible collapsed
stacks (``frame;frame;frame count``).  Two capture modes, chosen
automatically:

- **signal mode** (worker processes, CLI runs): ``SIGALRM`` via
  ``signal.setitimer`` — the handler receives the interrupted frame
  directly, so a sample costs one handler invocation with zero
  between-sample overhead.  Only available from the main thread.
- **thread mode** (the service, whose trials run on executor threads):
  a daemon thread wakes at the sampling interval and reads the target
  thread's frame out of ``sys._current_frames()``.

Sampling is opt-in per :class:`~repro.runner.jobs.RunSpec` via
``sample_hz`` (``--sample-hz`` on the CLI) and digest-gated like
``profile`` — default specs keep their legacy digests and pay nothing.
Collapsed stacks ride ``RunRecord.sample_stacks`` through the cache and
registry; ``repro runs show`` and the dashboard's Ops section render
the top frames.  Overhead at the default rate is gated to <= 5% in
``benchmarks/bench_trace_overhead.py``.  See docs/operations.md.
"""

from __future__ import annotations

import signal
import sys
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_HZ",
    "MAX_HZ",
    "StackSampler",
    "collapsed_text",
    "merge_stacks",
    "top_frames",
]

#: sampling rate used when a caller asks for sampling without a rate.
DEFAULT_HZ = 97.0

#: upper bound on the sampling rate — above this the handler itself
#: starts to dominate and the <=5% overhead budget is blown.
MAX_HZ = 997.0

#: frames beyond this depth collapse into a ``...`` prefix (innermost
#: frames are the interesting ones for a flamegraph).
MAX_DEPTH = 64


def _frame_label(frame) -> str:
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{frame.f_code.co_name}"


class StackSampler:
    """Samples the starting thread's stack at ``hz`` until stopped.

    Usable as a context manager; :attr:`counts` maps collapsed stacks
    (outermost first, ``;``-joined) to sample counts and
    :attr:`samples` totals them.  ``start``/``stop`` are idempotent
    enough for the error paths that matter: ``stop`` always restores
    the previous ``SIGALRM`` disposition in signal mode.
    """

    def __init__(self, hz: float = DEFAULT_HZ) -> None:
        if hz <= 0:
            raise ValueError(f"sample rate must be positive: {hz!r}")
        self.hz = min(float(hz), MAX_HZ)
        self.interval = 1.0 / self.hz
        self.counts: Dict[str, int] = {}
        self.samples = 0
        self.mode: Optional[str] = None
        self._old_handler = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[threading.Event] = None
        self._target_ident: Optional[int] = None

    # ------------------------------------------------------------------
    def start(self) -> "StackSampler":
        if self.mode is not None:
            raise RuntimeError("sampler already started")
        use_signal = (
            threading.current_thread() is threading.main_thread()
            and hasattr(signal, "setitimer")
            and hasattr(signal, "SIGALRM")
        )
        if use_signal:
            self.mode = "signal"
            self._old_handler = signal.signal(signal.SIGALRM, self._on_signal)
            signal.setitimer(signal.ITIMER_REAL, self.interval, self.interval)
        else:
            self.mode = "thread"
            self._target_ident = threading.get_ident()
            self._stop_event = threading.Event()
            self._thread = threading.Thread(
                target=self._sample_loop, name="repro-sampler", daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> Dict[str, int]:
        """Stop sampling and return the collapsed-stack counts."""
        if self.mode == "signal":
            signal.setitimer(signal.ITIMER_REAL, 0.0, 0.0)
            if self._old_handler is not None:
                signal.signal(signal.SIGALRM, self._old_handler)
            self._old_handler = None
        elif self.mode == "thread":
            assert self._stop_event is not None and self._thread is not None
            self._stop_event.set()
            self._thread.join(timeout=2.0)
            self._thread = None
            self._stop_event = None
        self.mode = None
        return self.counts

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _on_signal(self, signum, frame) -> None:
        if frame is not None:
            self._record(frame)

    def _sample_loop(self) -> None:
        assert self._stop_event is not None
        while not self._stop_event.wait(self.interval):
            frame = sys._current_frames().get(self._target_ident)
            if frame is not None:
                self._record(frame)

    def _record(self, frame) -> None:
        parts: List[str] = []
        while frame is not None:
            label = _frame_label(frame)
            # the sampler's own machinery never belongs in a profile
            if not label.startswith(__name__ + "."):
                parts.append(label)
            frame = frame.f_back
        parts.reverse()
        if len(parts) > MAX_DEPTH:
            parts = ["..."] + parts[-MAX_DEPTH:]
        stack = ";".join(parts) if parts else "(idle)"
        self.counts[stack] = self.counts.get(stack, 0) + 1
        self.samples += 1


# ----------------------------------------------------------------------
# aggregation helpers (registry rows, dashboard, `runs show`)
# ----------------------------------------------------------------------
def merge_stacks(stack_dicts: Iterable[Optional[Dict[str, int]]]) -> Dict[str, int]:
    """Sum collapsed-stack dicts across trials (``None`` entries skipped)."""
    merged: Dict[str, int] = {}
    for counts in stack_dicts:
        for stack, n in (counts or {}).items():
            merged[stack] = merged.get(stack, 0) + n
    return merged


def top_frames(
    counts: Optional[Dict[str, int]], *, top: int = 15,
) -> List[Tuple[str, int, float]]:
    """Rank leaf frames by self samples: ``(frame, samples, share)``.

    The leaf of each collapsed stack is where the program counter
    actually was, so per-leaf totals are self-time shares — the
    flamegraph's hottest boxes without rendering the flamegraph.
    """
    totals: Dict[str, int] = {}
    grand = 0
    for stack, n in (counts or {}).items():
        leaf = stack.rsplit(";", 1)[-1]
        totals[leaf] = totals.get(leaf, 0) + n
        grand += n
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    return [
        (frame, n, n / grand if grand else 0.0)
        for frame, n in ranked[:top]
    ]


def collapsed_text(counts: Optional[Dict[str, int]]) -> str:
    """Flamegraph collapsed-stack text (``stack count`` per line, sorted
    by descending count then stack) — feed to any flamegraph renderer."""
    ranked = sorted(
        (counts or {}).items(), key=lambda kv: (-kv[1], kv[0]),
    )
    return "\n".join(f"{stack} {n}" for stack, n in ranked)
