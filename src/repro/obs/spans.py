"""Causal provenance spans — message lineage for every routing change.

The instrumentation bus answers *what* happened (counts, records); this
module answers *why*.  A :class:`SpanTracker` attached to a bus
(``bus.obs``) turns every route-affecting record into a :class:`Span`
carrying a ``(cause_id, parent_id)`` pair, where ``cause_id`` names the
root event (an originated announcement or withdrawal, a link failure, a
router crash) whose causal tree the span belongs to.  Components
propagate the *current* causal context explicitly:

- a sender stamps its context onto each in-flight message
  (``message._prov``), and the receiving node restores it on delivery;
- deferred work (MRAI-batched sends, queued update processing, debounced
  controller recomputes) captures the context at enqueue time and
  restores it when the deferred event fires.

The tracker is deliberately passive: it never schedules events, never
touches the simulator RNG, and never publishes bus records, so enabling
it cannot perturb a run — convergence results are bit-identical with
spans on or off.  When no tracker is attached the only cost on the
record hot path is one attribute load and a ``None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..eventsim.bus import ROUTE_AFFECTING

__all__ = [
    "Span",
    "SpanTracker",
    "SPAN_CATEGORIES",
    "activation",
    "last_span_activation",
]

#: Context handle threaded through components: ``(cause_id, span_id)``.
Context = Tuple[int, int]

#: Categories that become spans automatically when published on a bus
#: with a tracker attached.  Exactly the route-affecting set — one span
#: per route-affecting record is the invariant that makes DAG-derived
#: convergence instants match the streaming ConvergenceTracker.
SPAN_CATEGORIES = frozenset(ROUTE_AFFECTING)


def _json_safe(value: Any) -> Any:
    """Canonicalize record data to its JSON shape (tuples become lists)
    so an in-memory snapshot equals its serialize/deserialize roundtrip
    — cache hits and JSONL reloads compare equal to live captures."""
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    return value


@dataclass
class Span:
    """One causally attributed event.

    ``parent_id`` is ``None`` for root causes; ``cause_id`` equals the
    root span's id for every span in that root's tree (a root is its own
    cause).  ``t_start``/``t_end`` coincide for instantaneous events;
    spans covering an interval (an MRAI-gated send measured from the
    instant its prefix went dirty) keep them distinct.
    """

    span_id: int
    parent_id: Optional[int]
    cause_id: int
    category: str
    node: str
    t_start: float
    t_end: float
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (cache payloads, JSONL export)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "cause_id": self.cause_id,
            "category": self.category,
            "node": self.node,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "data": self.data,
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Span":
        return Span(
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            cause_id=payload["cause_id"],
            category=payload["category"],
            node=payload["node"],
            t_start=payload["t_start"],
            t_end=payload["t_end"],
            data=dict(payload.get("data") or {}),
        )


class SpanTracker:
    """Collects spans and carries the current causal context.

    Attach with ``bus.obs = SpanTracker(sim)`` (or
    ``Network.enable_spans()``): the bus then calls :meth:`on_record`
    for every published record, and records in :data:`SPAN_CATEGORIES`
    become spans parented under :attr:`current`.  A record arriving with
    no current context starts a new root cause — originations,
    withdrawals and fault injections are roots by construction because
    they fire from scenario code, outside any message context.

    Span ids are a plain monotonic counter (starting at 1), so a given
    seed yields the same ids on every run.
    """

    def __init__(self, sim, *, categories=SPAN_CATEGORIES) -> None:
        self.sim = sim
        self.spans: List[Span] = []
        self.categories = frozenset(categories)
        #: context of the causal tree being extended right now, or None.
        self.current: Optional[Context] = None
        #: context of the most recently created span (for hooks that
        #: need to activate the span a ``bus.record`` call just made).
        self.last_ctx: Optional[Context] = None
        self._next_id = 1

    # ------------------------------------------------------------------
    # span creation
    # ------------------------------------------------------------------
    def wants(self, category: str) -> bool:
        """Bus interest check: does this category become a span?

        The bus bakes the answer into its compiled per-category routes,
        so non-spanned categories skip payload materialization entirely
        on the lazy publishing path.
        """
        return category in self.categories

    def on_record(self, category: str, node: str, data: Dict[str, Any]) -> None:
        """Bus hook: span every route-affecting record (see bus.record)."""
        if category in self.categories:
            now = self.sim.now
            self._emit(category, node, now, now, dict(data))

    def emit(
        self,
        category: str,
        node: str,
        *,
        t_start: Optional[float] = None,
        **data: Any,
    ) -> Context:
        """Record an explicit span under the current context.

        Used for events that are causes but not bus records (link
        up/down, router crash/restart) and for interval spans whose
        ``t_start`` predates the emission instant.
        """
        now = self.sim.now
        start = now if t_start is None else t_start
        return self._emit(category, node, start, now, data)

    def emit_root(self, category: str, node: str, **data: Any) -> Context:
        """Record a span that starts a new causal tree unconditionally."""
        prev, self.current = self.current, None
        try:
            return self._emit(category, node, self.sim.now, self.sim.now, data)
        finally:
            self.current = prev

    def _emit(
        self,
        category: str,
        node: str,
        t_start: float,
        t_end: float,
        data: Dict[str, Any],
    ) -> Context:
        span_id = self._next_id
        self._next_id = span_id + 1
        if self.current is None:
            cause_id, parent_id = span_id, None
        else:
            cause_id, parent_id = self.current[0], self.current[1]
        self.spans.append(
            Span(span_id, parent_id, cause_id, category, node,
                 t_start, t_end, _json_safe(data))
        )
        self.last_ctx = (cause_id, span_id)
        return self.last_ctx

    def annotate_last(
        self, *, t_start: Optional[float] = None, **extra: Any
    ) -> None:
        """Attach extra data to the most recently created span.

        ``t_start`` stretches the span's start earlier (never later) —
        used for sends that waited in an MRAI gate.
        """
        if not self.spans:
            return
        span = self.spans[-1]
        if t_start is not None and t_start < span.t_start:
            span.t_start = t_start
        span.data.update(_json_safe(extra))

    # ------------------------------------------------------------------
    # context management
    # ------------------------------------------------------------------
    def swap(self, ctx: Optional[Context]) -> Optional[Context]:
        """Make ``ctx`` current; returns the previous context to restore."""
        prev = self.current
        self.current = ctx
        return prev

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def snapshot(self) -> List[Dict[str, Any]]:
        """All spans as JSON-ready dicts (RunRecord / cache payload)."""
        return [span.to_dict() for span in self.spans]

    def clear(self) -> None:
        """Drop collected spans; ids keep counting (never reused)."""
        self.spans.clear()
        self.last_ctx = None

    def __repr__(self) -> str:
        return (
            f"<SpanTracker spans={len(self.spans)} "
            f"current={self.current} next_id={self._next_id}>"
        )


class _NullActivation:
    """No-op context manager for the tracker-not-attached path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_ACTIVATION = _NullActivation()


class _Activation:
    __slots__ = ("obs", "ctx", "prev")

    def __init__(self, obs: SpanTracker, ctx: Optional[Context]) -> None:
        self.obs = obs
        self.ctx = ctx

    def __enter__(self):
        self.prev = self.obs.swap(self.ctx)
        return self.ctx

    def __exit__(self, *exc):
        self.obs.swap(self.prev)
        return False


def activation(obs: Optional[SpanTracker], ctx: Optional[Context]):
    """``with activation(bus.obs, ctx):`` — make ``ctx`` the current
    causal context for the block; a no-op when no tracker is attached."""
    return _NULL_ACTIVATION if obs is None else _Activation(obs, ctx)


def last_span_activation(obs: Optional[SpanTracker]):
    """Activate the span the preceding ``bus.record`` call just created.

    Only valid immediately after publishing a record in a spanned
    category (the route-affecting set); no-op when no tracker attached.
    """
    return _NULL_ACTIVATION if obs is None else _Activation(obs, obs.last_ctx)
