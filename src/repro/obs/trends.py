"""Run diffing and statistical regression detection over the registry.

Two families of checks, both stdlib-only:

- **Diffing** (:func:`diff_runs`, :func:`diff_sweeps`): compare two
  recorded runs — or every digest-matched run pair of two sweeps —
  separating *deterministic* fields (measurement values, update counts,
  per-AS convergence instants: the simulator is virtual-time
  deterministic, so these must match exactly between runs of the same
  spec digest) from *timing* fields (wall-clock readings, which only
  need to agree within a tolerance band).

- **Trend gating** (:func:`detect_regressions`): for every spec digest
  with enough history, compare the newest run's wall time against a
  robust median/MAD envelope of the preceding runs, and flag both
  wall-time inflation and any deterministic drift.  This subsumes the
  token-level report gate that used to live in
  ``benchmarks/compare_baselines.py``; that script is now a thin
  wrapper over :func:`compare_report_dirs` here.
"""

from __future__ import annotations

import pathlib
import re
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .registry import RunRegistry, RunRow

__all__ = [
    "DETERMINISTIC_MEASUREMENT_FIELDS",
    "RESOURCE_TIMING_FIELDS",
    "FieldDiff",
    "RunDiff",
    "SweepDiff",
    "Regression",
    "diff_runs",
    "diff_sweeps",
    "detect_regressions",
    "parse_number_token",
    "compare_report_texts",
    "compare_report_dirs",
]

#: per-run resource readings (schema-2 registries) that vary with the
#: machine — compared like wall time, within a tolerance band.
RESOURCE_TIMING_FIELDS = ("cpu_user_s", "cpu_sys_s", "max_rss_kb")

#: measurement fields that are pure virtual-time results — bit-equal
#: across reruns of the same spec digest, on any machine.
DETERMINISTIC_MEASUREMENT_FIELDS = (
    "t_event",
    "t_converged",
    "t_settled",
    "t_state_converged",
    "updates_tx",
    "updates_rx",
    "decision_changes",
    "fib_changes",
    "recomputations",
)


@dataclass(frozen=True)
class FieldDiff:
    """One compared field of a run pair."""

    name: str
    a: object
    b: object
    #: ``deterministic`` must match exactly; ``timing`` gets a band.
    kind: str
    ok: bool
    rel_error: float = 0.0


@dataclass
class RunDiff:
    """Outcome of comparing two recorded runs."""

    run_a: int
    run_b: int
    digest_a: str
    digest_b: str
    fields: List[FieldDiff] = field(default_factory=list)

    @property
    def same_digest(self) -> bool:
        return self.digest_a == self.digest_b

    @property
    def deterministic_mismatches(self) -> List[FieldDiff]:
        return [f for f in self.fields if f.kind == "deterministic" and not f.ok]

    @property
    def timing_mismatches(self) -> List[FieldDiff]:
        return [f for f in self.fields if f.kind == "timing" and not f.ok]

    @property
    def ok(self) -> bool:
        """True when every deterministic field matched exactly.

        Timing drift never fails a diff of same-digest runs on its own
        — it is reported, but wall clocks legitimately vary.
        """
        return self.same_digest and not self.deterministic_mismatches


@dataclass
class SweepDiff:
    """Digest-matched comparison of two recorded sweeps."""

    sweep_a: int
    sweep_b: int
    pairs: List[RunDiff] = field(default_factory=list)
    only_in_a: List[str] = field(default_factory=list)
    only_in_b: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.only_in_a and not self.only_in_b
            and all(p.ok for p in self.pairs)
        )


def _deterministic_values(run: RunRow) -> Dict[str, object]:
    out: Dict[str, object] = {}
    measurement = run.measurement or {}
    for name in DETERMINISTIC_MEASUREMENT_FIELDS:
        if name in measurement:
            out[f"measurement.{name}"] = measurement[name]
    if run.instants is not None:
        for node in sorted(run.instants):
            out[f"instant.{node}"] = run.instants[node]
    if run.span_count is not None:
        out["span_count"] = run.span_count
    # deterministic simulator counters from the metrics snapshot
    metrics = run.metrics or {}
    for counter_key in ("counters",):
        table = metrics.get(counter_key)
        if isinstance(table, dict):
            for name in sorted(table):
                value = table[name]
                if isinstance(value, (int, float)):
                    out[f"metrics.{name}"] = value
    return out


def _anatomy_values(anatomy: Dict[str, object]) -> Dict[str, object]:
    """Flatten an anatomy payload into comparable deterministic keys.

    The critical-path waterfall (the headline decomposition of
    ``t_converged - t_event``) plus the identity of the critical AS and
    its causal depth — enough for ``runs diff`` to pinpoint *which*
    delay category a regressed run gained.
    """
    out: Dict[str, object] = {}
    categories = anatomy.get("categories")
    if isinstance(categories, dict):
        for name in sorted(categories):
            out[f"anatomy.{name}"] = categories[name]
    for key in ("critical_node", "critical_depth"):
        if key in anatomy:
            out[f"anatomy.{key}"] = anatomy[key]
    return out


def diff_runs(
    run_a: RunRow,
    run_b: RunRow,
    *,
    timing_tolerance: float = 0.5,
) -> RunDiff:
    """Field-by-field comparison of two recorded runs.

    Deterministic fields must be byte-equal (their JSON round-trips
    through the registry preserve exact values); ``wall_time`` passes
    within ``timing_tolerance`` relative error.
    """
    diff = RunDiff(
        run_a=run_a.run_id, run_b=run_b.run_id,
        digest_a=run_a.spec_digest, digest_b=run_b.spec_digest,
    )
    values_a = _deterministic_values(run_a)
    values_b = _deterministic_values(run_b)
    for name in sorted(set(values_a) | set(values_b)):
        a, b = values_a.get(name), values_b.get(name)
        diff.fields.append(
            FieldDiff(name=name, a=a, b=b, kind="deterministic", ok=a == b)
        )
    # convergence anatomy (schema-3 registries) is derived from
    # simulated timestamps, so it is deterministic — but the column is
    # absent on pre-schema-3 rows and anatomy can legitimately be
    # missing on one side of a digest's history (the flag is
    # digest-neutral), so it is compared only when both rows carry it.
    anatomy_a, anatomy_b = run_a.anatomy, run_b.anatomy
    if anatomy_a is not None and anatomy_b is not None:
        keys_a = _anatomy_values(anatomy_a)
        keys_b = _anatomy_values(anatomy_b)
        for name in sorted(set(keys_a) | set(keys_b)):
            a, b = keys_a.get(name), keys_b.get(name)
            diff.fields.append(
                FieldDiff(
                    name=name, a=a, b=b, kind="deterministic", ok=a == b
                )
            )
    elif anatomy_a is not None or anatomy_b is not None:
        diff.fields.append(
            FieldDiff(
                name="anatomy", a=anatomy_a is not None,
                b=anatomy_b is not None, kind="deterministic", ok=True,
            )
        )

    def timing_field(name: str, a, b) -> None:
        try:
            a_val, b_val = float(a), float(b)
        except (TypeError, ValueError):
            diff.fields.append(
                FieldDiff(name=name, a=a, b=b, kind="timing", ok=a == b)
            )
            return
        scale = max(abs(a_val), abs(b_val))
        rel = abs(a_val - b_val) / scale if scale else 0.0
        diff.fields.append(
            FieldDiff(
                name=name, a=a, b=b,
                kind="timing", ok=rel <= timing_tolerance, rel_error=rel,
            )
        )

    # machine-dependent resource readings (absent on pre-schema-2 rows
    # and telemetry-off runs) are compared only when both sides carry
    # them — a one-sided reading is reported but never a mismatch.
    resources_a = run_a.resources or {}
    resources_b = run_b.resources or {}
    for name in RESOURCE_TIMING_FIELDS:
        a, b = resources_a.get(name), resources_b.get(name)
        if a is None and b is None:
            continue
        if a is None or b is None:
            diff.fields.append(
                FieldDiff(
                    name=f"resources.{name}", a=a, b=b, kind="timing", ok=True
                )
            )
            continue
        timing_field(f"resources.{name}", a, b)
    timing_field("wall_time", run_a.wall_time, run_b.wall_time)
    return diff


def diff_sweeps(
    registry: RunRegistry,
    sweep_a: int,
    sweep_b: int,
    *,
    timing_tolerance: float = 0.5,
) -> SweepDiff:
    """Pair the runs of two sweeps by spec digest and diff each pair.

    Within a sweep a digest is unique (the grid never repeats a spec),
    so digest-matching recovers the positional pairing regardless of
    execution order.
    """
    runs_a = {r.spec_digest: r for r in registry.runs(sweep_id=sweep_a)}
    runs_b = {r.spec_digest: r for r in registry.runs(sweep_id=sweep_b)}
    out = SweepDiff(sweep_a=sweep_a, sweep_b=sweep_b)
    out.only_in_a = sorted(set(runs_a) - set(runs_b))
    out.only_in_b = sorted(set(runs_b) - set(runs_a))
    for digest in sorted(set(runs_a) & set(runs_b)):
        out.pairs.append(
            diff_runs(
                runs_a[digest], runs_b[digest],
                timing_tolerance=timing_tolerance,
            )
        )
    return out


# ----------------------------------------------------------------------
# trend gating
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One flagged spec digest."""

    spec_digest: str
    label: str
    kind: str  # "wall_time" | "max_rss" | "deterministic"
    latest_run: int
    latest_value: float
    baseline_median: float
    threshold: float
    detail: str = ""

    def describe(self) -> str:
        if self.kind == "wall_time":
            return (
                f"{self.label or self.spec_digest[:12]}: wall time "
                f"{self.latest_value:.3f}s exceeds gate {self.threshold:.3f}s "
                f"(baseline median {self.baseline_median:.3f}s over history)"
            )
        if self.kind == "max_rss":
            return (
                f"{self.label or self.spec_digest[:12]}: peak RSS "
                f"{self.latest_value:.0f} KB exceeds gate "
                f"{self.threshold:.0f} KB "
                f"(baseline median {self.baseline_median:.0f} KB over history)"
            )
        return (
            f"{self.label or self.spec_digest[:12]}: deterministic drift "
            f"in run {self.latest_run}: {self.detail}"
        )


def detect_regressions(
    registry: RunRegistry,
    *,
    last: int = 10,
    min_history: int = 3,
    mad_sigma: float = 4.0,
    min_rel: float = 0.25,
    min_abs: float = 0.005,
) -> List[Regression]:
    """Gate the newest run of every digest against its own history.

    For each spec digest with at least ``min_history`` earlier
    successful runs (within the last ``last + 1``), the newest run is
    flagged when

    - its wall time exceeds ``median + max(mad_sigma * 1.4826 * MAD,
      min_rel * median, min_abs)`` of the preceding runs — a robust
      envelope that ignores a single historical outlier but catches
      sustained inflation; or
    - any deterministic field differs from the immediately preceding
      run of the same digest (virtual-time results can never
      legitimately drift).
    """
    out: List[Regression] = []
    for digest in registry.digests():
        history = registry.runs(
            digest=digest, ok=True, limit=last + 1, newest_first=True
        )
        if len(history) < 2:
            continue
        latest, previous = history[0], history[1:]

        drift = diff_runs(previous[0], latest).deterministic_mismatches
        if drift:
            names = ", ".join(f.name for f in drift[:5])
            out.append(
                Regression(
                    spec_digest=digest,
                    label=latest.label,
                    kind="deterministic",
                    latest_run=latest.run_id,
                    latest_value=float(len(drift)),
                    baseline_median=0.0,
                    threshold=0.0,
                    detail=f"{len(drift)} field(s) drifted: {names}",
                )
            )

        if latest.cached:
            continue

        def gate(kind: str, latest_value, baseline, floor: float) -> None:
            if latest_value is None or len(baseline) < min_history:
                return
            median = statistics.median(baseline)
            mad = statistics.median(abs(v - median) for v in baseline)
            threshold = median + max(
                mad_sigma * 1.4826 * mad, min_rel * median, floor
            )
            if latest_value > threshold:
                out.append(
                    Regression(
                        spec_digest=digest,
                        label=latest.label,
                        kind=kind,
                        latest_run=latest.run_id,
                        latest_value=float(latest_value),
                        baseline_median=median,
                        threshold=threshold,
                        detail=f"history of {len(baseline)} run(s)",
                    )
                )

        gate(
            "wall_time",
            latest.wall_time,
            [r.wall_time for r in previous if not r.cached],
            min_abs,
        )
        # peak-RSS inflation (resource accounting, schema-2 registries).
        # The absolute floor is wider than wall time's: RSS is reported
        # in KB and legitimately jitters by allocator page granularity.
        gate(
            "max_rss",
            (latest.resources or {}).get("max_rss_kb"),
            [
                r.resources["max_rss_kb"]
                for r in previous
                if not r.cached
                and r.resources is not None
                and r.resources.get("max_rss_kb") is not None
            ],
            1024.0,
        )
    return out


# ----------------------------------------------------------------------
# report-text tolerance gate (the old benchmarks/compare_baselines.py)
# ----------------------------------------------------------------------
#: number with optional comma grouping, decimal part, and % suffix.
_NUMBER = re.compile(
    r"^[+-]?\d{1,3}(?:,\d{3})*(?:\.\d+)?%?$|^[+-]?\d+(?:\.\d+)?%?$"
)
#: punctuation that clings to numeric tokens in prose ("10%;", "(2.5s)").
_STRIP = "()[]{};:,"


def parse_number_token(token: str) -> Optional[Tuple[float, bool]]:
    """Return ``(value, is_plain_int)`` or None when not numeric.

    Handles comma grouping, ``%`` suffixes, and units glued to readings
    ("2.5s", "1.3x").  Plain integers are deterministic counts; every
    other number is treated as a timing-derived reading.
    """
    core = token.strip(_STRIP)
    for suffix in ("s", "x"):
        trimmed = core[: -len(suffix)]
        if core.endswith(suffix) and trimmed and _NUMBER.match(trimmed):
            core = trimmed
            break
    if not _NUMBER.match(core):
        return None
    percent = core.endswith("%")
    if percent:
        core = core[:-1]
    grouped = "," in core
    value = float(core.replace(",", ""))
    plain_int = "." not in core and not grouped and not percent
    return value, plain_int


def compare_report_texts(
    baseline: str, candidate: str, tolerance: float
) -> List[str]:
    """Token-level tolerance gate between two benchmark reports.

    Non-numeric tokens and plain integers must match exactly; every
    other number must agree within ``tolerance`` relative error.
    Returns human-readable mismatch descriptions (empty == pass).
    """
    problems: List[str] = []
    base_tokens, cand_tokens = baseline.split(), candidate.split()
    if len(base_tokens) != len(cand_tokens):
        problems.append(
            f"structure changed: {len(base_tokens)} tokens in baseline "
            f"vs {len(cand_tokens)} in candidate"
        )
        return problems
    for base, cand in zip(base_tokens, cand_tokens):
        base_num = parse_number_token(base)
        cand_num = parse_number_token(cand)
        if base_num is None or cand_num is None:
            if base != cand:
                problems.append(f"token mismatch: {base!r} vs {cand!r}")
            continue
        (b_val, b_int), (c_val, _) = base_num, cand_num
        if b_int:
            if b_val != c_val:
                problems.append(
                    f"deterministic count drifted: {base!r} vs {cand!r}"
                )
            continue
        scale = max(abs(b_val), abs(c_val))
        if scale and abs(b_val - c_val) / scale > tolerance:
            problems.append(
                f"outside {tolerance:.0%} tolerance: {base!r} vs {cand!r}"
            )
    return problems


def compare_report_dirs(
    baseline_dir,
    candidate_dir,
    tolerance: float,
    require: Sequence[str] = (),
) -> Tuple[List[str], Dict[str, List[str]]]:
    """Compare every ``*.txt`` report in two directories.

    Returns ``(names, failures)``: the sorted baseline report names and
    a mapping of failing names to their problem lists (including
    ``require``-ed reports missing from the baseline).
    """
    baseline_dir = pathlib.Path(baseline_dir)
    candidate_dir = pathlib.Path(candidate_dir)
    names = sorted(p.name for p in baseline_dir.glob("*.txt"))
    failures: Dict[str, List[str]] = {}
    for name in require:
        if name not in names:
            failures[name] = [f"required report missing from baseline: {name}"]
    for name in names:
        candidate = candidate_dir / name
        if not candidate.exists():
            failures[name] = ["missing from candidate directory"]
            continue
        problems = compare_report_texts(
            (baseline_dir / name).read_text(),
            candidate.read_text(),
            tolerance,
        )
        if problems:
            failures[name] = problems
    return names, failures
