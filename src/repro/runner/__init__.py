"""Parallel sweep orchestration: job matrices, worker pool, cache.

The paper's sweeps are embarrassingly parallel grids of independent
``(topology, sdn_fraction, seed)`` trials.  This package turns them
into declarative :class:`RunSpec` matrices executed by a
:class:`ParallelRunner` — process-parallel, fault-tolerant (bounded
retry of crashed/hung workers), content-addressed result caching, and
pluggable progress reporting — while keeping results bit-identical to
serial execution.  See ``docs/runner.md``.
"""

from .cache import CACHE_SCHEMA, CacheStats, ResultCache, current_code_version
from .jobs import (
    RunRecord,
    RunSpec,
    SpecError,
    callable_token,
    execute_spec,
    profile_table,
    run_trial,
    run_trial_full,
)
from .pool import ParallelRunner, default_workers
from .progress import (
    AsyncQueueProgress,
    CallbackProgress,
    JsonProgress,
    LogProgress,
    ProgressSink,
    SweepTiming,
    TeeProgress,
    record_summary,
    resolve_progress,
)

__all__ = [
    "CACHE_SCHEMA",
    "CacheStats",
    "ResultCache",
    "current_code_version",
    "RunRecord",
    "RunSpec",
    "SpecError",
    "callable_token",
    "execute_spec",
    "profile_table",
    "run_trial",
    "run_trial_full",
    "ParallelRunner",
    "default_workers",
    "AsyncQueueProgress",
    "CallbackProgress",
    "JsonProgress",
    "LogProgress",
    "ProgressSink",
    "SweepTiming",
    "TeeProgress",
    "record_summary",
    "resolve_progress",
]
