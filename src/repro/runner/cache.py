"""Content-addressed on-disk result cache for sweep trials.

Layout: one JSON file per trial under the cache directory, named
``<spec-digest>.json``.  Each file records the code version that wrote
it; a version mismatch (or any unreadable/foreign file) is treated as a
miss, so bumping ``repro.__version__`` invalidates the whole cache
without deleting anything.  Writes are atomic (temp file + rename) so a
killed run never leaves a half-written entry.

Only *successful* records are stored — failures and timeouts always
re-execute on the next run.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Optional, Union

from .jobs import RunRecord, RunSpec

__all__ = ["ResultCache", "CacheStats", "current_code_version", "CACHE_SCHEMA"]

#: bump when the cache file format itself changes.
CACHE_SCHEMA = 1


def current_code_version() -> str:
    """The running code's version tag (part of every cache entry)."""
    from .. import __version__

    return __version__


@dataclass(frozen=True)
class CacheStats:
    """Size and traffic counters of a :class:`ResultCache`.

    ``entries``/``total_bytes`` describe the directory right now;
    ``hits``/``misses`` count this *instance's* lookups (a hit is a
    usable entry, a miss is anything else — absent, corrupt, foreign,
    or written by a different code version).
    """

    entries: int
    total_bytes: int
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ResultCache:
    """Digest-keyed store of completed trial measurements."""

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        *,
        code_version: Optional[str] = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.code_version = (
            code_version if code_version is not None else current_code_version()
        )
        #: lifetime lookup counters of this instance (see :meth:`stats`).
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, digest: str) -> pathlib.Path:
        return self.directory / f"{digest}.json"

    def get(self, spec: RunSpec) -> Optional[RunRecord]:
        """The cached record for a spec, or None on any kind of miss."""
        record = self._load(spec)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def _load(self, spec: RunSpec) -> Optional[RunRecord]:
        path = self._path(spec.digest())
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            return None
        if payload.get("code_version") != self.code_version:
            return None
        measurement_data = payload.get("measurement")
        if not isinstance(measurement_data, dict):
            return None
        meta = payload.get("record", {})
        metrics = payload.get("metrics")
        spans = payload.get("spans")
        profile = payload.get("profile")
        resources = payload.get("resources")
        sample_stacks = payload.get("sample_stacks")
        anatomy = payload.get("anatomy")
        return RunRecord(
            digest=spec.digest(),
            ok=True,
            measurement=RunRecord.measurement_from_dict(measurement_data),
            metrics=metrics if isinstance(metrics, dict) else None,
            spans=spans if isinstance(spans, list) else None,
            profile=profile if isinstance(profile, list) else None,
            wall_time=float(meta.get("wall_time", 0.0)),
            worker=str(meta.get("worker", "")),
            attempts=int(meta.get("attempts", 1)),
            cached=True,
            resources=resources if isinstance(resources, dict) else None,
            sample_stacks=(
                sample_stacks if isinstance(sample_stacks, dict) else None
            ),
            anatomy=anatomy if isinstance(anatomy, dict) else None,
        )

    def put(self, spec: RunSpec, record: RunRecord) -> None:
        """Store a successful record (failed records are never cached)."""
        if not record.ok or record.measurement is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "code_version": self.code_version,
            "digest": record.digest,
            "spec": spec.describe(),
            "record": {
                "wall_time": record.wall_time,
                "worker": record.worker,
                "attempts": record.attempts,
            },
            "measurement": record.measurement_dict(),
        }
        if record.metrics is not None:
            payload["metrics"] = record.metrics
        if record.spans is not None:
            payload["spans"] = record.spans
        if record.profile is not None:
            payload["profile"] = record.profile
        if record.resources is not None:
            payload["resources"] = record.resources
        if record.sample_stacks is not None:
            payload["sample_stacks"] = record.sample_stacks
        if record.anatomy is not None:
            payload["anatomy"] = record.anatomy
        # Atomic publish: a reader either sees the old entry or the new
        # complete one, never a torn write.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1)
            os.replace(tmp_name, self._path(record.digest))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def _entries(self):
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.iterdir()):
            if path.suffix == ".json" and not path.name.startswith("."):
                yield path

    def stats(self) -> CacheStats:
        """Directory totals plus this instance's hit/miss counters."""
        entries = 0
        total_bytes = 0
        for path in self._entries():
            entries += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        return CacheStats(
            entries=entries, total_bytes=total_bytes,
            hits=self.hits, misses=self.misses,
        )

    def prune(self) -> int:
        """Remove entries this code version can never serve again.

        Deletes cache files that are corrupt (unreadable / not JSON /
        wrong shape), carry a different :data:`CACHE_SCHEMA`, or were
        written by a different code version.  Files that are not cache
        entries at all (foreign extensions, dotfiles) are left alone.
        Returns the number of files removed.
        """
        removed = 0
        for path in self._entries():
            stale = False
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                stale = True
            else:
                stale = (
                    not isinstance(payload, dict)
                    or payload.get("schema") != CACHE_SCHEMA
                    or payload.get("code_version") != self.code_version
                    or not isinstance(payload.get("measurement"), dict)
                )
            if stale:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.iterdir():
            if path.suffix == ".json" and not path.name.startswith("."):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return (
            f"<ResultCache {str(self.directory)!r} "
            f"entries={len(self)} version={self.code_version!r}>"
        )
