"""Content-addressed on-disk result cache for sweep trials.

Layout: one JSON file per trial under the cache directory, named
``<spec-digest>.json``.  Each file records the code version that wrote
it; a version mismatch (or any unreadable/foreign file) is treated as a
miss, so bumping ``repro.__version__`` invalidates the whole cache
without deleting anything.  Writes are atomic (temp file + rename) so a
killed run never leaves a half-written entry.

Only *successful* records are stored — failures and timeouts always
re-execute on the next run.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Optional, Union

from .jobs import RunRecord, RunSpec

__all__ = ["ResultCache", "current_code_version", "CACHE_SCHEMA"]

#: bump when the cache file format itself changes.
CACHE_SCHEMA = 1


def current_code_version() -> str:
    """The running code's version tag (part of every cache entry)."""
    from .. import __version__

    return __version__


class ResultCache:
    """Digest-keyed store of completed trial measurements."""

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        *,
        code_version: Optional[str] = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.code_version = (
            code_version if code_version is not None else current_code_version()
        )

    # ------------------------------------------------------------------
    def _path(self, digest: str) -> pathlib.Path:
        return self.directory / f"{digest}.json"

    def get(self, spec: RunSpec) -> Optional[RunRecord]:
        """The cached record for a spec, or None on any kind of miss."""
        path = self._path(spec.digest())
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            return None
        if payload.get("code_version") != self.code_version:
            return None
        measurement_data = payload.get("measurement")
        if not isinstance(measurement_data, dict):
            return None
        meta = payload.get("record", {})
        metrics = payload.get("metrics")
        spans = payload.get("spans")
        return RunRecord(
            digest=spec.digest(),
            ok=True,
            measurement=RunRecord.measurement_from_dict(measurement_data),
            metrics=metrics if isinstance(metrics, dict) else None,
            spans=spans if isinstance(spans, list) else None,
            wall_time=float(meta.get("wall_time", 0.0)),
            worker=str(meta.get("worker", "")),
            attempts=int(meta.get("attempts", 1)),
            cached=True,
        )

    def put(self, spec: RunSpec, record: RunRecord) -> None:
        """Store a successful record (failed records are never cached)."""
        if not record.ok or record.measurement is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "code_version": self.code_version,
            "digest": record.digest,
            "spec": spec.describe(),
            "record": {
                "wall_time": record.wall_time,
                "worker": record.worker,
                "attempts": record.attempts,
            },
            "measurement": record.measurement_dict(),
        }
        if record.metrics is not None:
            payload["metrics"] = record.metrics
        if record.spans is not None:
            payload["spans"] = record.spans
        # Atomic publish: a reader either sees the old entry or the new
        # complete one, never a torn write.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1)
            os.replace(tmp_name, self._path(record.digest))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(
            1 for p in self.directory.iterdir()
            if p.suffix == ".json" and not p.name.startswith(".")
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.iterdir():
            if path.suffix == ".json" and not path.name.startswith("."):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return (
            f"<ResultCache {str(self.directory)!r} "
            f"entries={len(self)} version={self.code_version!r}>"
        )
