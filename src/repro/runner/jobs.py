"""Declarative job descriptions for experiment sweeps.

A sweep is an embarrassingly parallel grid of independent trials; a
:class:`RunSpec` is the picklable, hashable description of exactly one
of them — scenario type, topology recipe, SDN membership, timer config
and seed.  Because the spec is *data* (no live objects, no closures) it
can cross process boundaries to a worker pool and it has a stable
content digest that keys the on-disk result cache.

The worker entry point is :func:`execute_spec`: it rebuilds the trial
from the spec, runs it, and returns a :class:`RunRecord` carrying the
measurement plus wall-clock/worker metadata.  Soft failures (a scenario
raising) are caught and returned as failed records so the pool can
apply its retry policy uniformly.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import sys
import time
import traceback
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, Optional, Tuple

from ..framework.convergence import ConvergenceMeasurement

__all__ = [
    "SpecError",
    "ResourceAccounting",
    "RunSpec",
    "RunRecord",
    "callable_token",
    "execute_spec",
    "profile_table",
    "run_trial",
    "run_trial_instrumented",
    "run_trial_full",
]


class SpecError(ValueError):
    """A :class:`RunSpec` that cannot be executed or digested."""


def callable_token(fn: Callable) -> str:
    """A stable, process-independent identity for a factory callable.

    Only *importable* callables qualify — module-level functions and
    classes (referenced as ``module:qualname``) and ``functools.partial``
    wrappers over them.  Lambdas and local closures are rejected: they
    neither pickle across processes nor admit a stable digest.
    """
    if isinstance(fn, functools.partial):
        inner = callable_token(fn.func)
        kwargs = sorted(fn.keywords.items()) if fn.keywords else []
        return f"partial({inner}, args={fn.args!r}, kwargs={kwargs!r})"
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        raise SpecError(f"factory {fn!r} has no importable identity")
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise SpecError(
            f"factory {module}:{qualname} is a lambda/local function; "
            "sweep factories must be module-level callables so they can "
            "be pickled to workers and digested for the result cache"
        )
    return f"{module}:{qualname}"


@dataclass(frozen=True)
class RunSpec:
    """One trial of a sweep, as pure data.

    ``sdn_count`` picks members via the standard highest-ASNs-first
    rule (:func:`~repro.experiments.common.sdn_set_for`); an explicit
    ``sdn_members`` tuple overrides it for placement-style experiments.
    ``faults`` is a fault schedule in canonical tuple form
    (:meth:`~repro.faults.FaultSchedule.canonical`) — already sorted and
    order-free, so the digest is stable no matter how the schedule was
    expressed.  ``label`` is cosmetic (progress lines) and excluded
    from the digest.
    """

    scenario_factory: Callable
    topology_factory: Callable
    n: int
    sdn_count: int
    seed: int
    mrai: float = 30.0
    recompute_delay: float = 0.5
    policy_mode: str = "flat"
    sdn_members: Optional[Tuple[int, ...]] = None
    horizon: Optional[float] = None
    trace_level: str = "full"
    metrics: bool = False
    #: collect causal provenance spans and attach them to the record.
    spans: bool = False
    #: derive per-AS convergence anatomy (critical-path delay
    #: attribution) from the spans and attach it to the record.
    #: Requires ``spans``; deliberately absent from :meth:`describe`
    #: because anatomy is a pure function of the span payload — an
    #: anatomy-on trial is cache-equivalent to its anatomy-off twin,
    #: and a hit on an anatomy-less entry re-derives it losslessly.
    anatomy: bool = False
    #: wrap the trial in cProfile and attach the hottest functions.
    profile: bool = False
    faults: Optional[Tuple] = None
    #: run legacy routers in compact mode (interned routes, prefix
    #: index, dirty-set decision driver).  Results are bit-identical to
    #: the default path — the differential-oracle suite enforces it.
    compact: bool = False
    #: coalesce same-instant per-link deliveries into one kernel event.
    #: NOT result-identical (RNG draw order shifts) — scale trials only.
    batch_delivery: bool = False
    #: lean build: no baseline full-mesh originations, no collector.
    #: The only tractable shape at thousands of ASes.
    lean: bool = False
    #: event-kernel pending-set structure: "heap" or "calendar".
    #: Digest-preserving (identical pop order), but distinct cache
    #: entries so scheduler comparisons never alias.
    scheduler: str = "heap"
    #: sampling wall-clock profiler rate (Hz); 0 disables.  Like
    #: ``profile``, sampling never touches virtual-time results.
    sample_hz: float = 0.0
    label: str = field(default="", compare=False)

    def describe(self) -> Dict[str, Any]:
        """The digest payload: every result-determining field, as
        process-independent primitives (factories become tokens)."""
        out: Dict[str, Any] = {
            "scenario": callable_token(self.scenario_factory),
            "topology": callable_token(self.topology_factory),
            "n": self.n,
            "sdn_count": self.sdn_count,
            "seed": self.seed,
            "mrai": self.mrai,
            "recompute_delay": self.recompute_delay,
            "policy_mode": self.policy_mode,
            "sdn_members": (
                sorted(self.sdn_members)
                if self.sdn_members is not None else None
            ),
            "horizon": self.horizon,
            "trace_level": self.trace_level,
            "metrics": self.metrics,
        }
        if self.faults is not None:
            # Only present when set, so fault-free specs keep the digests
            # (and cache entries) they had before faults existed.
            out["faults"] = self.faults
        if self.spans:
            # Same back-compat rule: span collection is passive (results
            # are bit-identical), but the record payload differs, so
            # span-collecting trials get their own cache entries while
            # span-free specs keep their pre-existing digests.
            out["spans"] = True
        # ``anatomy`` is intentionally NOT part of the payload: it adds
        # nothing to the record that the spans do not already determine,
        # so anatomy-on and anatomy-off specs share digests (and cache
        # entries) — the on/off differential test pins this.
        if self.profile:
            # Profiling never changes virtual-time results either, but a
            # profiled record carries extra payload — own cache entries,
            # unprofiled digests untouched.
            out["profile"] = True
        if self.compact:
            # Compact mode is result-identical, but it exercises a
            # different code path — give it distinct cache entries so a
            # compact-vs-default comparison never hits the same record,
            # while compact-free specs keep their legacy digests.
            out["compact"] = True
        if self.batch_delivery:
            # Batching genuinely changes event interleaving, so it must
            # never share a digest with an unbatched trial.
            out["batch_delivery"] = True
        if self.lean:
            # Lean builds change what is originated, hence the results.
            out["lean"] = True
        if self.scheduler != "heap":
            # The calendar queue pops in the same (time, seq) order as
            # the heap — results are bit-identical — but it exercises a
            # different kernel path, so scheduler comparisons get their
            # own cache entries while heap specs keep legacy digests.
            out["scheduler"] = self.scheduler
        if self.sample_hz:
            # Stack sampling is passive like profile/spans, but sampled
            # records carry collapsed stacks — own cache entries, while
            # unsampled specs keep their legacy digests.
            out["sample_hz"] = self.sample_hz
        return out

    def digest(self) -> str:
        """Stable content digest — the cache key of this trial."""
        payload = json.dumps(self.describe(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def display(self) -> str:
        """Short human-readable tag for progress lines."""
        if self.label:
            return self.label
        return (
            f"{callable_token(self.scenario_factory).rsplit(':', 1)[-1]}"
            f"(n={self.n}, sdn={self.sdn_count}, seed={self.seed})"
        )


@dataclass
class RunRecord:
    """Outcome of executing one :class:`RunSpec` (success or failure)."""

    digest: str
    ok: bool
    measurement: Optional[ConvergenceMeasurement] = None
    #: per-run metrics snapshot (``spec.metrics=True``), JSON-ready.
    metrics: Optional[Dict[str, Any]] = None
    #: per-run provenance spans (``spec.spans=True``), JSON-ready dicts.
    spans: Optional[list] = None
    #: hottest functions by cumulative time (``spec.profile=True``),
    #: JSON-ready rows — see :func:`profile_table`.
    profile: Optional[list] = None
    error: Optional[str] = None
    #: wall-clock seconds the trial took inside its worker.
    wall_time: float = 0.0
    #: ``pid-<n>`` of the worker process, or ``serial`` for in-process.
    worker: str = ""
    #: total execution attempts this record reflects (>= 2 after retry).
    attempts: int = 1
    #: True when the record came from the result cache, not execution.
    cached: bool = False
    #: True when the job was cancelled by request (``ok`` is False and
    #: the record is never cached).
    cancelled: bool = False
    #: per-job resource accounting (CPU user/sys seconds, peak RSS,
    #: GC pauses, events/s) — digest-neutral record payload, never part
    #: of the measurement.  See :class:`ResourceAccounting`.
    resources: Optional[Dict[str, Any]] = None
    #: flamegraph collapsed stacks (``spec.sample_hz > 0``):
    #: ``{"frame;frame;frame": samples}``.
    sample_stacks: Optional[Dict[str, int]] = None
    #: per-AS convergence anatomy (``spec.anatomy=True``), the compact
    #: JSON payload of :meth:`repro.obs.anatomy.ConvergenceAnatomy.to_dict`
    #: — derived from ``spans``, never from wall clocks.
    anatomy: Optional[Dict[str, Any]] = None

    def measurement_dict(self) -> Dict[str, Any]:
        """JSON-ready measurement fields (for the cache)."""
        if self.measurement is None:
            return {}
        return {
            f.name: getattr(self.measurement, f.name)
            for f in fields(ConvergenceMeasurement)
        }

    @staticmethod
    def measurement_from_dict(data: Dict[str, Any]) -> ConvergenceMeasurement:
        known = {f.name for f in fields(ConvergenceMeasurement)}
        return ConvergenceMeasurement(
            **{k: v for k, v in data.items() if k in known}
        )


def run_trial(spec: RunSpec) -> ConvergenceMeasurement:
    """Rebuild the trial a spec describes and run it to completion.

    This is the exact serial recipe of ``run_fraction_sweep``: fresh
    scenario, scenario-shaped topology, standard member selection,
    paper config seeded from the spec.
    """
    measurement, _ = run_trial_instrumented(spec)
    return measurement


def run_trial_instrumented(
    spec: RunSpec,
) -> Tuple[ConvergenceMeasurement, Optional[Dict[str, Any]]]:
    """Like :func:`run_trial`, also returning the metrics snapshot.

    The snapshot is ``None`` unless the spec asked for metrics
    (``spec.metrics=True``).
    """
    measurement, metrics, _ = run_trial_full(spec)
    return measurement, metrics


def run_trial_full(
    spec: RunSpec,
    *,
    info: Optional[Dict[str, Any]] = None,
) -> Tuple[ConvergenceMeasurement, Optional[Dict[str, Any]], Optional[list]]:
    """One trial returning ``(measurement, metrics, spans)``.

    ``metrics`` is None unless ``spec.metrics``; ``spans`` (JSON-ready
    provenance span dicts) is None unless ``spec.spans``.  ``info``,
    when given, is filled with execution facts that are not part of the
    result (``events_processed``) for resource accounting.
    """
    # Imported here, not at module top: repro.experiments.common imports
    # the runner package, so the dependency must stay one-directional at
    # import time.
    from ..experiments.common import (
        paper_config,
        run_scenario_full,
        sdn_set_for,
    )

    scenario = spec.scenario_factory()
    if spec.faults is not None:
        scenario.faults = spec.faults
    topology = scenario.topology(spec.n, spec.topology_factory)
    if spec.sdn_members is not None:
        members = frozenset(spec.sdn_members)
    else:
        members = sdn_set_for(topology, spec.sdn_count, scenario.reserved_legacy)
    config = paper_config(
        seed=spec.seed,
        mrai=spec.mrai,
        recompute_delay=spec.recompute_delay,
        policy_mode=spec.policy_mode,
        trace_level=spec.trace_level,
        metrics=spec.metrics,
        spans=spec.spans,
        compact=spec.compact,
        batch_delivery=spec.batch_delivery,
        lean=spec.lean,
        scheduler=spec.scheduler,
    )
    return run_scenario_full(
        scenario, topology, members, config, horizon=spec.horizon, info=info,
    )


#: profile rows kept per run (top cumulative-time functions).
PROFILE_TOP = 25


def profile_table(stats, *, top: int = PROFILE_TOP) -> list:
    """The hottest functions of a ``pstats.Stats``, as JSON-ready rows.

    Each row is ``{"func": "module:lineno(name)", "ncalls": int,
    "tottime": float, "cumtime": float}``, sorted by cumulative time.
    Rows from different workers merge by summing (see
    :func:`repro.obs.registry.aggregate_profiles`).
    """
    rows = []
    for (filename, lineno, name), (_, ncalls, tottime, cumtime, _) in (
        stats.stats.items()
    ):
        short = os.path.basename(filename) if filename else "~"
        rows.append(
            {
                "func": f"{short}:{lineno}({name})",
                "ncalls": int(ncalls),
                "tottime": round(float(tottime), 6),
                "cumtime": round(float(cumtime), 6),
            }
        )
    rows.sort(key=lambda r: (-r["cumtime"], r["func"]))
    return rows[:top]


class ResourceAccounting:
    """Per-trial resource meter: CPU time, peak RSS, GC pauses.

    Wraps ``resource.getrusage(RUSAGE_SELF)`` deltas plus paired
    ``gc.callbacks`` timing.  ``max_rss_kb`` is the process-wide
    high-water mark at trial end (kilobytes) — ``getrusage`` offers no
    per-interval reading, so back-to-back trials in one worker report
    the running maximum.  Degrades to partial accounting on platforms
    without the ``resource`` module.
    """

    def __init__(self) -> None:
        try:
            import resource

            self._resource = resource
            self._r0 = resource.getrusage(resource.RUSAGE_SELF)
        except ImportError:  # pragma: no cover - non-POSIX
            self._resource = None
            self._r0 = None
        self.gc_collections = 0
        self.gc_pause_s = 0.0
        self._gc_started: Optional[float] = None
        import gc

        self._gc = gc
        gc.callbacks.append(self._on_gc)

    def _on_gc(self, phase: str, info: Dict[str, Any]) -> None:
        if phase == "start":
            self._gc_started = time.perf_counter()
        elif phase == "stop" and self._gc_started is not None:
            self.gc_pause_s += time.perf_counter() - self._gc_started
            self.gc_collections += 1
            self._gc_started = None

    def finish(
        self,
        *,
        wall_time: float,
        events_processed: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Detach and return the JSON-ready resources dict."""
        try:
            self._gc.callbacks.remove(self._on_gc)
        except ValueError:  # pragma: no cover - double finish
            pass
        out: Dict[str, Any] = {
            "gc_collections": self.gc_collections,
            "gc_pause_s": round(self.gc_pause_s, 6),
        }
        if self._resource is not None and self._r0 is not None:
            r1 = self._resource.getrusage(self._resource.RUSAGE_SELF)
            max_rss = r1.ru_maxrss
            if sys.platform == "darwin":  # bytes there, KiB on Linux
                max_rss //= 1024
            out.update(
                cpu_user_s=round(r1.ru_utime - self._r0.ru_utime, 6),
                cpu_sys_s=round(r1.ru_stime - self._r0.ru_stime, 6),
                max_rss_kb=int(max_rss),
            )
        if events_processed is not None:
            out["events_processed"] = int(events_processed)
            if wall_time > 0:
                out["events_per_s"] = round(events_processed / wall_time, 1)
        return out


def execute_spec(spec: RunSpec, cid: str = "") -> RunRecord:
    """Pool worker entry point: run one spec, never raise.

    Scenario exceptions come back as ``ok=False`` records (with the
    traceback) so the caller's retry policy sees soft and hard failures
    the same way; only interpreter death (crash/kill/timeout) surfaces
    through the pool machinery itself.  ``spec.profile`` wraps the
    trial in ``cProfile`` and attaches the hottest functions to the
    record; ``spec.sample_hz`` runs the sampling profiler alongside
    (virtual-time results are unaffected by either — the telemetry
    differential test pins that).  Every record carries digest-neutral
    resource accounting; ``cid`` is the caller's correlation id, echoed
    into this worker's structured log lines.
    """
    from ..obs.logging import get_logger

    digest = spec.digest()
    log = get_logger("worker", cid=cid or None, digest=digest[:12])
    log.info("trial_started", label=spec.display(), pid=os.getpid())
    started = time.perf_counter()
    worker = f"pid-{os.getpid()}"
    profile = None
    accounting = ResourceAccounting()
    sampler = None
    if spec.sample_hz:
        from ..obs.sampler import StackSampler

        sampler = StackSampler(spec.sample_hz).start()
    info: Dict[str, Any] = {}
    try:
        if spec.profile:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            try:
                measurement, metrics, spans = profiler.runcall(
                    run_trial_full, spec, info=info
                )
            finally:
                profiler.disable()
            profile = profile_table(pstats.Stats(profiler))
        else:
            measurement, metrics, spans = run_trial_full(spec, info=info)
    except Exception:
        wall_time = time.perf_counter() - started
        if sampler is not None:
            sampler.stop()
        resources = accounting.finish(
            wall_time=wall_time,
            events_processed=info.get("events_processed"),
        )
        log.error("trial_failed", wall_time=round(wall_time, 3))
        return RunRecord(
            digest=digest,
            ok=False,
            error=traceback.format_exc(limit=20),
            wall_time=wall_time,
            worker=worker,
            resources=resources,
            sample_stacks=dict(sampler.counts) if sampler else None,
        )
    wall_time = time.perf_counter() - started
    if sampler is not None:
        sampler.stop()
    resources = accounting.finish(
        wall_time=wall_time,
        events_processed=info.get("events_processed"),
    )
    log.info(
        "trial_finished",
        wall_time=round(wall_time, 3),
        cpu_user_s=resources.get("cpu_user_s"),
        max_rss_kb=resources.get("max_rss_kb"),
        samples=sampler.samples if sampler else None,
    )
    record = RunRecord(
        digest=digest,
        ok=True,
        measurement=measurement,
        metrics=metrics,
        spans=spans,
        profile=profile,
        wall_time=wall_time,
        worker=worker,
        resources=resources,
        sample_stacks=dict(sampler.counts) if sampler else None,
    )
    if spec.anatomy:
        # Derived after the trial from the span payload alone, so it can
        # never perturb virtual-time results (and needs ``spec.spans``).
        from ..obs.anatomy import ensure_record_anatomy

        ensure_record_anatomy(record)
    return record
