"""Fault-tolerant parallel execution of :class:`~repro.runner.jobs.RunSpec` grids.

:class:`ParallelRunner` fans specs out over a ``ProcessPoolExecutor``
(``n_workers`` processes), with

- result ordering by *input position*, never completion order, so a
  parallel sweep assembles bit-identically to the serial one;
- an optional per-job wall-clock ``timeout`` — a hung worker is killed
  and the job retried;
- bounded retry (``retries`` extra attempts per job) of trials that
  raise, crash the worker process, or time out; an exhausted job
  becomes a failed :class:`~repro.runner.jobs.RunRecord` instead of
  aborting the sweep;
- a read-through :class:`~repro.runner.cache.ResultCache`, so re-running
  a sweep only executes missing trials;
- ``n_workers=1`` falls back to plain in-process serial execution (no
  subprocesses — fully debuggable, and the reference for equality).

Fault semantics worth knowing: when a worker process dies, the executor
marks *every* in-flight future broken, so each in-flight job is charged
one attempt and requeued behind untouched work.  A persistently
crashing job therefore ends up retried mostly alone (its innocent
pool-mates complete in the rebuilt pool first) and drains only its own
retry budget.  Per-job timeouts likewise kill the whole pool (there is
no way to kill a single hung pool worker); jobs that were still within
their deadline are requeued without being charged an attempt.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from ..obs.logging import NULL_LOGGER, get_logger, log_enabled, new_cid
from .cache import ResultCache
from .jobs import RunRecord, RunSpec, execute_spec
from .progress import ProgressSink, SweepTiming, TeeProgress, resolve_progress

__all__ = ["ParallelRunner", "default_workers"]


def default_workers() -> int:
    """A sensible worker count for this machine (``os.cpu_count()``)."""
    return max(1, os.cpu_count() or 1)


@dataclass
class _Job:
    """Mutable execution state of one spec inside a run."""

    index: int
    spec: RunSpec
    attempts: int = 0  # executions started so far


class ParallelRunner:
    """Execute a list of specs and return records in input order."""

    def __init__(
        self,
        n_workers: int = 1,
        *,
        timeout: Optional[float] = None,
        retries: int = 1,
        cache: Union[ResultCache, str, os.PathLike, None] = None,
        progress: Union[None, str, Callable, ProgressSink] = None,
        registry=None,
        cid: Optional[str] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1: {n_workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0: {retries}")
        self.n_workers = n_workers
        self.timeout = timeout
        self.retries = retries
        #: sweep-level correlation id; per-job ids are ``<cid>/<index>``
        #: and flow into the workers' structured logs.  Minted lazily
        #: when structured logging is enabled and none was given.
        self.cid = cid or ""
        self._logger = NULL_LOGGER
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache: Optional[ResultCache] = cache
        self.progress = resolve_progress(progress)
        #: the telemetry recorder, when ``registry`` was given (a
        #: ``RunRegistry``, a path, or a prepared ``RegistrySink``).
        self.registry_sink = None
        if registry is not None:
            # Local import: repro.obs.registry imports this package.
            from ..obs.registry import RegistrySink, resolve_registry

            if isinstance(registry, RegistrySink):
                self.registry_sink = registry
            else:
                self.registry_sink = RegistrySink(resolve_registry(registry))
            # Recording rides the same event stream both execution paths
            # (and cache hits) already emit, so serial and parallel runs
            # record identically.
            self.progress = TeeProgress(self.progress, self.registry_sink)
        #: timing stats of the most recent :meth:`run`.
        self.last_timing: Optional[SweepTiming] = None
        self._cancelled: set = set()
        self._cancel_lock = threading.Lock()

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, digest: str) -> bool:
        """Request cancellation of every job with this spec digest.

        Safe to call from any thread while :meth:`run` executes in
        another.  Cancellation takes effect at scheduling boundaries: a
        queued job is never started, an in-flight job's result is
        discarded when it lands (its worker is not interrupted
        mid-trial).  Cache hits and already-finalized records are
        unaffected — a cancelled job yields an ``ok=False`` record with
        ``cancelled=True`` that is **never** written to the cache.

        Returns True (the request is recorded; whether a matching job is
        still pending is for the caller's bookkeeping).
        """
        with self._cancel_lock:
            self._cancelled.add(digest)
        return True

    def _is_cancelled(self, spec: RunSpec) -> bool:
        with self._cancel_lock:
            return spec.digest() in self._cancelled

    @staticmethod
    def _cancelled_record(job: _Job) -> RunRecord:
        return RunRecord(
            digest=job.spec.digest(),
            ok=False,
            cancelled=True,
            error="cancelled by request before completion",
            attempts=job.attempts,
        )

    # ------------------------------------------------------------------
    def _job_cid(self, job: "_Job") -> str:
        return f"{self.cid}/{job.index}" if self.cid else ""

    def run(self, specs: Sequence[RunSpec]) -> List[RunRecord]:
        """Run every spec; the i-th record describes the i-th spec."""
        specs = list(specs)
        if not self.cid and log_enabled():
            self.cid = new_cid()
        self._logger = get_logger("runner", cid=self.cid or None)
        started = time.perf_counter()
        hits_before = self.cache.hits if self.cache is not None else 0
        misses_before = self.cache.misses if self.cache is not None else 0
        records: List[Optional[RunRecord]] = [None] * len(specs)

        pending: List[_Job] = []
        n_cached = 0
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                if spec.anatomy and cached.anatomy is None:
                    # ``anatomy`` is digest-neutral, so an anatomy-on
                    # spec can hit an entry written without it; anatomy
                    # is a pure function of the cached spans, so the
                    # record gains it losslessly here.
                    from ..obs.anatomy import ensure_record_anatomy

                    ensure_record_anatomy(cached)
                records[index] = cached
                n_cached += 1
            else:
                pending.append(_Job(index, spec))

        self._logger.info(
            "sweep_started",
            jobs=len(specs), cached=n_cached, workers=self.n_workers,
        )
        self.progress.sweep_started(len(specs), n_cached, self.n_workers)
        for index, record in enumerate(records):
            if record is not None:
                self.progress.job_finished(index, specs[index], record)

        if pending:
            if self.n_workers == 1:
                self._run_serial(pending, records)
            else:
                self._run_parallel(pending, records)

        done = [r for r in records if r is not None]
        assert len(done) == len(specs), "runner lost a job"
        executed = [r for r in done if not r.cached]
        cache_stats = self.cache.stats() if self.cache is not None else None
        timing = SweepTiming(
            elapsed=time.perf_counter() - started,
            jobs=len(specs),
            cached=n_cached,
            failed=sum(1 for r in done if not r.ok),
            total_job_wall=sum(r.wall_time for r in executed),
            max_job_wall=max((r.wall_time for r in executed), default=0.0),
            workers=self.n_workers,
            cache_hits=(
                self.cache.hits - hits_before if self.cache is not None else 0
            ),
            cache_misses=(
                self.cache.misses - misses_before
                if self.cache is not None else 0
            ),
            cache_entries=cache_stats.entries if cache_stats else 0,
            cache_bytes=cache_stats.total_bytes if cache_stats else 0,
        )
        self.last_timing = timing
        self._logger.info(
            "sweep_finished",
            elapsed=round(timing.elapsed, 3),
            failed=timing.failed, cached=timing.cached,
        )
        self.progress.sweep_finished(timing)
        return done

    # ------------------------------------------------------------------
    # serial fallback
    # ------------------------------------------------------------------
    def _run_serial(
        self, jobs: Sequence[_Job], records: List[Optional[RunRecord]]
    ) -> None:
        """In-process execution — the bit-identical reference path.

        Per-job timeouts are not enforceable in-process and are ignored.
        """
        for job in jobs:
            while True:
                if self._is_cancelled(job.spec):
                    self._finalize(job, self._cancelled_record(job), records)
                    break
                job.attempts += 1
                self.progress.job_started(job.index, job.spec, job.attempts)
                self._logger.info(
                    "job_started", cid=self._job_cid(job),
                    index=job.index, attempt=job.attempts,
                )
                record = execute_spec(job.spec, self._job_cid(job))
                record.worker = "serial"
                if self._is_cancelled(job.spec):
                    # Cancelled mid-trial: discard the result (never
                    # cache it) and report the cancellation.
                    self._finalize(job, self._cancelled_record(job), records)
                    break
                if record.ok or job.attempts > self.retries:
                    record.attempts = job.attempts
                    self._finalize(job, record, records)
                    break

    # ------------------------------------------------------------------
    # parallel engine
    # ------------------------------------------------------------------
    def _run_parallel(
        self, jobs: Sequence[_Job], records: List[Optional[RunRecord]]
    ) -> None:
        queue = deque(jobs)
        while queue:
            self._drain_one_pool(queue, records)

    def _drain_one_pool(self, queue, records) -> None:
        """Run jobs in one executor until the queue drains or the pool
        must be torn down (worker crash / job timeout)."""
        executor = ProcessPoolExecutor(max_workers=self.n_workers)
        inflight = {}  # future -> (_Job, deadline or None)
        broken = False
        try:
            while queue or inflight:
                while queue and len(inflight) < self.n_workers:
                    job = queue.popleft()
                    if self._is_cancelled(job.spec):
                        self._finalize(
                            job, self._cancelled_record(job), records
                        )
                        continue
                    job.attempts += 1
                    self.progress.job_started(job.index, job.spec, job.attempts)
                    self._logger.info(
                        "job_started", cid=self._job_cid(job),
                        index=job.index, attempt=job.attempts,
                    )
                    future = executor.submit(
                        execute_spec, job.spec, self._job_cid(job)
                    )
                    deadline = (
                        time.monotonic() + self.timeout
                        if self.timeout is not None else None
                    )
                    inflight[future] = (job, deadline)

                if not inflight:
                    # Everything left in the queue was cancelled.
                    continue

                wait_for = None
                if self.timeout is not None:
                    nearest = min(dl for _, dl in inflight.values())
                    wait_for = max(0.0, nearest - time.monotonic())
                done, _ = futures_wait(
                    set(inflight), timeout=wait_for, return_when=FIRST_COMPLETED
                )

                if not done:
                    self._handle_timeout(inflight, queue, records)
                    broken = True
                    return

                for future in done:
                    job, _ = inflight.pop(future)
                    exc = future.exception()
                    if exc is not None:
                        # The worker process died (os._exit, signal,
                        # OOM-kill...): the pool is broken.
                        self._register_failure(
                            job,
                            f"worker process died: {exc!r}",
                            queue, records,
                        )
                        broken = True
                        continue
                    record = future.result()
                    if self._is_cancelled(job.spec):
                        self._finalize(
                            job, self._cancelled_record(job), records
                        )
                    elif record.ok:
                        record.attempts = job.attempts
                        self._finalize(job, record, records)
                    elif job.attempts > self.retries:
                        record.attempts = job.attempts
                        self._finalize(job, record, records)
                    else:
                        queue.append(job)  # soft failure: retry later

                if broken:
                    # Every other in-flight future is doomed with the
                    # pool; requeue still-running jobs without charging
                    # them the attempt they never got to finish.
                    for future, (job, _) in list(inflight.items()):
                        if future.done() and future.exception() is not None:
                            self._register_failure(
                                job,
                                f"worker process died: {future.exception()!r}",
                                queue, records,
                            )
                        elif future.done():
                            record = future.result()
                            record.attempts = job.attempts
                            self._finalize(job, record, records)
                        else:
                            job.attempts -= 1
                            queue.appendleft(job)
                    inflight.clear()
                    return
        finally:
            if broken or inflight:
                self._kill_executor(executor)
            else:
                executor.shutdown(wait=True)

    def _handle_timeout(self, inflight, queue, records) -> None:
        """Per-job deadline passed with nothing completing: kill the
        pool, charge the expired jobs, requeue the innocent ones."""
        now = time.monotonic()
        for future, (job, deadline) in list(inflight.items()):
            if future.done() and future.exception() is None:
                record = future.result()
                record.attempts = job.attempts
                self._finalize(job, record, records)
            elif deadline is not None and deadline <= now:
                self._register_failure(
                    job,
                    f"timed out after {self.timeout}s "
                    f"(attempt {job.attempts})",
                    queue, records,
                )
            else:
                job.attempts -= 1
                queue.appendleft(job)
        inflight.clear()

    def _register_failure(self, job: _Job, error: str, queue, records) -> None:
        """Charge a hard failure: retry (to the back of the queue, so a
        persistent crasher mostly retries alone) or finalize as failed."""
        if job.attempts > self.retries:
            self._finalize(
                job,
                RunRecord(
                    digest=job.spec.digest(),
                    ok=False,
                    error=error,
                    attempts=job.attempts,
                ),
                records,
            )
        else:
            queue.append(job)

    def _finalize(self, job: _Job, record: RunRecord, records) -> None:
        records[job.index] = record
        if self.cache is not None and record.ok:
            self.cache.put(job.spec, record)
        self._logger.log(
            "job_finished",
            level="info" if record.ok else "warning",
            cid=self._job_cid(job),
            index=job.index, digest=record.digest[:12], ok=record.ok,
            cached=record.cached, cancelled=record.cancelled,
            wall_time=round(record.wall_time, 3),
        )
        self.progress.job_finished(job.index, job.spec, record)

    @staticmethod
    def _kill_executor(executor: ProcessPoolExecutor) -> None:
        """Tear an executor down hard, including hung workers.

        ``shutdown()`` alone never reaps a worker stuck in C code or a
        sleep, so the processes are killed first (via the private
        ``_processes`` map — there is no public API for this).
        """
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
