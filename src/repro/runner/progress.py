"""Pluggable progress reporting for sweep execution.

The runner emits a small, fixed set of events; a sink decides what to
do with them.  Three built-ins cover the common cases:

- :class:`ProgressSink` — the no-op base class (quiet mode);
- :class:`LogProgress` — one log line per event to a stream;
- :class:`CallbackProgress` — forwards ``(event, payload)`` pairs to a
  callable (GUIs, notebooks, tests).

:func:`resolve_progress` maps the user-facing shorthand (``None``,
``"quiet"``, ``"log"``, a callable, or a sink instance) onto a sink.
:class:`SweepTiming` is the aggregate the runner hands to
``sweep_finished`` and that sweeps surface on ``SweepResult.timing``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, TextIO, Union

from .jobs import RunRecord, RunSpec

__all__ = [
    "ProgressSink",
    "LogProgress",
    "CallbackProgress",
    "SweepTiming",
    "resolve_progress",
]


@dataclass
class SweepTiming:
    """Per-sweep timing/bookkeeping stats (surfaced on ``SweepResult``)."""

    #: wall-clock seconds for the whole sweep (submit to last result).
    elapsed: float = 0.0
    #: trials in the sweep, and how they resolved.
    jobs: int = 0
    cached: int = 0
    failed: int = 0
    #: summed / max wall-clock seconds of executed (non-cached) trials.
    total_job_wall: float = 0.0
    max_job_wall: float = 0.0
    #: worker processes used (1 == serial in-process).
    workers: int = 1

    @property
    def executed(self) -> int:
        """Trials that actually ran (cache misses)."""
        return self.jobs - self.cached

    @property
    def mean_job_wall(self) -> float:
        """Mean wall-clock of executed trials."""
        return self.total_job_wall / self.executed if self.executed else 0.0

    @property
    def speedup(self) -> float:
        """Summed job time over elapsed time (> 1 means real overlap)."""
        return self.total_job_wall / self.elapsed if self.elapsed > 0 else 0.0


class ProgressSink:
    """Event receiver for a sweep run.  Base class is the quiet sink."""

    def sweep_started(self, total: int, cached: int, workers: int) -> None:
        """Called once before execution; ``cached`` jobs are already done."""

    def job_started(self, index: int, spec: RunSpec, attempt: int) -> None:
        """A trial was handed to a worker (attempt is 1-based)."""

    def job_finished(self, index: int, spec: RunSpec, record: RunRecord) -> None:
        """A trial resolved — successfully, from cache, or failed for good."""

    def sweep_finished(self, timing: SweepTiming) -> None:
        """Called once after the last trial resolves."""


class LogProgress(ProgressSink):
    """One human-readable line per event, to ``stream`` (default stderr)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def _emit(self, line: str) -> None:
        print(line, file=self.stream, flush=True)

    def sweep_started(self, total: int, cached: int, workers: int) -> None:
        self._emit(
            f"[runner] {total} trials ({cached} cached), "
            f"{workers} worker{'s' if workers != 1 else ''}"
        )

    def job_started(self, index: int, spec: RunSpec, attempt: int) -> None:
        retry = f" (attempt {attempt})" if attempt > 1 else ""
        self._emit(f"[runner] > {spec.display()}{retry}")

    def job_finished(self, index: int, spec: RunSpec, record: RunRecord) -> None:
        if record.cached:
            status = "cached"
        elif record.ok:
            status = f"ok in {record.wall_time:.2f}s on {record.worker}"
        else:
            reason = (record.error or "").strip().splitlines()
            status = (
                f"FAILED after {record.attempts} attempt(s)"
                + (f": {reason[-1]}" if reason else "")
            )
        self._emit(f"[runner] < {spec.display()}: {status}")

    def sweep_finished(self, timing: SweepTiming) -> None:
        self._emit(
            f"[runner] done: {timing.jobs} trials "
            f"({timing.cached} cached, {timing.failed} failed) "
            f"in {timing.elapsed:.2f}s "
            f"(job time {timing.total_job_wall:.2f}s, "
            f"speedup {timing.speedup:.2f}x)"
        )


class CallbackProgress(ProgressSink):
    """Forward every event as ``callback(event_name, payload_dict)``."""

    def __init__(self, callback: Callable[[str, Dict[str, Any]], None]) -> None:
        self.callback = callback

    def sweep_started(self, total: int, cached: int, workers: int) -> None:
        self.callback(
            "sweep_started",
            {"total": total, "cached": cached, "workers": workers},
        )

    def job_started(self, index: int, spec: RunSpec, attempt: int) -> None:
        self.callback(
            "job_started", {"index": index, "spec": spec, "attempt": attempt}
        )

    def job_finished(self, index: int, spec: RunSpec, record: RunRecord) -> None:
        self.callback(
            "job_finished", {"index": index, "spec": spec, "record": record}
        )

    def sweep_finished(self, timing: SweepTiming) -> None:
        self.callback("sweep_finished", {"timing": timing})


def resolve_progress(
    progress: Union[None, str, Callable, ProgressSink]
) -> ProgressSink:
    """Map the user-facing ``progress=`` shorthand onto a sink."""
    if progress is None:
        return ProgressSink()
    if isinstance(progress, ProgressSink):
        return progress
    if isinstance(progress, str):
        if progress in ("quiet", "none", ""):
            return ProgressSink()
        if progress == "log":
            return LogProgress()
        raise ValueError(
            f"unknown progress mode {progress!r}; use 'quiet', 'log', "
            "a callable, or a ProgressSink"
        )
    if callable(progress):
        return CallbackProgress(progress)
    raise TypeError(f"cannot interpret progress={progress!r}")
