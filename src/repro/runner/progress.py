"""Pluggable progress reporting for sweep execution.

The runner emits a small, fixed set of events; a sink decides what to
do with them.  Three built-ins cover the common cases:

- :class:`ProgressSink` — the no-op base class (quiet mode);
- :class:`LogProgress` — one log line per event to a stream;
- :class:`CallbackProgress` — forwards ``(event, payload)`` pairs to a
  callable (GUIs, notebooks, tests).

Two more sinks serve machine consumers: :class:`JsonProgress` turns
every event into one JSON-ready dict (the wire shape of the service
API's SSE stream), and :class:`AsyncQueueProgress` bridges the runner's
synchronous event stream into an :class:`asyncio.Queue` without ever
blocking the worker thread.

:func:`resolve_progress` maps the user-facing shorthand (``None``,
``"quiet"``, ``"log"``, a callable, or a sink instance) onto a sink.
:class:`SweepTiming` is the aggregate the runner hands to
``sweep_finished`` and that sweeps surface on ``SweepResult.timing``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Optional, TextIO, Union

from .jobs import RunRecord, RunSpec

__all__ = [
    "ProgressSink",
    "LogProgress",
    "CallbackProgress",
    "TeeProgress",
    "JsonProgress",
    "AsyncQueueProgress",
    "SweepTiming",
    "record_summary",
    "resolve_progress",
]


@dataclass
class SweepTiming:
    """Per-sweep timing/bookkeeping stats (surfaced on ``SweepResult``)."""

    #: wall-clock seconds for the whole sweep (submit to last result).
    elapsed: float = 0.0
    #: trials in the sweep, and how they resolved.
    jobs: int = 0
    cached: int = 0
    failed: int = 0
    #: summed / max wall-clock seconds of executed (non-cached) trials.
    total_job_wall: float = 0.0
    max_job_wall: float = 0.0
    #: worker processes used (1 == serial in-process).
    workers: int = 1
    #: result-cache lookups this sweep (hits == ``cached``; misses are
    #: trials that had to execute).  Both stay 0 without a cache.
    cache_hits: int = 0
    cache_misses: int = 0
    #: cache directory totals after the sweep (entries / bytes on disk).
    cache_entries: int = 0
    cache_bytes: int = 0

    @property
    def executed(self) -> int:
        """Trials that actually ran (cache misses)."""
        return self.jobs - self.cached

    @property
    def mean_job_wall(self) -> float:
        """Mean wall-clock of executed trials."""
        return self.total_job_wall / self.executed if self.executed else 0.0

    @property
    def speedup(self) -> float:
        """Summed job time over elapsed time (> 1 means real overlap)."""
        return self.total_job_wall / self.elapsed if self.elapsed > 0 else 0.0


class ProgressSink:
    """Event receiver for a sweep run.  Base class is the quiet sink."""

    def sweep_started(self, total: int, cached: int, workers: int) -> None:
        """Called once before execution; ``cached`` jobs are already done."""

    def job_started(self, index: int, spec: RunSpec, attempt: int) -> None:
        """A trial was handed to a worker (attempt is 1-based)."""

    def job_finished(self, index: int, spec: RunSpec, record: RunRecord) -> None:
        """A trial resolved — successfully, from cache, or failed for good."""

    def sweep_finished(self, timing: SweepTiming) -> None:
        """Called once after the last trial resolves."""


class LogProgress(ProgressSink):
    """One human-readable line per event, to ``stream`` (default stderr).

    ``trial_finished`` lines carry running throughput (executed trials
    per wall-clock second) and an ETA over the remaining trials, so a
    long sweep's tail is predictable from the log alone.  Every line is
    flushed as it is written, so piped logs stream in real time.

    The pace suffix degrades instead of lying: all-cache-hit sweeps
    (nothing executed) and a first tick that lands within clock
    granularity of the start show bare ``k/total`` — a rate
    extrapolated from ~0 elapsed seconds would claim millions of
    trials/s and an ETA of 0.  ``clock`` is injectable for tests.
    """

    #: below this elapsed time (seconds) a rate is noise, not signal.
    MIN_ELAPSED = 1e-3

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock if clock is not None else time.perf_counter
        self._total = 0
        self._done = 0
        self._executed = 0
        self._t0: Optional[float] = None

    def _emit(self, line: str) -> None:
        print(line, file=self.stream, flush=True)
        flush = getattr(self.stream, "flush", None)
        if flush is not None:
            flush()

    def sweep_started(self, total: int, cached: int, workers: int) -> None:
        self._total = total
        self._done = 0
        self._executed = 0
        self._t0 = self.clock()
        self._emit(
            f"[runner] {total} trials ({cached} cached), "
            f"{workers} worker{'s' if workers != 1 else ''}"
        )

    def job_started(self, index: int, spec: RunSpec, attempt: int) -> None:
        retry = f" (attempt {attempt})" if attempt > 1 else ""
        self._emit(f"[runner] > {spec.display()}{retry}")

    def _pace(self) -> str:
        """``k/total`` progress plus trials/sec and ETA, from the same
        quantities :class:`SweepTiming` reports at sweep end."""
        pace = f"{self._done}/{self._total}"
        if not self._executed or self._t0 is None:
            # all-cache-hit so far: there is no execution rate to
            # extrapolate from, and cache hits resolve ~instantly anyway
            return pace
        elapsed = self.clock() - self._t0
        if elapsed < self.MIN_ELAPSED:
            # zero-elapsed first tick: any rate computed here is clock
            # granularity, not throughput
            return pace
        rate = self._executed / elapsed
        pace += f", {rate:.2f} trials/s"
        remaining = max(self._total - self._done, 0)
        if remaining:
            pace += f", eta {remaining / rate:.0f}s"
        return pace

    def job_finished(self, index: int, spec: RunSpec, record: RunRecord) -> None:
        self._done += 1
        if not record.cached:
            self._executed += 1
        if record.cached:
            status = "cached"
        elif record.ok:
            status = f"ok in {record.wall_time:.2f}s on {record.worker}"
        else:
            reason = (record.error or "").strip().splitlines()
            status = (
                f"FAILED after {record.attempts} attempt(s)"
                + (f": {reason[-1]}" if reason else "")
            )
        self._emit(f"[runner] < {spec.display()}: {status} [{self._pace()}]")

    def sweep_finished(self, timing: SweepTiming) -> None:
        self._emit(
            f"[runner] done: {timing.jobs} trials "
            f"({timing.cached} cached, {timing.failed} failed) "
            f"in {timing.elapsed:.2f}s "
            f"(job time {timing.total_job_wall:.2f}s, "
            f"speedup {timing.speedup:.2f}x)"
        )


class CallbackProgress(ProgressSink):
    """Forward every event as ``callback(event_name, payload_dict)``."""

    def __init__(self, callback: Callable[[str, Dict[str, Any]], None]) -> None:
        self.callback = callback

    def sweep_started(self, total: int, cached: int, workers: int) -> None:
        self.callback(
            "sweep_started",
            {"total": total, "cached": cached, "workers": workers},
        )

    def job_started(self, index: int, spec: RunSpec, attempt: int) -> None:
        self.callback(
            "job_started", {"index": index, "spec": spec, "attempt": attempt}
        )

    def job_finished(self, index: int, spec: RunSpec, record: RunRecord) -> None:
        self.callback(
            "job_finished", {"index": index, "spec": spec, "record": record}
        )

    def sweep_finished(self, timing: SweepTiming) -> None:
        self.callback("sweep_finished", {"timing": timing})


class TeeProgress(ProgressSink):
    """Fan every event out to several sinks (log + registry recorder)."""

    def __init__(self, *sinks: ProgressSink) -> None:
        self.sinks = [s for s in sinks if s is not None]

    def sweep_started(self, total: int, cached: int, workers: int) -> None:
        for sink in self.sinks:
            sink.sweep_started(total, cached, workers)

    def job_started(self, index: int, spec: RunSpec, attempt: int) -> None:
        for sink in self.sinks:
            sink.job_started(index, spec, attempt)

    def job_finished(self, index: int, spec: RunSpec, record: RunRecord) -> None:
        for sink in self.sinks:
            sink.job_finished(index, spec, record)

    def sweep_finished(self, timing: SweepTiming) -> None:
        for sink in self.sinks:
            sink.sweep_finished(timing)


def record_summary(record: RunRecord) -> Dict[str, Any]:
    """A small JSON-ready summary of a :class:`RunRecord`.

    This is what travels over the service API's event stream — headline
    measurement numbers, not the full trace/span payload (fetch the
    result endpoint for those).
    """
    out: Dict[str, Any] = {
        "digest": record.digest,
        "ok": record.ok,
        "cached": record.cached,
        "cancelled": record.cancelled,
        "wall_time": record.wall_time,
        "worker": record.worker,
        "attempts": record.attempts,
    }
    if record.measurement is not None:
        out["convergence_time"] = record.measurement.convergence_time
        out["updates_tx"] = record.measurement.updates_tx
    if record.error:
        lines = record.error.strip().splitlines()
        out["error"] = lines[-1] if lines else record.error.strip()
    return out


class JsonProgress(ProgressSink):
    """Every event as one JSON-ready dict, via ``emit(payload)``.

    The payloads are the wire shape of the service API's SSE stream:
    ``{"event": <name>, ...}`` with specs reduced to digest/label and
    records to :func:`record_summary`.  Subclass and override
    :meth:`emit`, or pass a callable.
    """

    def __init__(
        self, emit: Optional[Callable[[Dict[str, Any]], None]] = None
    ) -> None:
        if emit is not None:
            self.emit = emit  # type: ignore[method-assign]

    def emit(self, payload: Dict[str, Any]) -> None:
        """Receive one JSON-ready event payload (override me)."""

    def sweep_started(self, total: int, cached: int, workers: int) -> None:
        self.emit(
            {
                "event": "sweep_started",
                "total": total,
                "cached": cached,
                "workers": workers,
            }
        )

    def job_started(self, index: int, spec: RunSpec, attempt: int) -> None:
        self.emit(
            {
                "event": "job_started",
                "index": index,
                "digest": spec.digest(),
                "label": spec.display(),
                "attempt": attempt,
            }
        )

    def job_finished(self, index: int, spec: RunSpec, record: RunRecord) -> None:
        self.emit(
            {
                "event": "job_finished",
                "index": index,
                "digest": spec.digest(),
                "label": spec.display(),
                "record": record_summary(record),
            }
        )

    def sweep_finished(self, timing: SweepTiming) -> None:
        self.emit({"event": "sweep_finished", "timing": asdict(timing)})


class AsyncQueueProgress(JsonProgress):
    """Bridge runner progress into an :class:`asyncio.Queue`.

    The runner executes in a worker thread; consumers await the queue on
    the event loop.  Every event is posted with
    ``loop.call_soon_threadsafe`` + ``put_nowait`` so the worker thread
    **never blocks** on a slow or gone consumer: if the queue is full or
    the loop already closed, the event is counted in ``dropped`` and the
    sweep carries on.  ``call_soon_threadsafe`` callbacks run in
    scheduling order, so consumers observe events in exactly the order
    the runner emitted them.
    """

    def __init__(self, loop, queue, *, on_drop: Optional[Callable] = None):
        self.loop = loop
        self.queue = queue
        self.dropped = 0
        self.on_drop = on_drop

    def emit(self, payload: Dict[str, Any]) -> None:
        try:
            self.loop.call_soon_threadsafe(self._put, payload)
        except RuntimeError:
            # Event loop closed under us — nobody is listening.
            self._drop()

    def _put(self, payload: Dict[str, Any]) -> None:
        try:
            self.queue.put_nowait(payload)
        except Exception:
            self._drop()

    def _drop(self) -> None:
        self.dropped += 1
        if self.on_drop is not None:
            try:
                self.on_drop()
            except Exception:
                pass


def resolve_progress(
    progress: Union[None, str, Callable, ProgressSink]
) -> ProgressSink:
    """Map the user-facing ``progress=`` shorthand onto a sink."""
    if progress is None:
        return ProgressSink()
    if isinstance(progress, ProgressSink):
        return progress
    if isinstance(progress, str):
        if progress in ("quiet", "none", ""):
            return ProgressSink()
        if progress == "log":
            return LogProgress()
        raise ValueError(
            f"unknown progress mode {progress!r}; use 'quiet', 'log', "
            "a callable, or a ProgressSink"
        )
    if callable(progress):
        return CallbackProgress(progress)
    raise TypeError(f"cannot interpret progress={progress!r}")
