"""OpenFlow-style SDN substrate: switches, flow tables, control messages."""

from .flowtable import ActionType, FlowAction, FlowRule, FlowTable
from .messages import (
    BarrierReply,
    BarrierRequest,
    ControlMessage,
    FlowMod,
    FlowRemove,
    PacketIn,
    PeeringStatus,
    PortStatus,
)
from .switch import SDNSwitch

__all__ = [
    "ActionType",
    "FlowAction",
    "FlowRule",
    "FlowTable",
    "BarrierReply",
    "BarrierRequest",
    "ControlMessage",
    "FlowMod",
    "FlowRemove",
    "PacketIn",
    "PeeringStatus",
    "PortStatus",
    "SDNSwitch",
]
