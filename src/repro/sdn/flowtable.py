"""OpenFlow-style flow table for cluster switches.

Rules match destination prefixes with explicit priorities (the compiler
uses prefix length, mirroring how IP longest-prefix match is expressed in
OpenFlow tables) and carry an action: output over a link, deliver
locally, or drop.  Per-rule packet counters support the demo's
monitoring tools.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Optional

from ..net.addr import IPv4Address, Prefix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.link import Link

__all__ = ["ActionType", "FlowAction", "FlowRule", "FlowTable"]

_rule_ids = itertools.count(1)


class ActionType(enum.Enum):
    OUTPUT = "output"   # forward over a link
    LOCAL = "local"     # deliver to the switch itself (originated prefix)
    DROP = "drop"


@dataclass(frozen=True)
class FlowAction:
    """What to do with a matching packet."""

    type: ActionType
    link: Optional["Link"] = None

    @classmethod
    def output(cls, link: "Link") -> "FlowAction":
        """Action: forward out a link."""
        return cls(ActionType.OUTPUT, link)

    @classmethod
    def local(cls) -> "FlowAction":
        """Action: deliver to the switch itself."""
        return cls(ActionType.LOCAL)

    @classmethod
    def drop(cls) -> "FlowAction":
        """Action: discard matching packets."""
        return cls(ActionType.DROP)


@dataclass
class FlowRule:
    """One table entry: (priority, dst prefix) → action."""

    match: Prefix
    action: FlowAction
    priority: int = 0
    cookie: str = ""
    rule_id: int = field(default_factory=lambda: next(_rule_ids))
    packets: int = 0

    def matches(self, address: IPv4Address) -> bool:
        """True when the address falls in the rule's match."""
        return address in self.match

    def __repr__(self) -> str:
        tgt = self.action.type.value
        if self.action.link is not None:
            tgt += f":{self.action.link.name}"
        return f"<FlowRule p={self.priority} {self.match} -> {tgt}>"


class FlowTable:
    """Priority-ordered flow table with highest-priority-first matching.

    Ties on priority break on longer prefix, then lower rule id — fully
    deterministic, as the rest of the emulator requires.
    """

    def __init__(self) -> None:
        self._rules: List[FlowRule] = []
        self.version = 0

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[FlowRule]:
        return iter(self._rules)

    def rules(self) -> List[FlowRule]:
        """All rules, priority-ordered."""
        return list(self._rules)

    def install(self, rule: FlowRule) -> None:
        """Add ``rule``, replacing any rule with the same (match, priority)."""
        self._rules = [
            r for r in self._rules
            if not (r.match == rule.match and r.priority == rule.priority)
        ]
        self._rules.append(rule)
        self._rules.sort(
            key=lambda r: (-r.priority, -r.match.length, r.rule_id)
        )
        self.version += 1

    def remove(self, match: Prefix, priority: Optional[int] = None) -> int:
        """Remove rules matching ``match`` (and priority if given).

        Returns the number of rules removed.
        """
        before = len(self._rules)
        self._rules = [
            r for r in self._rules
            if not (
                r.match == match
                and (priority is None or r.priority == priority)
            )
        ]
        removed = before - len(self._rules)
        if removed:
            self.version += 1
        return removed

    def remove_by_cookie(self, cookie: str) -> int:
        """Remove every rule carrying a cookie."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.cookie != cookie]
        removed = before - len(self._rules)
        if removed:
            self.version += 1
        return removed

    def clear(self) -> None:
        """Drop all stored state."""
        self._rules.clear()
        self.version += 1

    def lookup(self, address: IPv4Address) -> Optional[FlowRule]:
        """First matching rule in priority order, counting the hit."""
        for rule in self._rules:
            if rule.matches(address):
                rule.packets += 1
                return rule
        return None
