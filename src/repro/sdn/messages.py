"""Control-channel messages between switches, controller, and speaker.

A small OpenFlow-flavoured set: FlowMod/FlowRemove program switches,
PortStatus reports link state to the controller, PacketIn reports
table misses.  PeeringStatus travels switch → cluster BGP speaker over
the per-peering relay link so the speaker can reset the corresponding
external session when the physical peering link fails (the speaker's own
relay link stays up, so it cannot rely on fast fallover).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.addr import Prefix
from ..net.messages import Message

__all__ = [
    "ControlMessage",
    "FlowMod",
    "FlowRemove",
    "PortStatus",
    "PacketIn",
    "PeeringStatus",
    "BarrierRequest",
    "BarrierReply",
]


@dataclass(slots=True)
class ControlMessage(Message):
    """Base class for controller-plane messages."""


@dataclass(slots=True)
class FlowMod(ControlMessage):
    """Install one flow rule on the receiving switch.

    ``out_link_name`` names the switch-local link for OUTPUT actions —
    the controller knows switch ports by link name from its topology
    view, and the switch resolves the name to its own link object.
    """

    match: Prefix = None  # type: ignore[assignment]
    action_type: str = "output"
    out_link_name: Optional[str] = None
    priority: int = 0
    cookie: str = ""


@dataclass(slots=True)
class FlowRemove(ControlMessage):
    """Remove rules for a match (and optional priority) or by cookie."""

    match: Optional[Prefix] = None
    priority: Optional[int] = None
    cookie: Optional[str] = None


@dataclass(slots=True)
class PortStatus(ControlMessage):
    """Switch → controller: a local link changed state."""

    switch: str = ""
    link_name: str = ""
    peer: str = ""
    up: bool = True
    kind: str = "phys"


@dataclass(slots=True)
class PacketIn(ControlMessage):
    """Switch → controller: table miss (packet summary only)."""

    switch: str = ""
    src: str = ""
    dst: str = ""
    proto: str = ""


@dataclass(slots=True)
class PeeringStatus(ControlMessage):
    """Switch → speaker over the relay link: physical peering up/down."""

    switch: str = ""
    peer: str = ""
    up: bool = True


@dataclass(slots=True)
class BarrierRequest(ControlMessage):
    """Controller → switch: ack when all prior mods are applied."""

    xid: int = 0


@dataclass(slots=True)
class BarrierReply(ControlMessage):
    """Switch → controller: barrier ack."""

    xid: int = 0
    switch: str = ""
