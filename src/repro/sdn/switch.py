"""SDN cluster member switch.

Each AS that joins the cluster is emulated by one OpenFlow-style switch
(same one-device-per-AS abstraction as the legacy side).  The switch:

- forwards data-plane packets by flow-table lookup (programmed by the
  IDR controller via FlowMod over the control channel);
- relays BGP control traffic between its physical peering links and the
  cluster BGP speaker's per-peering relay links (paper §3: "for every
  BGP peering there is a link from the cluster BGP speaker to the border
  SDN switch");
- reports local link state changes to the controller (PortStatus) and,
  for peering links, to the speaker (PeeringStatus).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..bgp.messages import BGPMessage
from ..eventsim import Simulator
from ..net.addr import IPv4Address
from ..net.dataplane import FibEntry
from ..net.link import Link
from ..net.messages import Message, Packet
from ..net.node import Node
from .flowtable import ActionType, FlowAction, FlowRule, FlowTable
from .messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    FlowRemove,
    PacketIn,
    PeeringStatus,
    PortStatus,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["SDNSwitch"]


class SDNSwitch(Node):
    """A cluster member AS, emulated as one OpenFlow-style switch."""

    def __init__(
        self,
        sim: Simulator,
        instrument,
        name: str,
        *,
        asn: int,
        packet_in_enabled: bool = False,
    ) -> None:
        super().__init__(sim, instrument, name)
        if asn <= 0:
            raise ValueError(f"ASN must be positive: {asn!r}")
        self.asn = asn
        self.flow_table = FlowTable()
        self.packet_in_enabled = packet_in_enabled
        self.control_link: Optional[Link] = None
        #: phys peering link id -> relay link to the speaker, and back.
        self._relay_by_phys: Dict[int, Link] = {}
        self._phys_by_relay: Dict[int, Link] = {}
        self.flow_mods_applied = 0
        self.packet_ins_sent = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def set_control_link(self, link: Link) -> None:
        """Attach the out-of-band channel to the IDR controller."""
        if link.other(self) is None:
            raise ValueError("control link does not attach to this switch")
        self.control_link = link

    def add_border_relay(self, phys_link: Link, relay_link: Link) -> None:
        """Pair a physical peering link with its speaker relay link."""
        for link in (phys_link, relay_link):
            if link.other(self) is None:
                raise ValueError(f"{link.name} does not attach to this switch")
        self._relay_by_phys[phys_link.link_id] = relay_link
        self._phys_by_relay[relay_link.link_id] = phys_link

    def relay_for(self, phys_link: Link) -> Optional[Link]:
        """The speaker relay link paired with a peering link."""
        return self._relay_by_phys.get(phys_link.link_id)

    def peering_links(self) -> list:
        """Physical links that carry an external BGP peering."""
        out = []
        for link in self.links:
            if link.link_id in self._relay_by_phys:
                out.append(link)
        return out

    # ------------------------------------------------------------------
    # control / relay plane
    # ------------------------------------------------------------------
    def handle_message(self, link: Link, message: Message) -> None:
        """Control-plane dispatch for one delivered message."""
        if isinstance(message, BGPMessage):
            self._relay_bgp(link, message)
            return
        if link is self.control_link:
            self._handle_control(message)

    def _relay_bgp(self, link: Link, message: BGPMessage) -> None:
        """Shuttle BGP bytes between peering link and speaker relay link."""
        relay = self._relay_by_phys.get(link.link_id)
        if relay is not None:
            if relay.up:
                relay.transmit(self, message)
            return
        phys = self._phys_by_relay.get(link.link_id)
        if phys is not None:
            if phys.up:
                phys.transmit(self, message)
            return
        self.bus.record(
            "switch.bgp.unrelayable", self.name, link=link.name,
            message=message.describe(),
        )

    def _handle_control(self, message: Message) -> None:
        if isinstance(message, FlowMod):
            self._apply_flow_mod(message)
        elif isinstance(message, FlowRemove):
            self._apply_flow_remove(message)
        elif isinstance(message, BarrierRequest):
            if self.control_link is not None and self.control_link.up:
                self.control_link.transmit(
                    self, BarrierReply(xid=message.xid, switch=self.name)
                )

    def _apply_flow_mod(self, mod: FlowMod) -> None:
        if mod.action_type == "output":
            link = self._link_by_name(mod.out_link_name)
            if link is None:
                self.bus.record(
                    "switch.flowmod.bad_port", self.name,
                    match=str(mod.match), port=mod.out_link_name,
                )
                return
            action = FlowAction.output(link)
        elif mod.action_type == "local":
            action = FlowAction.local()
        else:
            action = FlowAction.drop()
        self.flow_table.install(
            FlowRule(
                match=mod.match, action=action,
                priority=mod.priority, cookie=mod.cookie,
            )
        )
        self.flow_mods_applied += 1
        self.bus.record_lazy(
            "fib.change", self.name,
            lambda: {
                "prefix": str(mod.match),
                "via": mod.out_link_name or mod.action_type,
            },
        )

    def _apply_flow_remove(self, msg: FlowRemove) -> None:
        if msg.cookie is not None:
            removed = self.flow_table.remove_by_cookie(msg.cookie)
        elif msg.match is not None:
            removed = self.flow_table.remove(msg.match, msg.priority)
        else:
            removed = len(self.flow_table)
            self.flow_table.clear()
        if removed:
            self.bus.record_lazy(
                "fib.change", self.name,
                lambda: {
                    "prefix": str(msg.match) if msg.match else "*",
                    "via": None, "removed": removed,
                },
            )

    def _link_by_name(self, name: Optional[str]) -> Optional[Link]:
        if name is None:
            return None
        for link in self.links:
            if link.name == name:
                return link
        return None

    # ------------------------------------------------------------------
    # link state reporting
    # ------------------------------------------------------------------
    def link_state_changed(self, link: Link) -> None:
        """React to an attached link flipping up/down."""
        if self.control_link is not None and self.control_link.up:
            self.control_link.transmit(
                self,
                PortStatus(
                    switch=self.name,
                    link_name=link.name,
                    peer=link.other(self).name,
                    up=link.up,
                    kind=link.kind,
                ),
            )
        relay = self._relay_by_phys.get(link.link_id)
        if relay is not None and relay.up:
            relay.transmit(
                self,
                PeeringStatus(
                    switch=self.name, peer=link.other(self).name, up=link.up
                ),
            )

    # ------------------------------------------------------------------
    # data plane: flow-table forwarding
    # ------------------------------------------------------------------
    def lookup_route(self, dst: IPv4Address):
        """Forwarding lookup (FIB or flow table)."""
        rule = self.flow_table.lookup(dst)
        if rule is None:
            return None
        if rule.action.type is ActionType.OUTPUT:
            return FibEntry(
                rule.match, rule.action.link,
                via=rule.action.link.other(self).name, source="flow",
            )
        if rule.action.type is ActionType.LOCAL:
            return FibEntry(rule.match, None, via="local", source="flow")
        return None  # DROP

    def forward_packet(self, packet: Packet, entry=None) -> bool:
        """Forward one packet; False when dropped."""
        forwarded = super().forward_packet(packet, entry)
        if (
            not forwarded
            and self.packet_in_enabled
            and self.control_link is not None
            and self.control_link.up
        ):
            self.packet_ins_sent += 1
            self.control_link.transmit(
                self,
                PacketIn(
                    switch=self.name, src=str(packet.src),
                    dst=str(packet.dst), proto=packet.proto,
                ),
            )
        return forwarded
