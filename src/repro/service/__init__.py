"""repro.service — emulation-as-a-service over the sweep runner.

A stdlib-only asyncio control plane: clients POST RunSpec/sweep-grid
JSON, the service canonicalizes it to the existing content digest,
dedups against the result cache and run registry, queues it under
per-client quotas with explicit 429/Retry-After backpressure, executes
through :class:`~repro.runner.ParallelRunner` on worker threads,
streams live progress as Server-Sent Events, and records every
completed run into the telemetry registry it also serves back as the
HTML dashboard.  See ``docs/service.md``.
"""

from .app import (
    ServiceApp,
    ServiceConfig,
    record_payload,
    run_service,
    start_service,
)
from .client import ServiceClient, ServiceClientError
from .http import HttpError, Request
from .manager import Job, JobManager, QueueFull, QuotaExceeded, SubmitRejected

__all__ = [
    "ServiceApp",
    "ServiceConfig",
    "record_payload",
    "run_service",
    "start_service",
    "ServiceClient",
    "ServiceClientError",
    "HttpError",
    "Request",
    "Job",
    "JobManager",
    "QueueFull",
    "QuotaExceeded",
    "SubmitRejected",
]
