"""The service HTTP application: routes, server lifecycle, SSE.

:class:`ServiceApp` maps the request surface onto a
:class:`~repro.service.manager.JobManager` plus the obs stack:

====== ================================== ===============================
Method Path                               Meaning
====== ================================== ===============================
GET    ``/healthz``                       liveness + queue stats
GET    ``/metrics``                       Prometheus text exposition
GET    ``/api/status``                    liveness + readiness (503)
GET    ``/dashboard``                     telemetry dashboard (HTML)
GET    ``/api/jobs``                      job table + stats
POST   ``/api/jobs``                      submit a spec or sweep grid
GET    ``/api/jobs/<digest>``             job status
DELETE ``/api/jobs/<digest>``             cancel
GET    ``/api/jobs/<digest>/result``      full result record (JSON)
GET    ``/api/jobs/<digest>/events``      live progress (SSE)
GET    ``/api/jobs/<digest>/provenance``  causal run report (text)
GET    ``/api/runs``                      recorded registry runs
GET    ``/api/runs/<id>``                 one registry run row
GET    ``/api/runs/<id>/anatomy``         critical-path delay attribution
====== ================================== ===============================

Semantics worth naming: submissions are validated by
:mod:`repro.config.specio` (bad payloads are clean 400s listing every
problem), admission is all-or-nothing (quota/queue violations are 429
with ``Retry-After``), and results are canonical JSON
(``sort_keys``) — two clients fetching the same digest receive
bit-identical bodies.  See ``docs/service.md``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..eventsim.metrics import MetricsRegistry
from ..runner.cache import ResultCache
from ..runner.jobs import RunRecord
from .http import (
    HttpError,
    Request,
    error_payload,
    json_response,
    read_request,
    response_bytes,
    sse_frame,
    sse_headers,
)
from .manager import JobManager, SubmitRejected

__all__ = ["ServiceConfig", "ServiceApp", "start_service", "run_service"]

#: keep-alive comment frame cadence on idle SSE streams (seconds).
SSE_HEARTBEAT = 15.0


@dataclass
class ServiceConfig:
    """Tunables of one service instance."""

    host: str = "127.0.0.1"
    port: int = 8351
    cache_dir: Optional[str] = None
    registry_path: Optional[str] = None
    concurrency: int = 1
    max_queue: int = 64
    quota: int = 8


def record_payload(record: RunRecord) -> Dict[str, Any]:
    """The full JSON form of a result record (the ``/result`` body).

    ``convergence_time``/``updates_tx`` are hoisted out of the
    measurement (they are derived properties, not stored fields), so
    clients read the headline numbers without knowing the measurement
    schema.
    """
    headline: Dict[str, Any] = {}
    if record.measurement is not None:
        headline = {
            "convergence_time": record.measurement.convergence_time,
            "updates_tx": record.measurement.updates_tx,
        }
    return {
        **headline,
        "digest": record.digest,
        "ok": record.ok,
        "cached": record.cached,
        "cancelled": record.cancelled,
        "attempts": record.attempts,
        "worker": record.worker,
        "measurement": record.measurement_dict() or None,
        "metrics": record.metrics,
        "spans": record.spans,
        "profile": record.profile,
        "anatomy": record.anatomy,
        "error": record.error,
    }


class ServiceApp:
    """Route dispatch over one :class:`JobManager`."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        cache = (
            ResultCache(config.cache_dir)
            if config.cache_dir else None
        )
        self.manager = JobManager(
            cache=cache,
            registry_path=config.registry_path,
            concurrency=config.concurrency,
            max_queue=config.max_queue,
            quota=config.quota,
        )
        #: request counters + per-route latency histograms, exposed on
        #: ``/metrics`` alongside the scrape-time service gauges.
        self.metrics = MetricsRegistry()
        self._started_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                await self._timed_dispatch(request, writer)
            except HttpError as exc:
                status, payload, headers = error_payload(exc)
                writer.write(json_response(status, payload, headers=headers))
            except Exception as exc:  # pragma: no cover - defensive
                writer.write(
                    json_response(500, {"error": f"internal error: {exc!r}"})
                )
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    def route_template(method: str, parts: List[str]) -> str:
        """Collapse a request path onto its route template.

        Digest and run-id segments are replaced by placeholders so the
        per-route latency histograms stay bounded-cardinality no matter
        how many distinct jobs the service answers.
        """
        if parts[:2] == ["api", "jobs"] and len(parts) >= 3:
            tail = f"/{parts[3]}" if len(parts) > 3 else ""
            return "/api/jobs/{digest}" + tail
        if parts[:2] == ["api", "runs"] and len(parts) >= 3:
            tail = f"/{parts[3]}" if len(parts) > 3 else ""
            return "/api/runs/{id}" + tail
        return "/" + "/".join(parts) if parts else "/"

    async def _timed_dispatch(self, request: Request, writer) -> None:
        """Dispatch wrapped in request/error counters and a latency
        histogram, labelled by route template and method."""
        parts = [p for p in request.path.split("/") if p]
        route = self.route_template(request.method, parts)
        self.metrics.counter(
            "service.requests", route=route, method=request.method
        ).inc()
        start = time.perf_counter()
        try:
            await self.dispatch(request, writer)
        except HttpError as exc:
            self.metrics.counter(
                "service.errors", route=route, status=str(exc.status)
            ).inc()
            raise
        except Exception:
            self.metrics.counter(
                "service.errors", route=route, status="500"
            ).inc()
            raise
        finally:
            self.metrics.histogram(
                "service.request_seconds", route=route
            ).observe(time.perf_counter() - start)

    async def dispatch(self, request: Request, writer) -> None:
        parts = [p for p in request.path.split("/") if p]
        method = request.method

        if parts == ["metrics"] and method == "GET":
            return self._metrics(writer)
        if parts == ["api", "status"] and method == "GET":
            return self._status(writer)
        if parts == ["healthz"] and method == "GET":
            return self._reply(writer, 200, {
                "ok": True, **self.manager.stats(),
            })
        if parts == ["dashboard"] and method == "GET":
            return self._dashboard(writer)
        if parts == ["api", "jobs"]:
            if method == "GET":
                return self._jobs_index(writer)
            if method == "POST":
                return self._submit(request, writer)
            raise HttpError(405, f"{method} not allowed on /api/jobs")
        if len(parts) >= 3 and parts[:2] == ["api", "jobs"]:
            digest = parts[2]
            tail = parts[3:]
            if not tail:
                if method == "GET":
                    return self._job_status(writer, digest)
                if method == "DELETE":
                    return self._cancel(writer, digest)
                raise HttpError(405, f"{method} not allowed on a job")
            if tail == ["result"] and method == "GET":
                return self._result(writer, digest)
            if tail == ["events"] and method == "GET":
                return await self._events(writer, digest)
            if tail == ["provenance"] and method == "GET":
                return self._provenance(writer, digest)
        if parts == ["api", "runs"] and method == "GET":
            return self._runs_index(request, writer)
        if len(parts) == 3 and parts[:2] == ["api", "runs"] and method == "GET":
            return self._run_row(writer, parts[2])
        if (
            len(parts) == 4
            and parts[:2] == ["api", "runs"]
            and parts[3] == "anatomy"
            and method == "GET"
        ):
            return self._run_anatomy(writer, parts[2])
        raise HttpError(404, f"no route for {method} {request.path}")

    @staticmethod
    def _reply(writer, status: int, payload: Any, **kw) -> None:
        writer.write(json_response(status, payload, **kw))

    # ------------------------------------------------------------------
    # job routes
    # ------------------------------------------------------------------
    def _submit(self, request: Request, writer) -> None:
        from ..config.specio import SpecIngestError, specs_from_json

        payload = request.json()
        try:
            specs = specs_from_json(payload)
        except SpecIngestError as exc:
            raise HttpError(
                400, "invalid spec payload", detail=exc.errors
            )
        client = request.headers.get("x-repro-client", "anonymous")
        try:
            jobs = self.manager.submit_many(specs, client)
        except SubmitRejected as exc:
            raise HttpError(
                429, str(exc),
                headers={"Retry-After": str(int(exc.retry_after + 0.5))},
            )
        body = {
            "client": client,
            "jobs": [job.status_payload() for job in jobs],
        }
        status = 200 if all(not job.active() for job in jobs) else 202
        self._reply(writer, status, body)

    def _jobs_index(self, writer) -> None:
        self._reply(writer, 200, {
            "stats": self.manager.stats(),
            "jobs": [
                job.status_payload() for job in self.manager.jobs.values()
            ],
        })

    def _job(self, digest: str):
        try:
            return self.manager._require(digest)
        except KeyError:
            raise HttpError(404, f"no job with digest {digest}")

    def _job_status(self, writer, digest: str) -> None:
        self._reply(writer, 200, self._job(digest).status_payload())

    def _cancel(self, writer, digest: str) -> None:
        job = self.manager.cancel(self._job(digest).digest)
        self._reply(writer, 202, job.status_payload())

    def _result(self, writer, digest: str) -> None:
        job = self._job(digest)
        if job.record is None:
            raise HttpError(
                409,
                f"job {digest} is {job.state}; result not available yet",
            )
        self._reply(writer, 200, record_payload(job.record))

    def _provenance(self, writer, digest: str) -> None:
        job = self._job(digest)
        if job.record is None:
            raise HttpError(
                409,
                f"job {digest} is {job.state}; result not available yet",
            )
        if not job.record.spans:
            raise HttpError(
                404,
                f"job {digest} carries no spans; submit with "
                '"spans": true to enable provenance',
            )
        from ..analysis.report import provenance_report

        root_id = None
        if job.record.measurement is not None:
            root_id = job.record.measurement.extra.get("event_root_span")
        text = provenance_report(job.record.spans, root_id=root_id)
        writer.write(
            response_bytes(
                200, text.encode("utf-8"),
                content_type="text/plain; charset=utf-8",
            )
        )

    async def _events(self, writer, digest: str) -> None:
        """Stream a job's progress as SSE until its ``done`` frame.

        A vanished client surfaces as a ConnectionError on drain; the
        subscription is dropped and the job runs on unaffected.
        """
        job = self._job(digest)
        queue = self.manager.subscribe(digest)
        writer.write(sse_headers())
        try:
            while True:
                try:
                    payload = await asyncio.wait_for(
                        queue.get(), timeout=SSE_HEARTBEAT
                    )
                except asyncio.TimeoutError:
                    writer.write(b": keep-alive\n\n")
                    await writer.drain()
                    continue
                name = payload.get("event", "message")
                writer.write(sse_frame(name, payload))
                await writer.drain()
                if name == "done":
                    return
        finally:
            self.manager.unsubscribe(digest, queue)

    # ------------------------------------------------------------------
    # obs routes
    # ------------------------------------------------------------------
    def _metrics(self, writer) -> None:
        """Prometheus text exposition of the service's operational state.

        Request counters and latency histograms accumulate in
        ``self.metrics``; queue/SSE/cache readings are sampled from the
        manager at scrape time as gauges.  Everything is prefixed
        ``repro_`` on the wire.
        """
        from ..obs.runtime import CONTENT_TYPE, render_prometheus

        telemetry = self.manager.telemetry()
        gauge = self.metrics.gauge
        gauge("service.queue_depth").set(telemetry["queued"])
        gauge("service.jobs_in_flight").set(telemetry["in_flight"])
        gauge("service.jobs_tracked").set(telemetry["jobs"])
        gauge("service.sse_subscribers").set(telemetry["subscribers"])
        gauge("service.sse_dropped_frames").set(telemetry["dropped_frames"])
        gauge("service.rejected", reason="quota").set(
            telemetry["rejected_quota"]
        )
        gauge("service.rejected", reason="queue").set(
            telemetry["rejected_queue"]
        )
        gauge("service.trace_dropped_records").set(
            telemetry["trace_dropped_records"]
        )
        gauge("service.link_coalesced_total").set(
            telemetry.get("link_coalesced_total", 0)
        )
        from ..bgp.attrs import intern_stats

        for key, value in intern_stats().items():
            gauge(f"intern.{key}").set(value)
        gauge("service.uptime_seconds").set(
            time.monotonic() - self._started_monotonic
        )
        if self.manager.cache is not None:
            stats = self.manager.cache.stats()
            gauge("service.cache_entries").set(stats.entries)
            gauge("service.cache_bytes").set(stats.total_bytes)
            gauge("service.cache_lookups", outcome="hit").set(stats.hits)
            gauge("service.cache_lookups", outcome="miss").set(stats.misses)
            gauge("service.cache_hit_ratio").set(stats.hit_rate)
        body = render_prometheus(self.metrics.snapshot(), prefix="repro_")
        writer.write(
            response_bytes(
                200, body.encode("utf-8"), content_type=CONTENT_TYPE
            )
        )

    def _status(self, writer) -> None:
        """Consolidated health: liveness, readiness, and drop counters.

        Liveness is implicit (a reply at all means the loop is alive);
        readiness is distinct — workers running and queue below
        capacity — and a not-ready reply is a 503 so load balancers and
        the CI smoke harness can gate on the status code alone.
        """
        telemetry = self.manager.telemetry()
        reasons = []
        if not self.manager.workers_started:
            reasons.append("workers not started")
        if telemetry["queued"] >= self.config.max_queue:
            reasons.append("queue at capacity")
        payload: Dict[str, Any] = {
            "live": True,
            "ready": not reasons,
            "reasons": reasons,
            "uptime_s": round(
                time.monotonic() - self._started_monotonic, 3
            ),
            "stats": self.manager.stats(),
            "telemetry": telemetry,
        }
        if self.manager.cache is not None:
            stats = self.manager.cache.stats()
            payload["cache"] = {
                "entries": stats.entries,
                "total_bytes": stats.total_bytes,
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_rate": round(stats.hit_rate, 4),
            }
        self._reply(writer, 200 if not reasons else 503, payload)

    def _open_registry(self):
        import os

        path = self.config.registry_path
        if not path or not os.path.exists(path):
            raise HttpError(
                404,
                "no run registry recorded yet (complete a job first)",
            )
        from ..obs.registry import RunRegistry

        return RunRegistry(path)

    def _dashboard(self, writer) -> None:
        from ..obs.dashboard import render_dashboard

        with self._open_registry() as registry:
            html = render_dashboard(registry)
        writer.write(
            response_bytes(
                200, html.encode("utf-8"),
                content_type="text/html; charset=utf-8",
            )
        )

    def _runs_index(self, request: Request, writer) -> None:
        limit = request.query_int("limit", 50)
        digest = None
        if request.query.get("digest"):
            digest = request.query["digest"][-1]
        with self._open_registry() as registry:
            rows = registry.runs(
                digest=digest, limit=limit, newest_first=True
            )
        from dataclasses import asdict

        self._reply(writer, 200, {"runs": [asdict(row) for row in rows]})

    def _run_row(self, writer, run_id: str) -> None:
        try:
            wanted = int(run_id)
        except ValueError:
            raise HttpError(400, f"run id must be an integer, got {run_id!r}")
        with self._open_registry() as registry:
            row = registry.run(wanted)
        if row is None:
            raise HttpError(404, f"no recorded run {wanted}")
        from dataclasses import asdict

        self._reply(writer, 200, asdict(row))

    def _run_anatomy(self, writer, run_id: str) -> None:
        """Critical-path delay attribution of one recorded run.

        Served from the stored ``anatomy`` column (the registry derives
        it from the spans whenever a spans-carrying record is recorded).
        Rows recorded before schema 3 — or without spans — have nothing
        to attribute and answer 404.
        """
        try:
            wanted = int(run_id)
        except ValueError:
            raise HttpError(400, f"run id must be an integer, got {run_id!r}")
        with self._open_registry() as registry:
            row = registry.run(wanted)
        if row is None:
            raise HttpError(404, f"no recorded run {wanted}")
        if row.anatomy is None:
            raise HttpError(
                404,
                f"run {wanted} carries no anatomy; record it with "
                "spans enabled to attribute its convergence delay",
            )
        self._reply(writer, 200, {"run_id": wanted, "anatomy": row.anatomy})


async def start_service(
    config: ServiceConfig,
    *,
    announce: Optional[Callable[[str, int], None]] = None,
):
    """Start the server; returns ``(server, app)``.

    ``announce(host, port)`` is called with the *bound* address — with
    ``port=0`` that is the ephemeral port the OS picked, which is what
    the smoke harness parses from stdout.
    """
    app = ServiceApp(config)
    server = await asyncio.start_server(
        app.handle_connection, config.host, config.port
    )
    app.manager.start()
    host, port = server.sockets[0].getsockname()[:2]
    if announce is not None:
        announce(host, port)
    return server, app


def run_service(
    config: ServiceConfig,
    *,
    announce: Optional[Callable[[str, int], None]] = None,
) -> None:
    """Blocking entry point (the ``repro serve`` command)."""

    async def main() -> None:
        server, app = await start_service(config, announce=announce)
        try:
            async with server:
                await server.serve_forever()
        finally:
            await app.manager.aclose()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
