"""Blocking client for the service API (stdlib ``http.client`` only).

:class:`ServiceClient` backs the ``repro client`` CLI and the CI smoke
harness: submit a spec/grid payload, poll status, stream SSE progress,
fetch results/dashboards.  Errors come back as
:class:`ServiceClientError` carrying the HTTP status and any
``Retry-After`` hint, so callers can implement polite backoff.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(Exception):
    """A non-2xx API reply."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        retry_after: Optional[float] = None,
        detail: Any = None,
    ) -> None:
        self.status = status
        self.retry_after = retry_after
        self.detail = detail
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Talk to one service instance as one named client."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8351,
        *,
        client_id: str = "cli",
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        *,
        body: Any = None,
        timeout: Optional[float] = None,
    ):
        conn = HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout,
        )
        headers = {"X-Repro-Client": self.client_id}
        encoded = None
        if body is not None:
            encoded = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=encoded, headers=headers)
        return conn, conn.getresponse()

    def _json(self, method: str, path: str, *, body: Any = None) -> Any:
        conn, response = self._request(method, path, body=body)
        try:
            raw = response.read()
            if response.status >= 400:
                raise self._error(response, raw)
            return json.loads(raw.decode("utf-8")) if raw else None
        finally:
            conn.close()

    @staticmethod
    def _error(response, raw: bytes) -> ServiceClientError:
        message, detail = f"{response.reason}", None
        try:
            payload = json.loads(raw.decode("utf-8"))
            message = payload.get("error", message)
            detail = payload.get("detail")
        except Exception:
            pass
        retry_after = None
        header = response.getheader("Retry-After")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                pass
        return ServiceClientError(
            response.status, message, retry_after=retry_after, detail=detail
        )

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def submit(self, payload: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Submit a ``{"spec": ...}`` / ``{"grid": ...}`` payload;
        returns the job status list."""
        return self._json("POST", "/api/jobs", body=payload)["jobs"]

    def status(self, digest: str) -> Dict[str, Any]:
        return self._json("GET", f"/api/jobs/{digest}")

    def result(self, digest: str) -> Dict[str, Any]:
        return self._json("GET", f"/api/jobs/{digest}/result")

    def result_bytes(self, digest: str) -> bytes:
        """The raw (canonical-JSON) result body, byte-exact."""
        conn, response = self._request("GET", f"/api/jobs/{digest}/result")
        try:
            raw = response.read()
            if response.status >= 400:
                raise self._error(response, raw)
            return raw
        finally:
            conn.close()

    def cancel(self, digest: str) -> Dict[str, Any]:
        return self._json("DELETE", f"/api/jobs/{digest}")

    def jobs(self) -> Dict[str, Any]:
        return self._json("GET", "/api/jobs")

    def runs(
        self, *, digest: Optional[str] = None, limit: int = 50
    ) -> List[Dict[str, Any]]:
        path = f"/api/runs?limit={limit}"
        if digest:
            path += f"&digest={digest}"
        return self._json("GET", path)["runs"]

    def dashboard(self) -> str:
        conn, response = self._request("GET", "/dashboard")
        try:
            raw = response.read()
            if response.status >= 400:
                raise self._error(response, raw)
            return raw.decode("utf-8")
        finally:
            conn.close()

    def provenance(self, digest: str) -> str:
        conn, response = self._request(
            "GET", f"/api/jobs/{digest}/provenance"
        )
        try:
            raw = response.read()
            if response.status >= 400:
                raise self._error(response, raw)
            return raw.decode("utf-8")
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def watch(
        self,
        digest: str,
        *,
        timeout: float = 300.0,
        on_event: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Stream a job's SSE events until its ``done`` frame.

        Returns the final job status payload; ``on_event(name,
        payload)`` sees every frame (replayed history included).
        """
        final: Optional[Dict[str, Any]] = None
        for name, payload in self.events(digest, timeout=timeout):
            if on_event is not None:
                on_event(name, payload)
            if name == "done":
                final = payload.get("job", payload)
                break
        if final is None:
            raise ServiceClientError(
                408, f"SSE stream for {digest} ended without a done event"
            )
        return final

    def events(
        self, digest: str, *, timeout: float = 300.0
    ) -> Iterator[tuple]:
        """Yield ``(event_name, payload)`` pairs off the SSE stream."""
        conn, response = self._request(
            "GET", f"/api/jobs/{digest}/events", timeout=timeout
        )
        try:
            if response.status >= 400:
                raise self._error(response, response.read())
            name, data_lines = "message", []
            while True:
                line = response.readline()
                if not line:
                    return  # server closed the stream
                text = line.decode("utf-8").rstrip("\n")
                if text.startswith(":"):
                    continue  # keep-alive comment
                if text.startswith("event:"):
                    name = text[len("event:"):].strip()
                elif text.startswith("data:"):
                    data_lines.append(text[len("data:"):].strip())
                elif text == "":
                    if data_lines:
                        payload = json.loads("\n".join(data_lines))
                        yield name, payload
                        if name == "done":
                            return
                    name, data_lines = "message", []
        finally:
            conn.close()
