"""Minimal HTTP/1.1 plumbing for the service (stdlib asyncio only).

Just enough protocol for a control plane: request-line + header
parsing with hard size limits, ``Content-Length`` bodies, JSON helpers,
and Server-Sent-Events framing.  Every response closes its connection
(``Connection: close``) — the API is request/response plus one
long-lived SSE stream per watcher, so keep-alive buys nothing and
closing keeps the state machine trivial.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "response_bytes",
    "json_response",
    "sse_headers",
    "sse_frame",
    "STATUS_PHRASES",
]

#: request line + headers may not exceed this many bytes.
MAX_HEADER_BYTES = 32 * 1024
#: request bodies may not exceed this many bytes (grids are small JSON).
MAX_BODY_BYTES = 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request problem that maps directly onto an HTTP error reply."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: Optional[Dict[str, str]] = None,
        detail: Optional[Any] = None,
    ) -> None:
        self.status = status
        self.message = message
        self.headers = headers or {}
        self.detail = detail
        super().__init__(f"{status}: {message}")


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, list] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON (400 on malformed input)."""
        if not self.body:
            raise HttpError(400, "request body is empty; expected JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")

    def query_int(self, name: str, default: int) -> int:
        values = self.query.get(name)
        if not values:
            return default
        try:
            return int(values[-1])
        except ValueError:
            raise HttpError(
                400, f"query parameter {name!r} must be an integer, "
                f"got {values[-1]!r}"
            )

    def query_flag(self, name: str) -> bool:
        values = self.query.get(name)
        if not values:
            return False
        return values[-1].lower() not in ("0", "false", "no", "")


async def read_request(reader) -> Optional[Request]:
    """Parse one request off a stream; None on clean EOF before a line."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except Exception as exc:  # IncompleteReadError, LimitOverrunError...
        import asyncio

        if isinstance(exc, asyncio.IncompleteReadError) and not exc.partial:
            return None
        if isinstance(exc, asyncio.LimitOverrunError):
            raise HttpError(431, "request headers too large")
        raise HttpError(400, f"malformed request head: {exc!r}")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(431, "request headers too large")

    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:
        raise HttpError(400, "request head is not valid latin-1")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = parse_qs(split.query, keep_blank_values=True)

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {length_text!r}")
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {length}")
        if length > MAX_BODY_BYTES:
            raise HttpError(
                413, f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception as exc:
                raise HttpError(400, f"truncated request body: {exc!r}")

    return Request(
        method=method.upper(), path=path, query=query,
        headers=headers, body=body,
    )


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json; charset=utf-8",
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize one complete ``Connection: close`` response."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(
    status: int,
    payload: Any,
    *,
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response_bytes(status, body, headers=headers)


def sse_headers() -> bytes:
    """The response head opening a Server-Sent-Events stream."""
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")


def sse_frame(event: str, payload: Any) -> bytes:
    """One SSE frame: ``event:`` name plus JSON ``data:`` line."""
    data = json.dumps(payload, sort_keys=True)
    return f"event: {event}\ndata: {data}\n\n".encode("utf-8")


def error_payload(exc: HttpError) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
    """(status, JSON body, extra headers) of an error reply."""
    payload: Dict[str, Any] = {"error": exc.message}
    if exc.detail is not None:
        payload["detail"] = exc.detail
    return exc.status, payload, exc.headers
